"""Partitioned range-cubing benchmarks: executors, stage breakdown, speedup.

Two layers:

* pytest-benchmark tests (run with the rest of the suite under
  ``make bench``): monolithic vs chunked trie construction, plus the full
  ``parallel_range_cubing`` pipeline across executors with its per-stage
  timings (``partition_s`` / ``build_s`` / ``merge_s`` / ``cube_s``)
  recorded in ``extra_info``.

* a script mode for the headline acceptance run::

      PYTHONPATH=src:. python benchmarks/bench_partitioned.py --rows 100000

  which builds a >=100k-row Zipf table, runs SerialExecutor vs
  ProcessExecutor (4 workers), prints the stage breakdowns and the
  speedup.  The trie builds are embarrassingly parallel, so on a
  multi-core machine the process backend wins; on a single core (this
  container has ``os.cpu_count() == 1``) the pickling overhead makes it
  lose, and the script says which situation it measured.
"""

import argparse
import os

import pytest

from repro.core.partitioned import (
    build_partitioned,
    parallel_range_cubing_detailed,
)
from repro.core.range_trie import RangeTrie
from repro.data.synthetic import zipf_table
from repro.table.aggregates import SumCountAggregator

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 2000, "n_dims": 5, "cardinality": 50},
    "small": {"n_rows": 10_000, "n_dims": 6, "cardinality": 100},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
AGG = SumCountAggregator(0)

STAGES = ("partition_s", "build_s", "merge_s", "cube_s")


def table():
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2)


def test_build_monolithic(benchmark):
    trie = run_once(benchmark, RangeTrie.build, table(), AGG)
    benchmark.extra_info.update(mode="monolithic", nodes=trie.n_nodes())


@pytest.mark.parametrize("n_chunks", (2, 4, 8))
def test_build_partitioned(benchmark, n_chunks):
    trie = run_once(benchmark, build_partitioned, table(), n_chunks, AGG)
    benchmark.extra_info.update(
        mode="partitioned", n_chunks=n_chunks, nodes=trie.n_nodes()
    )


@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
def test_parallel_pipeline(benchmark, executor):
    t = table()
    cube, stats = run_once(
        benchmark,
        parallel_range_cubing_detailed,
        t,
        executor=executor,
        n_partitions=4,
        aggregator=AGG,
    )
    benchmark.extra_info.update(
        executor=executor,
        n_ranges=cube.n_ranges,
        **{k: round(stats[k], 6) for k in STAGES},
    )


# --------------------------------------------------------------------------
# script mode: serial vs process on a large table, with stage breakdowns
# --------------------------------------------------------------------------


def _report(label: str, stats: dict) -> None:
    total = stats["total_seconds"]
    print(f"{label}: {total:.3f}s total")
    for key in STAGES:
        share = stats[key] / total if total else 0.0
        print(f"  {key:<12} {stats[key]:8.3f}s  ({share:5.1%})")
    print(
        f"  partitions={stats['n_partitions']}  "
        f"tries_merged={stats['tries_merged']}  trie_nodes={stats['trie_nodes']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--dims", type=int, default=6)
    parser.add_argument("--cardinality", type=int, default=100)
    parser.add_argument("--theta", type=float, default=1.2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    print(
        f"zipf table: {args.rows} rows x {args.dims} dims, "
        f"cardinality {args.cardinality}, theta {args.theta}"
    )
    t = zipf_table(args.rows, args.dims, args.cardinality, args.theta, seed=args.seed)

    serial_cube, serial = parallel_range_cubing_detailed(
        t, executor="serial", n_partitions=1
    )
    _report("serial (1 partition)", serial)

    process_cube, process = parallel_range_cubing_detailed(
        t, executor="process", workers=args.workers, n_partitions=args.workers
    )
    _report(f"process ({args.workers} workers)", process)

    assert serial_cube.n_ranges == process_cube.n_ranges
    speedup = serial["total_seconds"] / process["total_seconds"]
    cores = os.cpu_count() or 1
    print(f"\nspeedup (serial/process): {speedup:.2f}x on {cores} core(s)")
    if cores < 2:
        print(
            "note: single-core machine — process workers serialize, so the "
            "pickling overhead dominates; run on >=2 cores for a speedup"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
