"""Partitioned construction benchmark: chunked build+merge vs monolithic.

The chunk builds are independent (parallelizable); the merge is the
sequential tail.  At a single core the two paths should be comparable —
the merge re-does the restructuring work insertion would have done — and
the structural equality is guaranteed by tests/test_partitioned.py.
"""

import pytest

from repro.core.partitioned import build_partitioned
from repro.core.range_trie import RangeTrie
from repro.table.aggregates import SumCountAggregator

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 2000, "n_dims": 5, "cardinality": 50},
    "small": {"n_rows": 10_000, "n_dims": 6, "cardinality": 100},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
AGG = SumCountAggregator(0)


def table():
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2)


def test_build_monolithic(benchmark):
    trie = run_once(benchmark, RangeTrie.build, table(), AGG)
    benchmark.extra_info.update(mode="monolithic", nodes=trie.n_nodes())


@pytest.mark.parametrize("n_chunks", (2, 4, 8))
def test_build_partitioned(benchmark, n_chunks):
    trie = run_once(benchmark, build_partitioned, table(), n_chunks, AGG)
    benchmark.extra_info.update(
        mode="partitioned", n_chunks=n_chunks, nodes=trie.n_nodes()
    )
