"""Substrate benchmark: input-structure construction costs.

One scan builds each structure; the interesting number is nodes touched
per tuple.  The range trie does set intersections per node but allocates
far fewer nodes on correlated data; the H-tree/star tree allocate one node
per (tuple, level) minus prefix sharing.  ``extra_info`` records node
counts so the time/size trade-off is visible in one table.
"""

from repro.baselines.htree import HTree
from repro.baselines.star_cubing import StarTree
from repro.core.range_trie import RangeTrie

from benchmarks.conftest import PRESET, cached_weather, run_once

N_ROWS = {"tiny": 2000, "small": 20_000}["small" if PRESET == "small" else "tiny"]


def test_build_range_trie(benchmark):
    table = cached_weather(N_ROWS)
    trie = run_once(benchmark, RangeTrie.build, table)
    benchmark.extra_info.update(
        structure="range-trie",
        nodes=trie.n_nodes(),
        leaves=trie.n_leaves(),
        depth=trie.max_depth(),
    )


def test_build_htree(benchmark):
    table = cached_weather(N_ROWS)
    tree = run_once(benchmark, HTree.build, table)
    benchmark.extra_info.update(structure="h-tree", nodes=tree.n_nodes())


def test_build_star_tree(benchmark):
    table = cached_weather(N_ROWS)
    tree = run_once(benchmark, StarTree.build, table)
    benchmark.extra_info.update(structure="star-tree", nodes=tree.n_nodes())
