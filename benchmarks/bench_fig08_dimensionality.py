"""Figure 8 benchmark: run time and space compression vs dimensionality.

Paper series (Zipf 1.5, cardinality 100): range cubing grows far slower
than H-Cubing as dimensions are added (8x faster at 6 dims in the paper);
tuple ratio and node ratio improve with dimensionality.  The benchmark
names carry the dimension count, so the timing table *is* Figure 8(a);
the range benchmarks' ``extra_info`` carries Figure 8(b)'s series.
"""

import pytest

from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing_detailed
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 400, "cardinality": 50, "dims": (2, 3, 4, 5, 6)},
    "small": {"n_rows": 1500, "cardinality": 100, "dims": (2, 4, 6, 8, 10)},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
THETA = 1.5


def table_for(n_dims: int):
    return cached_zipf(PARAMS["n_rows"], n_dims, PARAMS["cardinality"], THETA)


@pytest.mark.parametrize("n_dims", PARAMS["dims"])
def test_fig8_range_cubing(benchmark, n_dims):
    table = table_for(n_dims)
    order = preferred_order(table, "desc")
    cube, stats = run_once(benchmark, range_cubing_detailed, table, dim_order=order)
    htree_nodes = HTree.build(table.reordered(order)).n_nodes()
    benchmark.extra_info.update(
        figure="8",
        dimensionality=n_dims,
        ranges=cube.n_ranges,
        full_cells=cube.n_cells,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
        node_ratio=round(stats["trie_nodes"] / htree_nodes, 4),
    )


@pytest.mark.parametrize("n_dims", PARAMS["dims"])
def test_fig8_h_cubing(benchmark, n_dims):
    table = table_for(n_dims)
    order = preferred_order(table, "asc")
    cube = run_once(benchmark, h_cubing, table, dim_order=order)
    benchmark.extra_info.update(figure="8", dimensionality=n_dims, cells=len(cube))
