"""Figure 11 benchmark: scalability at constant density.

Paper series (10 dims, Zipf 1.5): tuple count and cardinality grow
together so density stays fixed; H-Cubing's time climbs steeply with
scale while range cubing grows gently (17x gap at the paper's largest
point), and the space ratios improve slightly.
"""

import pytest

from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing_detailed
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_dims": 5, "points": ((250, 25), (500, 50), (1000, 100))},
    "small": {
        "n_dims": 8,
        "points": ((500, 50), (1000, 100), (2000, 200), (4000, 400)),
    },
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
THETA = 1.5


def table_for(point):
    n_rows, cardinality = point
    return cached_zipf(n_rows, PARAMS["n_dims"], cardinality, THETA)


@pytest.mark.parametrize("point", PARAMS["points"], ids=lambda p: f"{p[0]}x{p[1]}")
def test_fig11_range_cubing(benchmark, point):
    table = table_for(point)
    order = preferred_order(table, "desc")
    cube, stats = run_once(benchmark, range_cubing_detailed, table, dim_order=order)
    htree_nodes = HTree.build(table.reordered(order)).n_nodes()
    benchmark.extra_info.update(
        figure="11",
        n_rows=point[0],
        cardinality=point[1],
        ranges=cube.n_ranges,
        full_cells=cube.n_cells,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
        node_ratio=round(stats["trie_nodes"] / htree_nodes, 4),
    )


@pytest.mark.parametrize("point", PARAMS["points"], ids=lambda p: f"{p[0]}x{p[1]}")
def test_fig11_h_cubing(benchmark, point):
    table = table_for(point)
    order = preferred_order(table, "asc")
    cube = run_once(benchmark, h_cubing, table, dim_order=order)
    benchmark.extra_info.update(
        figure="11", n_rows=point[0], cardinality=point[1], cells=len(cube)
    )
