"""Figure 10 benchmark: run time and space compression vs cardinality.

Paper series (Zipf 1.5, 6 dims, tuple count fixed): H-Cubing's run time
rises rapidly with cardinality (less prefix sharing) while range cubing
barely changes; both space ratios improve because sparser data means more
value coincidence for the trie to factor out.
"""

import pytest

from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing_detailed
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 500, "n_dims": 5, "cards": (10, 100, 1000)},
    "small": {"n_rows": 2000, "n_dims": 6, "cards": (10, 100, 1000, 10000)},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
THETA = 1.5


def table_for(cardinality: int):
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], cardinality, THETA)


@pytest.mark.parametrize("cardinality", PARAMS["cards"])
def test_fig10_range_cubing(benchmark, cardinality):
    table = table_for(cardinality)
    order = preferred_order(table, "desc")
    cube, stats = run_once(benchmark, range_cubing_detailed, table, dim_order=order)
    htree_nodes = HTree.build(table.reordered(order)).n_nodes()
    benchmark.extra_info.update(
        figure="10",
        cardinality=cardinality,
        ranges=cube.n_ranges,
        full_cells=cube.n_cells,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
        node_ratio=round(stats["trie_nodes"] / htree_nodes, 4),
    )


@pytest.mark.parametrize("cardinality", PARAMS["cards"])
def test_fig10_h_cubing(benchmark, cardinality):
    table = table_for(cardinality)
    order = preferred_order(table, "asc")
    cube = run_once(benchmark, h_cubing, table, dim_order=order)
    benchmark.extra_info.update(figure="10", cardinality=cardinality, cells=len(cube))
