"""Figure 9 benchmark: run time and space compression vs Zipf skew.

Paper series (6 dims, cardinality 100): both algorithms get faster as the
data gets more skewed (their trees adapt); the tuple ratio worsens with
skew and stabilizes around Zipf 1.5.
"""

import pytest

from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing_detailed
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 500, "n_dims": 5, "cardinality": 50, "thetas": (0.0, 1.0, 2.0, 3.0)},
    "small": {
        "n_rows": 2000,
        "n_dims": 6,
        "cardinality": 100,
        "thetas": (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    },
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]


def table_for(theta: float):
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], theta)


@pytest.mark.parametrize("theta", PARAMS["thetas"])
def test_fig9_range_cubing(benchmark, theta):
    table = table_for(theta)
    order = preferred_order(table, "desc")
    cube, stats = run_once(benchmark, range_cubing_detailed, table, dim_order=order)
    htree_nodes = HTree.build(table.reordered(order)).n_nodes()
    benchmark.extra_info.update(
        figure="9",
        zipf=theta,
        ranges=cube.n_ranges,
        full_cells=cube.n_cells,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
        node_ratio=round(stats["trie_nodes"] / htree_nodes, 4),
    )


@pytest.mark.parametrize("theta", PARAMS["thetas"])
def test_fig9_h_cubing(benchmark, theta):
    table = table_for(theta)
    order = preferred_order(table, "asc")
    cube = run_once(benchmark, h_cubing, table, dim_order=order)
    benchmark.extra_info.update(figure="9", zipf=theta, cells=len(cube))
