"""Ablation benchmark: iceberg (Apriori) pruning.

Node counts upper-bound every descendant cell's count, so raising the
support threshold prunes whole trie branches before any work is done on
them — time and output size should fall together.  The same thresholds
run on BUC for reference (its pruning is the original Apriori-in-BUC).
"""

import pytest

from repro.baselines.buc import buc
from repro.core.range_cubing import range_cubing
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 600, "n_dims": 5, "cardinality": 50},
    "small": {"n_rows": 3000, "n_dims": 6, "cardinality": 100},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
MIN_SUPPORTS = (1, 4, 16, 64)


def table():
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.8)


@pytest.mark.parametrize("min_support", MIN_SUPPORTS)
def test_iceberg_range_cubing(benchmark, min_support):
    t = table()
    order = preferred_order(t, "desc")
    cube = run_once(benchmark, range_cubing, t, dim_order=order, min_support=min_support)
    benchmark.extra_info.update(
        ablation="iceberg",
        min_support=min_support,
        ranges=cube.n_ranges,
        iceberg_cells=cube.n_cells,
    )


@pytest.mark.parametrize("min_support", MIN_SUPPORTS)
def test_iceberg_buc(benchmark, min_support):
    t = table()
    order = preferred_order(t, "desc")
    cube = run_once(benchmark, buc, t, dim_order=order, min_support=min_support)
    benchmark.extra_info.update(
        ablation="iceberg", min_support=min_support, cells=len(cube)
    )
