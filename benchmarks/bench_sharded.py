"""Sharded-service benchmark: scatter-gather routing vs one engine.

Value-routed sharding partitions the table on a shard dimension
(``row[shard_dim] % n_shards``), so every query that binds the shard
dimension touches exactly one worker — and that worker's range cube,
postings and cuboid maps are a fraction of the monolithic cube's.  On a
single CPU the win therefore comes from *work reduction*, not
parallelism: the routed batch probes a quarter-size index (plus one
pipe round trip, ~1ms per batch).

The shard key is an *entity-style* dimension: uniform, and a member of
no functional dependency (dim 3 of the correlated schema, re-drawn
uniformly — like a user or device id).  That is the key a sharded
deployment would route on, and it is what makes the residue classes
balanced.  Routing on a zipf-skewed dimension instead caps the win at
the head value's mass (the heaviest value alone holds ~38% of the rows
at theta 1.5), which is a property of the key choice, not the router.

The workload is the routed profile the tier is designed for: batches of
fresh queries that all bind the shard dimension — point lookups of 1-4
bound dims over real rows, plus a dice share with small predicate
lists.  Both tiers run with the result cache disabled and fully warmed
index structures (best-of-3 over pre-warmed batches), so the comparison
measures the lookup path, not caching or one-time cuboid-map builds.
Identity against the single engine is verified on a sample before
anything is timed.

Standalone mode measures the same batches against a plain
:class:`QueryEngine` and routers at each shard count, enforces a
``MIN_SPEEDUP``x floor at 4 shards, and (outside ``--quick``) writes the
curve to ``BENCH_sharded.json``::

    PYTHONPATH=src python benchmarks/bench_sharded.py --quick
"""

import json
import random
import time

import numpy as np

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.serve import QueryEngine, QueryRequest, ShardRouter

#: Acceptance floor: the 4-shard router must beat the single engine by
#: this factor on the routed batch workload at the 100k-row point.
MIN_SPEEDUP = 2.0

#: The correlated workload of bench_point_queries: zipf theta 1.5,
#: 8 dims, a store determining city-like attributes and a station its
#: coordinates.  100k rows / cardinality 100 is the measured point.
N_ROWS = 100_000
N_DIMS = 8
CARD = 100
THETA = 1.5
FDS = (
    FunctionalDependency((0,), (1, 2)),
    FunctionalDependency((4,), (5, 6, 7)),
)

#: The shard key: dim 3 belongs to no functional dependency, so
#: re-drawing it uniformly (an entity id) leaves the correlation
#: structure of the other seven dimensions intact.
SHARD_DIM = 3

#: Queries per measured batch, timing rounds (fresh queries each), and
#: the dice share of the mix.
BATCH_QUERIES = 4096
ROUNDS = 3
DICE_SHARE = 0.10

SHARD_COUNTS = {"quick": (1, 4), "full": (1, 2, 4)}


def build_table():
    table = correlated_table(N_ROWS, N_DIMS, CARD, FDS, theta=THETA, seed=7)
    # Integer measures: distributive merges finalize bit-identically,
    # so sharded == single is checkable with plain equality.
    table.measures[:] = np.round(table.measures)
    # The shard key: uniform entity codes instead of the zipf draw.
    rng = np.random.default_rng(99)
    table.dim_codes[:, SHARD_DIM] = rng.integers(0, CARD, size=table.n_rows)
    return table


def make_requests(table, n_queries: int, seed: int = 0):
    """Routed analytical batches: every query binds the shard dimension.

    Unique queries by construction — both tiers keep their result caches
    cold, so the comparison measures the lookup path, not the cache.
    """
    rng = random.Random(seed)
    rows = [tuple(int(v) for v in row) for row in table.dim_rows()[:4000]]
    others = [d for d in range(N_DIMS) if d != SHARD_DIM]
    requests, seen = [], set()
    while len(requests) < n_queries:
        row = rows[rng.randrange(len(rows))]
        if rng.random() < DICE_SHARE:
            pred_dims = rng.sample(others, 2)
            predicates = {
                str(d): sorted(rng.sample(range(CARD), 3)) for d in pred_dims
            }
            cell = [None] * N_DIMS
            cell[SHARD_DIM] = row[SHARD_DIM]
            key = ("dice", row[SHARD_DIM],
                   tuple(sorted((d, tuple(v)) for d, v in predicates.items())))
            if key in seen:
                continue
            request = QueryRequest(op="dice", cell=cell, predicates=predicates)
        else:
            extra = rng.sample(others, rng.randint(0, 3))
            cell = [row[d] if d == SHARD_DIM or d in extra else None
                    for d in range(N_DIMS)]
            key = ("point", tuple(cell))
            if key in seen:
                continue
            request = QueryRequest(op="point", cell=cell)
        seen.add(key)
        requests.append(request)
    return requests


def verify_identity(single, router, requests) -> None:
    """Sharded answers must be bit-identical to the single engine's."""
    mine = router.execute_batch(requests)
    theirs = single.execute_batch(requests)
    for request, a, b in zip(requests, mine, theirs):
        a, b = dict(a), dict(b)
        a.pop("cached", None), b.pop("cached", None)
        if a != b:
            raise AssertionError(f"sharded != single on {request.to_json()}")


def measure_tier(tier, batches, rounds: int = 3) -> float:
    """Best-of-``rounds`` seconds to answer every batch, fully warmed.

    One untimed pass first builds every cuboid map the batches touch (a
    one-time cost on either tier); the timed passes then measure the
    steady-state lookup path.  The result caches are disabled at
    construction, so repeats cannot shortcut anything.
    """
    for batch in batches:
        tier.execute_batch(batch)
    best = float("inf")
    for _ in range(rounds):
        total = 0.0
        for batch in batches:
            start = time.perf_counter()
            tier.execute_batch(batch)
            total += time.perf_counter() - start
        best = min(best, total)
    return best


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single vs 4 shards only (the CI smoke job)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless 4 shards beat the single engine by this factor",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the curve as JSON (default: no file in --quick mode, "
        "BENCH_sharded.json otherwise)",
    )
    args = parser.parse_args(argv)
    shard_counts = SHARD_COUNTS["quick" if args.quick else "full"]
    out_path = args.out if args.out else (
        None if args.quick else "BENCH_sharded.json"
    )

    print(
        f"sharded bench: {N_ROWS:,} rows, zipf theta {THETA}, {N_DIMS} dims, "
        f"cardinality {CARD}, shard dim {SHARD_DIM}, "
        f"{ROUNDS}x{BATCH_QUERIES:,} routed queries ({DICE_SHARE:.0%} dice)"
    )
    table = build_table()
    batches = [
        make_requests(table, BATCH_QUERIES, seed=round_i)
        for round_i in range(ROUNDS)
    ]
    n_queries = sum(len(b) for b in batches)

    build_start = time.perf_counter()
    single = QueryEngine.from_table(table, cache_capacity=0)
    single_build_s = time.perf_counter() - build_start
    print(f"single engine: {single.stats()['n_ranges']:,} ranges "
          f"(built in {single_build_s:.1f}s)")

    points = []
    baseline_s = None
    for n_shards in shard_counts:
        if n_shards == 1:
            tier, router = single, None
            build_s = single_build_s
            shard_ranges = [single.stats()["n_ranges"]]
        else:
            build_start = time.perf_counter()
            router = ShardRouter.from_table(
                table, n_shards=n_shards, shard_dim=SHARD_DIM, cache_capacity=0
            )
            build_s = time.perf_counter() - build_start
            tier = router
            shard_ranges = [s["n_ranges"] for s in router.stats()["shards"]]
            verify_identity(single, router, batches[0][:512])
        try:
            seconds = measure_tier(tier, batches)
        finally:
            if router is not None:
                router.close()
        if n_shards == 1:
            baseline_s = seconds
        point = {
            "shards": n_shards,
            "build_seconds": round(build_s, 2),
            "n_ranges_per_shard": shard_ranges,
            "queries": n_queries,
            "seconds": round(seconds, 4),
            "us_per_query": round(seconds / n_queries * 1e6, 3),
            "throughput_qps": round(n_queries / seconds, 1),
            "speedup": round(baseline_s / seconds, 2),
        }
        points.append(point)
        print(
            f"{n_shards:>2} shard(s): {seconds * 1e3:8.1f}ms for "
            f"{n_queries:,} queries ({point['us_per_query']:.2f}us/q, "
            f"{point['throughput_qps']:,.0f} q/s)   "
            f"speedup {point['speedup']:5.2f}x"
        )

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "sharded_scatter_gather",
                    "n_rows": N_ROWS,
                    "n_dims": N_DIMS,
                    "cardinality": CARD,
                    "theta": THETA,
                    "dependencies": [
                        [list(f.source_dims), list(f.target_dims)] for f in FDS
                    ],
                    "shard_dim": SHARD_DIM,
                    "queries_per_batch": BATCH_QUERIES,
                    "rounds": ROUNDS,
                    "dice_share": DICE_SHARE,
                    "min_speedup_floor": args.min_speedup,
                    "points": points,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    final = points[-1]
    print(
        f"floor: {final['speedup']:.2f}x at {final['shards']} shards "
        f"(need >= {args.min_speedup:g}x)"
    )
    if final["speedup"] < args.min_speedup:
        print("FAIL: sharded routing below the speedup floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
