"""Approximate-tier benchmark: sketch-served dice vs the exact path.

The workload is the traffic the approximate tier exists for: *heavy*
dice queries — wide multi-dimension predicates over the apex, each
admitting dozens of codes per dimension — against the 100k-row
correlated table of ``bench_point_queries``.  Exactly answering one of
these merges thousands of ranges; the sketch answers from a fixed
2048-cell stratified sample plus per-dimension histograms, so its cost
is independent of how many ranges the predicate touches.

Both tiers run on the same :class:`QueryEngine` with the result cache
disabled (every request is unique anyway) and fully warmed structures —
one untimed pass first, best-of-N timed passes after — so the
comparison is the steady-state answer path, not caching or the one-time
sketch build.

Correctness is gated alongside speed: for every query the exact answer
must fall inside the approx response's ``[lower, upper]`` interval at
least ``MIN_COVERAGE`` of the time (the bounds are 95% intervals; the
floor leaves slack for the finite query count), and the estimate's
relative error is reported.

Standalone mode enforces a ``MIN_SPEEDUP``x floor and (outside
``--quick``) writes ``BENCH_approx.json``::

    PYTHONPATH=src python benchmarks/bench_approx.py --quick
"""

import json
import random
import time

import numpy as np

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.serve import QueryEngine, QueryRequest

#: Acceptance floors: the sketch must beat the exact path by this factor
#: on the heavy-dice workload, and the exact answer must land inside the
#: reported 95% interval on at least this fraction of queries.
MIN_SPEEDUP = 10.0
MIN_SPEEDUP_QUICK = 2.0
MIN_COVERAGE = 0.85

#: The correlated generator of bench_point_queries / bench_sharded, at
#: the cardinality/skew point where the finest cuboid stays large
#: (~6M ranges at 100k rows): the regime the approximate tier exists
#: for, where every exact dice degenerates to a near-full-store scan.
N_ROWS = 100_000
N_ROWS_QUICK = 20_000
N_DIMS = 10
CARD = 200
THETA = 1.1
FDS = (
    FunctionalDependency((0,), (1, 2)),
    FunctionalDependency((4,), (5, 6, 7)),
)

#: Heavy dice: predicates over this many dimensions, each admitting
#: this many codes — wide enough that the exact path's per-value work
#: and its range scan both bite, while the sketch's cost stays fixed.
PRED_DIMS = 6
PRED_VALUES = 100
N_QUERIES = 256
N_QUERIES_QUICK = 64
ROUNDS = 3


def build_table(n_rows: int):
    table = correlated_table(n_rows, N_DIMS, CARD, FDS, theta=THETA, seed=7)
    table.measures[:] = np.round(table.measures)
    return table


def make_requests(n_queries: int, seed: int = 0):
    """Unique heavy dice over the apex (all dimensions free)."""
    rng = random.Random(seed)
    requests, seen = [], set()
    while len(requests) < n_queries:
        pred_dims = rng.sample(range(N_DIMS), PRED_DIMS)
        predicates = {
            str(d): sorted(rng.sample(range(CARD), PRED_VALUES))
            for d in pred_dims
        }
        key = tuple(sorted((d, tuple(v)) for d, v in predicates.items()))
        if key in seen:
            continue
        seen.add(key)
        requests.append(QueryRequest(op="dice", predicates=predicates))
    return requests


def approx_variant(request: QueryRequest) -> QueryRequest:
    return QueryRequest(
        op="dice", predicates=request.predicates, approx=True
    )


def measure(engine, batches, rounds: int) -> float:
    """Best-of-``rounds`` seconds to answer every batch, fully warmed."""
    for batch in batches:
        engine.execute_batch(batch)
    best = float("inf")
    for _ in range(rounds):
        total = 0.0
        for batch in batches:
            start = time.perf_counter()
            engine.execute_batch(batch)
            total += time.perf_counter() - start
        best = min(best, total)
    return best


def check_bounds(engine, requests) -> dict:
    """Coverage and error of the approx answers against the exact ones."""
    exact = engine.execute_batch(requests)
    approx = engine.execute_batch([approx_variant(r) for r in requests])
    covered = 0
    rel_errors = []
    widths = []
    for ex, ap in zip(exact, approx):
        block = ap["approx"]
        assert "estimate" in block, f"unexpected fallback: {block}"
        truth = ex["value"] or {k: 0.0 for k in block["estimate"]}
        inside = all(
            block["lower"][k] - 1e-9 <= float(truth[k]) <= block["upper"][k] + 1e-9
            for k in block["estimate"]
        )
        covered += inside
        true_count = float(truth["count"])
        est_count = float(block["estimate"]["count"])
        rel_errors.append(
            abs(est_count - true_count) / max(true_count, 1.0)
        )
        widths.append(
            (block["upper"]["count"] - block["lower"]["count"])
            / max(true_count, 1.0)
        )
    return {
        "queries": len(requests),
        "coverage": round(covered / len(requests), 4),
        "mean_rel_error_count": round(float(np.mean(rel_errors)), 5),
        "p95_rel_error_count": round(float(np.quantile(rel_errors, 0.95)), 5),
        "mean_bound_width_count": round(float(np.mean(widths)), 5),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller table and fewer queries (the CI smoke job)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless approx beats exact by this factor "
        f"(default {MIN_SPEEDUP:g}, {MIN_SPEEDUP_QUICK:g} with --quick)",
    )
    parser.add_argument(
        "--min-coverage", type=float, default=MIN_COVERAGE,
        help="fail unless the exact answer falls inside the reported "
        "bounds on at least this fraction of queries",
    )
    parser.add_argument(
        "--out", default=None,
        help="write results as JSON (default: no file in --quick mode, "
        "BENCH_approx.json otherwise)",
    )
    args = parser.parse_args(argv)
    n_rows = N_ROWS_QUICK if args.quick else N_ROWS
    n_queries = N_QUERIES_QUICK if args.quick else N_QUERIES
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        MIN_SPEEDUP_QUICK if args.quick else MIN_SPEEDUP
    )
    out_path = args.out if args.out else (
        None if args.quick else "BENCH_approx.json"
    )

    print(
        f"approx bench: {n_rows:,} rows, zipf theta {THETA}, {N_DIMS} dims, "
        f"cardinality {CARD}; {n_queries} heavy dice "
        f"({PRED_DIMS} pred dims x {PRED_VALUES} codes), best of {ROUNDS}"
    )
    table = build_table(n_rows)
    build_start = time.perf_counter()
    engine = QueryEngine.from_table(table, cache_capacity=0)
    build_s = time.perf_counter() - build_start
    print(f"engine: {engine.stats()['n_ranges']:,} ranges "
          f"(built in {build_s:.1f}s)")

    requests = make_requests(n_queries, seed=1)
    exact_batches = [requests]
    approx_batches = [[approx_variant(r) for r in requests]]

    quality = check_bounds(engine, requests)
    print(
        f"bounds: coverage {quality['coverage']:.1%} over "
        f"{quality['queries']} queries (need >= {args.min_coverage:.0%}); "
        f"count rel error mean {quality['mean_rel_error_count']:.3%} "
        f"p95 {quality['p95_rel_error_count']:.3%}; "
        f"mean 95% bound width {quality['mean_bound_width_count']:.3%}"
    )

    exact_s = measure(engine, exact_batches, ROUNDS)
    approx_s = measure(engine, approx_batches, ROUNDS)
    speedup = exact_s / approx_s
    print(
        f"exact:  {exact_s * 1e3:8.1f}ms "
        f"({exact_s / n_queries * 1e6:8.1f}us/q)\n"
        f"approx: {approx_s * 1e3:8.1f}ms "
        f"({approx_s / n_queries * 1e6:8.1f}us/q)\n"
        f"speedup {speedup:.2f}x (need >= {min_speedup:g}x)"
    )

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "approx_dice",
                    "n_rows": n_rows,
                    "n_dims": N_DIMS,
                    "cardinality": CARD,
                    "theta": THETA,
                    "dependencies": [
                        [list(f.source_dims), list(f.target_dims)] for f in FDS
                    ],
                    "pred_dims": PRED_DIMS,
                    "pred_values": PRED_VALUES,
                    "queries": n_queries,
                    "rounds": ROUNDS,
                    "min_speedup_floor": min_speedup,
                    "min_coverage_floor": args.min_coverage,
                    "exact_seconds": round(exact_s, 4),
                    "approx_seconds": round(approx_s, 4),
                    "exact_us_per_query": round(exact_s / n_queries * 1e6, 2),
                    "approx_us_per_query": round(approx_s / n_queries * 1e6, 2),
                    "speedup": round(speedup, 2),
                    **quality,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    failed = False
    if quality["coverage"] < args.min_coverage:
        print("FAIL: exact answers fall outside the reported bounds too often")
        failed = True
    if speedup < min_speedup:
        print("FAIL: approx tier below the speedup floor")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
