"""Density-regime benchmark: range cubing vs MultiWay array cubing.

The paper notes that in the dense regime the range trie degenerates
toward an H-tree and range compression fades; that is exactly where the
Array Cube (MultiWay) wins — its cost depends on the dimension space,
not the tuple count.  The sweep crosses from dense (cardinality 4) to
sparse (cardinality 256): MultiWay should win the dense end and lose the
sparse end, with range cubing steady throughout.
"""

import pytest

from repro.baselines.multiway import multiway
from repro.core.range_cubing import range_cubing
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 600, "n_dims": 4, "cards": (4, 16, 64, 256)},
    "small": {"n_rows": 4000, "n_dims": 5, "cards": (4, 16, 64, 256)},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]


def table_for(cardinality: int):
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], cardinality, 0.5)


@pytest.mark.parametrize("cardinality", PARAMS["cards"])
def test_density_range_cubing(benchmark, cardinality):
    t = table_for(cardinality)
    cube = run_once(benchmark, range_cubing, t, dim_order=preferred_order(t, "desc"))
    benchmark.extra_info.update(
        regime="density",
        cardinality=cardinality,
        ranges=cube.n_ranges,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
    )


@pytest.mark.parametrize("cardinality", PARAMS["cards"])
def test_density_multiway(benchmark, cardinality):
    t = table_for(cardinality)
    space = 1
    for d in range(t.n_dims):
        space *= int(t.dim_codes[:, d].max()) + 1
    if space > 20_000_000:
        pytest.skip(
            f"dimension space {space:,} cells: array cubing is out of its "
            "regime here — which is the point of this sweep"
        )
    cube = run_once(benchmark, multiway, t)
    benchmark.extra_info.update(
        regime="density", cardinality=cardinality, cells=len(cube)
    )
