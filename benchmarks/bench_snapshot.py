"""Snapshot benchmark: restart latency and out-of-core query cost.

The snapshot subsystem's claim (see ``docs/persistence.md``) is that a
serving restart should not pay the cube again: loading a memory-mapped
column snapshot is I/O-metadata work, while the classic ``CubeStore``
path re-parses the trie JSON and re-emits every range.  This measures

* **cold start** — engine construction plus the first answered (apex)
  query, for the JSON trie store vs the mmap snapshot of the same cube;
* **cold-mask queries** — batched point lookups through a
  :class:`~repro.store.SnapshotEngine` whose tier policy is pinned cold
  (a resident budget far below the mapped columns, so every group runs
  off the mapped postings), against the same engine fully promoted.

Answers are verified identical between the two engines before anything
is timed.

Run under pytest-benchmark like the other bench modules, or standalone
as a CI smoke check that enforces a ``MIN_SPEEDUP``x cold-start floor
for the snapshot path at the largest correlated point::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --quick

The standalone mode writes its series to ``BENCH_snapshot.json``
(committed at the repo root; see ``docs/persistence.md``).
"""

import atexit
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.serve.protocol import QueryRequest
from repro.serve.store import CubeStore
from repro.store import SnapshotEngine, write_snapshot
from repro.table.schema import Dimension, Schema

try:
    from benchmarks.conftest import PRESET, cached_zipf, run_once
except ModuleNotFoundError:  # executed as a script: put the repo root on the path
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import PRESET, cached_zipf, run_once

# The correlated workload and query mix of the point-query bench, so the
# two benches describe the same cube from the build and restart sides.
from benchmarks.bench_point_queries import (  # noqa: E402
    FDS,
    N_DIMS,
    THETA,
    corr_table,
    make_queries,
)

#: Acceptance floor: the snapshot cold start must beat the JSON trie
#: load by this factor at the largest correlated point.
MIN_SPEEDUP = 10.0

#: (n_rows, cardinality) series per preset; the CI smoke job runs
#: "quick" and enforces the floor at its 100k-row point.
POINTS = {
    "quick": [(10_000, 50), (100_000, 100)],
    "tiny": [(10_000, 50), (100_000, 100)],
    "small": [(30_000, 100), (100_000, 100), (300_000, 200)],
}
SERIES = POINTS["small" if PRESET == "small" else "tiny"]

#: Resident-bytes budget for the pinned-cold engine: far below the
#: mapped column bytes at every measured point, so the tier policy can
#: never promote a cuboid map and every batch runs out of core.
COLD_BUDGET = 64 * 1024

#: Point queries per measured batch in the cold-mask measurement.
MASK_QUERIES = 1024

SCALES = {
    "tiny": {"n_rows": 400, "n_dims": 4, "cardinality": 20},
    "small": {"n_rows": 2000, "n_dims": 5, "cardinality": 50},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

_CACHE: dict = {}


def _pinned_schema(table) -> Schema:
    return Schema(
        tuple(
            Dimension(d.name, int(c) if c else table.distinct_count(i))
            for i, (d, c) in enumerate(
                zip(table.schema.dimensions, table.schema.cardinalities)
            )
        ),
        table.schema.measures,
    )


def _workdir() -> Path:
    root = Path(tempfile.mkdtemp(prefix="repro-bench-snapshot-"))
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    return root


def _stores_for(table, root: Path) -> tuple[CubeStore, Path]:
    """The same cube twice: a JSON trie store entry and a snapshot dir."""
    store = CubeStore(root)
    stored = store.create("bench", table, overwrite=True)
    snap = root / "bench.mmap"
    write_snapshot(
        stored.cuber.cube(stored.min_support),
        snap,
        _pinned_schema(table),
        min_support=stored.min_support,
        rows_absorbed=table.n_rows,
    )
    return store, snap


def _close(engine) -> None:
    if hasattr(engine, "close"):
        engine.close()


def _json_cold(store: CubeStore, n_dims: int):
    engine = store.open_engine("bench", cache_capacity=0)
    engine.point([None] * n_dims)
    return engine


def _snapshot_cold(snap: Path, n_dims: int):
    engine = SnapshotEngine(snap, cache_capacity=0)
    engine.point([None] * n_dims)
    return engine


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def fixture():
    if not _CACHE:
        table = cached_zipf(
            PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2
        )
        store, snap = _stores_for(table, _workdir())
        _CACHE.update(table=table, store=store, snap=snap)
    return _CACHE


def test_cold_start_json(benchmark):
    """Restart through the trie JSON: parse, re-emit, answer the apex."""
    f = fixture()
    n_dims = f["table"].n_dims
    engine = run_once(benchmark, lambda: _json_cold(f["store"], n_dims))
    benchmark.extra_info.update(path="json-trie", n_ranges=engine.stats()["n_ranges"])
    _close(engine)


def test_cold_start_snapshot(benchmark):
    """Restart through the snapshot: mmap the columns, answer the apex."""
    f = fixture()
    n_dims = f["table"].n_dims
    engine = run_once(benchmark, lambda: _snapshot_cold(f["snap"], n_dims))
    benchmark.extra_info.update(
        path="mmap-snapshot",
        n_ranges=engine.stats()["n_ranges"],
        mapped_kib=round(engine.store.nbytes() / 1024, 1),
    )
    _close(engine)


# ----------------------------------------------------------------------
# standalone smoke mode (CI): verify identity, enforce the cold-start floor
# ----------------------------------------------------------------------


def verify_identity(store: CubeStore, snap: Path, queries) -> int:
    """Both engines answer every probe cell identically (run before timing)."""
    json_engine = store.open_engine("bench", cache_capacity=0)
    snap_engine = SnapshotEngine(snap, cache_capacity=0)
    hits = 0
    try:
        for cell in queries:
            expect = json_engine.point(list(cell))
            got = snap_engine.point(list(cell))
            if expect != got:
                raise AssertionError(
                    f"json and snapshot engines disagree on {cell}: "
                    f"{expect!r} != {got!r}"
                )
            if got is not None:
                hits += 1
    finally:
        _close(json_engine)
        _close(snap_engine)
    return hits


def measure_cold_start(store: CubeStore, snap: Path, n_dims: int) -> dict:
    json_s = _best_of(lambda: _close(_json_cold(store, n_dims)), rounds=2)
    snap_s = _best_of(lambda: _close(_snapshot_cold(snap, n_dims)))
    return {
        "json_cold_seconds": round(json_s, 4),
        "snapshot_cold_seconds": round(snap_s, 4),
        "speedup": round(json_s / snap_s if snap_s else float("inf"), 2),
    }


def measure_mask_latency(snap: Path, queries) -> dict:
    """Batched point queries: tier pinned cold vs fully promoted."""
    requests = [QueryRequest(op="point", cell=list(c)) for c in queries]
    cold = SnapshotEngine(
        snap, cache_capacity=0, budget_bytes=COLD_BUDGET, promote_after=1 << 30
    )
    cold.execute_batch(requests)  # page the columns in once
    cold_s = _best_of(lambda: cold.execute_batch(requests))
    cold_tier = cold.tier_stats()
    _close(cold)
    hot = SnapshotEngine(snap, cache_capacity=0, promote_after=1)
    hot.execute_batch(requests)  # promote every mask the batch touches
    hot_s = _best_of(lambda: hot.execute_batch(requests))
    hot_tier = hot.tier_stats()
    mapped = hot.store.nbytes()
    _close(hot)
    assert cold_tier["resident_bytes"] <= COLD_BUDGET, cold_tier
    return {
        "column_bytes": mapped,
        "cold_budget_bytes": COLD_BUDGET,
        "cold_us_per_query": round(cold_s / len(queries) * 1e6, 3),
        "hot_us_per_query": round(hot_s / len(queries) * 1e6, 3),
        "cold_tier": cold_tier,
        "hot_tier": hot_tier,
    }


def measure_point(n_rows: int, cardinality: int, root: Path) -> dict:
    table = corr_table(n_rows, cardinality)
    store, snap = _stores_for(table, root)
    queries = make_queries(table, MASK_QUERIES, seed=11)
    hits = verify_identity(store, snap, queries[:192])
    point = {
        "n_rows": n_rows,
        "cardinality": cardinality,
        "queries": len(queries),
        "verified_hits": hits,
        **measure_cold_start(store, snap, table.n_dims),
        **measure_mask_latency(snap, queries),
    }
    return point


def print_point(p: dict) -> None:
    print(
        f"{p['n_rows']:>9,} rows: json cold {p['json_cold_seconds'] * 1e3:9.1f}ms   "
        f"mmap cold {p['snapshot_cold_seconds'] * 1e3:7.1f}ms   "
        f"speedup {p['speedup']:6.1f}x   "
        f"cold {p['cold_us_per_query']:7.2f}us/q  hot {p['hot_us_per_query']:6.2f}us/q "
        f"({p['hot_tier']['hot_masks']} hot masks, "
        f"{p['hot_tier']['resident_bytes'] / 1024:.0f} KiB resident)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest scale (the CI smoke job)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless the snapshot cold start beats the JSON trie load "
        "by this factor at the largest point",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the series as JSON (default: no file in --quick mode, "
        "BENCH_snapshot.json otherwise)",
    )
    args = parser.parse_args(argv)
    points = POINTS["quick"] if args.quick else SERIES
    out_path = args.out if args.out else (None if args.quick else "BENCH_snapshot.json")

    print(
        f"snapshot bench: zipf theta {THETA}, {N_DIMS} dims, "
        f"{len(FDS)} functional dependencies, {MASK_QUERIES:,} queries per batch, "
        f"cold budget {COLD_BUDGET // 1024} KiB"
    )
    root = _workdir()
    series = []
    for n_rows, card in points:
        point = measure_point(n_rows, card, root / f"r{n_rows}")
        series.append(point)
        print_point(point)

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "snapshot",
                    "n_dims": N_DIMS,
                    "theta": THETA,
                    "dependencies": [
                        [list(f.source_dims), list(f.target_dims)] for f in FDS
                    ],
                    "queries_per_batch": MASK_QUERIES,
                    "cold_budget_bytes": COLD_BUDGET,
                    "min_speedup_floor": args.min_speedup,
                    "points": series,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    final = series[-1]
    print(
        f"floor: {final['speedup']:.1f}x at {final['n_rows']:,} rows "
        f"(need >= {args.min_speedup:g}x)"
    )
    if final["speedup"] < args.min_speedup:
        print("FAIL: snapshot cold start below the speedup floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
