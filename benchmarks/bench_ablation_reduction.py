"""Ablation benchmark: merge-based trie reduction vs rebuild-from-scratch.

DESIGN.md commits to the non-destructive merge-based reduction of paper
Section 5.1 over the naive alternative (project the leaves, rebuild with
Algorithm 1).  The two are proven structurally equal by property tests;
this benchmark justifies the choice on cost: one full reduction chain
(n dims -> 0) per approach, on the same trie.
"""

from repro.core.range_trie import RangeTrie
from repro.core.reduction import rebuild_reduced, reduce_trie
from repro.table.aggregates import SumCountAggregator

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 600, "n_dims": 5, "cardinality": 40},
    "small": {"n_rows": 3000, "n_dims": 6, "cardinality": 100},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
AGG = SumCountAggregator(0)

_CACHE: dict = {}


def trie() -> RangeTrie:
    if "trie" not in _CACHE:
        table = cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.5)
        _CACHE["trie"] = RangeTrie.build(table, AGG)
    return _CACHE["trie"]


def test_reduction_merge_based(benchmark):
    base = trie()

    def full_chain():
        root = base.root
        for _ in range(PARAMS["n_dims"]):
            root = reduce_trie(root, AGG.merge)
        return root

    run_once(benchmark, full_chain)
    benchmark.extra_info.update(ablation="reduction", method="merge")


def test_reduction_rebuild_reference(benchmark):
    base = trie()

    def full_chain():
        current = base
        for dim in range(PARAMS["n_dims"]):
            current = rebuild_reduced(current, drop_dim=dim, aggregator=AGG)
        return current

    run_once(benchmark, full_chain)
    benchmark.extra_info.update(ablation="reduction", method="rebuild")
