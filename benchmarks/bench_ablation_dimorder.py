"""Ablation benchmark: dimension-order sensitivity (paper Section 5.2).

The paper argues range cubing is comparatively insensitive to dimension
order (the trie adapts per branch) and that cardinality-descending is its
best order.  The series: range cubing and H-Cubing under descending,
ascending, unsorted and self-tuned (``"auto"``, see :mod:`repro.tune`)
orders on the same skewed table, plus the same sweep on the correlated
workloads the acceptance gate (``bench_dimorder``) runs — one shared
definition in ``benchmarks.conftest.DIMORDER_WORKLOADS``, so ablation
and gate argue about the same tables.
"""

import pytest

from repro.baselines.hcubing import h_cubing
from repro.core.range_cubing import range_cubing
from repro.harness.runner import preferred_order

from benchmarks.conftest import (
    DIMORDER_WORKLOADS,
    PRESET,
    cached_correlated,
    cached_zipf,
    run_once,
)

SCALES = {
    "tiny": {"n_rows": 500, "n_dims": 5, "cardinality": 50},
    "small": {"n_rows": 2000, "n_dims": 6, "cardinality": 100},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]
POLICIES = ("desc", "asc", None, "auto")
CORRELATED_ROWS = 6000 if PRESET != "small" else 20000


def table():
    return cached_zipf(PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.5)


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "as-is")
def test_order_range_cubing(benchmark, policy):
    t = table()
    order = preferred_order(t, policy)
    cube = run_once(benchmark, range_cubing, t, dim_order=order)
    benchmark.extra_info.update(
        ablation="dim-order",
        order=policy or "as-is",
        ranges=cube.n_ranges,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
    )


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "as-is")
def test_order_h_cubing(benchmark, policy):
    t = table()
    order = preferred_order(t, policy)
    cube = run_once(benchmark, h_cubing, t, dim_order=order)
    benchmark.extra_info.update(
        ablation="dim-order", order=policy or "as-is", cells=len(cube)
    )


@pytest.mark.parametrize("workload", sorted(DIMORDER_WORKLOADS))
@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "as-is")
def test_order_range_cubing_correlated(benchmark, workload, policy):
    t = cached_correlated(workload, CORRELATED_ROWS)
    order = preferred_order(t, policy)
    cube = run_once(benchmark, range_cubing, t, dim_order=order)
    benchmark.extra_info.update(
        ablation="dim-order",
        workload=workload,
        order=policy or "as-is",
        ranges=cube.n_ranges,
    )
