"""Point-query benchmark: every cube representation as a query structure.

The paper's format-preserving claim is that a range cube slots in where a
plain cube would: this measures answering a fixed batch of point queries
(every 7th cell of the full cube plus some empty cells) against

* the expanded cube (a plain dict — the baseline),
* the range cube through its general-endpoint hash index,
* the range cube through the columnar store's batched lookup,
* the Dwarf DAG (O(n_dims) hops per query),
* the QC-tree over quotient classes.

Construction costs are benchmarked separately so the storage/latency
trade-off is visible.

Run under pytest-benchmark like the other bench modules, or standalone
as a CI smoke check that re-verifies all three lookup strategies (hash
probe, columnar ``find_batch``, linear scan) answer identically and then
enforces a ``MIN_SPEEDUP``x floor for batched columnar lookups over the
per-cell hash path at the largest correlated point::

    PYTHONPATH=src python benchmarks/bench_point_queries.py --quick

The standalone mode writes its series to ``BENCH_point_queries.json``
(committed at the repo root; see ``docs/performance.md``).
"""

import json
import random
import time

from repro.baselines.dwarf import Dwarf
from repro.baselines.qc_tree import QCTree
from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube
from repro.data.correlated import FunctionalDependency, correlated_table

try:
    from benchmarks.conftest import PRESET, cached_zipf, run_once
except ModuleNotFoundError:  # executed as a script: put the repo root on the path
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 400, "n_dims": 4, "cardinality": 20},
    "small": {"n_rows": 2000, "n_dims": 5, "cardinality": 50},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

#: Acceptance floor: batched columnar lookups must beat the per-cell
#: hash index by this factor at the largest correlated point.
MIN_SPEEDUP = 5.0

#: The correlated workload of bench_bulk_build: zipf theta 1.5, 8 dims,
#: a store determining city-like attributes and a station its coordinates.
N_DIMS = 8
THETA = 1.5
FDS = (
    FunctionalDependency((0,), (1, 2)),
    FunctionalDependency((4,), (5, 6, 7)),
)

#: (n_rows, cardinality) series per preset; the CI smoke job runs "quick"
#: and enforces the floor at its 100k-row point.
POINTS = {
    "quick": [(10_000, 50), (100_000, 100)],
    "tiny": [(10_000, 50), (30_000, 100), (100_000, 100)],
    "small": [(30_000, 100), (100_000, 100), (300_000, 200)],
}
QUERY_PARAMS = POINTS["small" if PRESET == "small" else "tiny"]

#: Queries per measured batch and how many of them are misses.
BATCH_QUERIES = 4096
GHOST_SHARE = 0.05

_CACHE: dict = {}
_TABLES: dict = {}


def fixture():
    if not _CACHE:
        table = cached_zipf(
            PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2
        )
        oracle = compute_full_cube(table)
        queries = list(oracle.iter_cells())[::7]
        ghost = tuple(
            int(table.dim_codes[:, d].max()) + 1 for d in range(table.n_dims)
        )
        queries.append(ghost)
        _CACHE.update(table=table, oracle=oracle, queries=queries)
    return _CACHE


def _drain(structure, queries):
    hits = 0
    for cell in queries:
        if structure.lookup(cell) is not None:
            hits += 1
    return hits


def _drain_batch(index, queries):
    return sum(1 for r in index.find_batch(queries) if r is not None)


def test_queries_expanded_dict(benchmark):
    f = fixture()
    hits = run_once(benchmark, _drain, f["oracle"], f["queries"])
    benchmark.extra_info.update(structure="expanded-dict", queries=len(f["queries"]), hits=hits)


def test_queries_range_cube_index(benchmark):
    f = fixture()
    cube = range_cubing(f["table"])
    cube.lookup(f["queries"][0])  # force index construction outside timing
    hits = run_once(benchmark, _drain, cube, f["queries"])
    benchmark.extra_info.update(
        structure="range-index", queries=len(f["queries"]), hits=hits,
        index_entries=len(RangeCubeIndex(cube)),
    )


def test_queries_range_cube_batched(benchmark):
    """The columnar store's grouped find_batch over the same query set."""
    f = fixture()
    cube = range_cubing(f["table"])
    index = RangeCubeIndex(cube, strategy="columnar")
    index.find_batch(f["queries"][:64])  # warm the store and cuboid maps
    hits = run_once(benchmark, _drain_batch, index, f["queries"])
    benchmark.extra_info.update(
        structure="columnar-batched", queries=len(f["queries"]), hits=hits,
        store_kib=round(index._store.nbytes() / 1024, 1),
    )


def test_queries_dwarf(benchmark):
    f = fixture()
    dwarf = Dwarf.build(f["table"])
    hits = run_once(benchmark, _drain, dwarf, f["queries"])
    benchmark.extra_info.update(
        structure="dwarf", queries=len(f["queries"]), hits=hits,
        stored_cells=dwarf.n_stored_cells(),
    )


def test_queries_qc_tree(benchmark):
    f = fixture()
    tree = QCTree.build(f["table"])
    hits = run_once(benchmark, _drain, tree, f["queries"])
    benchmark.extra_info.update(
        structure="qc-tree", queries=len(f["queries"]), hits=hits,
        classes=tree.n_classes,
    )


def test_build_dwarf(benchmark):
    f = fixture()
    dwarf = run_once(benchmark, Dwarf.build, f["table"])
    benchmark.extra_info.update(structure="dwarf", nodes=dwarf.n_nodes())


def test_build_qc_tree(benchmark):
    f = fixture()
    tree = run_once(benchmark, QCTree.build, f["table"])
    benchmark.extra_info.update(structure="qc-tree", nodes=tree.n_nodes())


# ----------------------------------------------------------------------
# standalone smoke mode (CI): verify strategy identity, enforce the floor
# ----------------------------------------------------------------------


def corr_table(n_rows: int, cardinality: int):
    key = (n_rows, cardinality)
    if key not in _TABLES:
        _TABLES[key] = correlated_table(
            n_rows, N_DIMS, cardinality, FDS, theta=THETA, seed=7
        )
    return _TABLES[key]


def make_queries(table, n_queries: int = BATCH_QUERIES, seed: int = 0):
    """An analytical query mix over ``table``'s domain.

    A pool of bound-dimension masks (1–4 of the 8 dims, the widths the
    hash index is designed for) applied to real rows, plus a ghost share
    probing values outside every dimension's domain, plus the apex.
    """
    rng = random.Random(seed)
    n_dims = table.n_dims
    rows = [tuple(int(v) for v in row) for row in table.dim_rows()[:2000]]
    out_of_domain = tuple(int(table.dim_codes[:, d].max()) + 1 for d in range(n_dims))
    masks = []
    while len(masks) < 16:
        dims = rng.sample(range(n_dims), rng.randint(1, 4))
        mask = sum(1 << d for d in dims)
        if mask not in masks:
            masks.append(mask)
    queries = [tuple([None] * n_dims)]
    while len(queries) < n_queries:
        mask = masks[len(queries) % len(masks)]
        row = rows[rng.randrange(len(rows))]
        cell = [row[d] if mask >> d & 1 else None for d in range(n_dims)]
        if rng.random() < GHOST_SHARE:
            bound = [d for d in range(n_dims) if mask >> d & 1]
            cell[rng.choice(bound)] = out_of_domain[rng.choice(bound)]
        queries.append(tuple(cell))
    return queries


def verify_strategies(cube, queries, scan_sample: int = 150) -> int:
    """All three lookup strategies answer identically, cell for cell.

    The hash probe and the batched columnar path are compared on every
    query; the linear scan — the ground-truth definition, but O(ranges)
    per cell — on a sample.  Timing a wrong answer fast would be
    meaningless, so this runs before any measurement.
    """
    hash_index = RangeCubeIndex(cube, strategy="hash")
    columnar = RangeCubeIndex(cube, strategy="columnar")
    batched = columnar.find_batch(queries)
    for cell, via_batch in zip(queries, batched):
        if hash_index.find(cell) is not via_batch:
            raise AssertionError(f"hash and columnar disagree on {cell}")
    step = max(1, len(queries) // scan_sample)
    for cell, via_batch in list(zip(queries, batched))[::step]:
        found = next((r for r in cube.ranges if r.contains(cell)), None)
        if found is not via_batch:
            raise AssertionError(f"linear scan and columnar disagree on {cell}")
    return sum(1 for r in batched if r is not None)


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_point(table, queries) -> dict:
    """Per-cell hash vs batched columnar over the same warm query batch."""
    build_start = time.perf_counter()
    cube = range_cubing(table)
    build_s = time.perf_counter() - build_start
    hits = verify_strategies(cube, queries)
    hash_index = RangeCubeIndex(cube, strategy="hash")
    columnar = RangeCubeIndex(cube, strategy="columnar")
    columnar.find_batch(queries)  # warm: postings built, cuboid maps memoized
    hash_s = _best_of(lambda: [hash_index.find(c) for c in queries])
    batch_s = _best_of(lambda: columnar.find_batch(queries))
    per_query_us = batch_s / len(queries) * 1e6
    return {
        "n_rows": table.n_rows,
        "n_ranges": cube.n_ranges,
        "queries": len(queries),
        "hits": hits,
        "cube_build_seconds": round(build_s, 4),
        "hash_seconds": round(hash_s, 4),
        "batched_seconds": round(batch_s, 4),
        "batched_us_per_query": round(per_query_us, 3),
        "speedup": round(hash_s / batch_s if batch_s else float("inf"), 2),
        "store_kib": round(columnar._store.nbytes() / 1024, 1),
    }


def print_point(p: dict) -> None:
    print(
        f"{p['n_rows']:>9,} rows ({p['n_ranges']:,} ranges): "
        f"hash {p['hash_seconds'] * 1e3:8.2f}ms   "
        f"batched {p['batched_seconds'] * 1e3:7.2f}ms "
        f"({p['batched_us_per_query']:.2f}us/q)   speedup {p['speedup']:5.1f}x"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest scale (the CI smoke job)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless batched columnar beats per-cell hash by this "
        "factor at the largest point",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the series as JSON (default: no file in --quick mode, "
        "BENCH_point_queries.json otherwise)",
    )
    args = parser.parse_args(argv)
    points = POINTS["quick"] if args.quick else QUERY_PARAMS
    out_path = args.out if args.out else (
        None if args.quick else "BENCH_point_queries.json"
    )

    print(
        f"point-query bench: zipf theta {THETA}, {N_DIMS} dims, "
        f"{len(FDS)} functional dependencies, "
        f"{BATCH_QUERIES:,} queries per batch ({GHOST_SHARE:.0%} ghosts)"
    )
    series = []
    for n_rows, card in points:
        table = corr_table(n_rows, card)
        point = {"cardinality": card, **measure_point(table, make_queries(table))}
        series.append(point)
        print_point(point)

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "point_queries",
                    "n_dims": N_DIMS,
                    "theta": THETA,
                    "dependencies": [
                        [list(f.source_dims), list(f.target_dims)] for f in FDS
                    ],
                    "queries_per_batch": BATCH_QUERIES,
                    "ghost_share": GHOST_SHARE,
                    "min_speedup_floor": args.min_speedup,
                    "points": series,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    final = series[-1]
    print(
        f"floor: {final['speedup']:.1f}x at {final['n_rows']:,} rows "
        f"(need >= {args.min_speedup:g}x)"
    )
    if final["speedup"] < args.min_speedup:
        print("FAIL: batched columnar lookups below the speedup floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
