"""Point-query benchmark: every cube representation as a query structure.

The paper's format-preserving claim is that a range cube slots in where a
plain cube would: this measures answering a fixed batch of point queries
(every 7th cell of the full cube plus some empty cells) against

* the expanded cube (a plain dict — the baseline),
* the range cube through its general-endpoint hash index,
* the Dwarf DAG (O(n_dims) hops per query),
* the QC-tree over quotient classes.

Construction costs are benchmarked separately so the storage/latency
trade-off is visible.
"""

from repro.baselines.dwarf import Dwarf
from repro.baselines.qc_tree import QCTree
from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube

from benchmarks.conftest import PRESET, cached_zipf, run_once

SCALES = {
    "tiny": {"n_rows": 400, "n_dims": 4, "cardinality": 20},
    "small": {"n_rows": 2000, "n_dims": 5, "cardinality": 50},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

_CACHE: dict = {}


def fixture():
    if not _CACHE:
        table = cached_zipf(
            PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2
        )
        oracle = compute_full_cube(table)
        queries = list(oracle.iter_cells())[::7]
        ghost = tuple(
            int(table.dim_codes[:, d].max()) + 1 for d in range(table.n_dims)
        )
        queries.append(ghost)
        _CACHE.update(table=table, oracle=oracle, queries=queries)
    return _CACHE


def _drain(structure, queries):
    hits = 0
    for cell in queries:
        if structure.lookup(cell) is not None:
            hits += 1
    return hits


def test_queries_expanded_dict(benchmark):
    f = fixture()
    hits = run_once(benchmark, _drain, f["oracle"], f["queries"])
    benchmark.extra_info.update(structure="expanded-dict", queries=len(f["queries"]), hits=hits)


def test_queries_range_cube_index(benchmark):
    f = fixture()
    cube = range_cubing(f["table"])
    cube.lookup(f["queries"][0])  # force index construction outside timing
    hits = run_once(benchmark, _drain, cube, f["queries"])
    benchmark.extra_info.update(
        structure="range-index", queries=len(f["queries"]), hits=hits,
        index_entries=len(RangeCubeIndex(cube)),
    )


def test_queries_dwarf(benchmark):
    f = fixture()
    dwarf = Dwarf.build(f["table"])
    hits = run_once(benchmark, _drain, dwarf, f["queries"])
    benchmark.extra_info.update(
        structure="dwarf", queries=len(f["queries"]), hits=hits,
        stored_cells=dwarf.n_stored_cells(),
    )


def test_queries_qc_tree(benchmark):
    f = fixture()
    tree = QCTree.build(f["table"])
    hits = run_once(benchmark, _drain, tree, f["queries"])
    benchmark.extra_info.update(
        structure="qc-tree", queries=len(f["queries"]), hits=hits,
        classes=tree.n_classes,
    )


def test_build_dwarf(benchmark):
    f = fixture()
    dwarf = run_once(benchmark, Dwarf.build, f["table"])
    benchmark.extra_info.update(structure="dwarf", nodes=dwarf.n_nodes())


def test_build_qc_tree(benchmark):
    f = fixture()
    tree = run_once(benchmark, QCTree.build, f["table"])
    benchmark.extra_info.update(structure="qc-tree", nodes=tree.n_nodes())
