"""CI smoke gate for the telemetry subsystem: scrape a live ``/metrics``.

Starts a real server over a small synthetic cube, drives one request of
every supported op (plus an append) through the HTTP client, then
fetches ``/metrics`` raw and re-parses it with the strict Prometheus
text parser.  The gate fails when

* the exposition text does not parse (format regression),
* any family registered in the process-wide registry is missing from
  the scrape (the renderer must emit HELP/TYPE even for empty metrics,
  so "registered but absent" always means a rendering bug), or
* any of the serving-path families the dashboards depend on is absent.

``GET /trace`` is fetched alongside and sanity-checked for the request
spans the drive must have produced::

    PYTHONPATH=src python benchmarks/smoke_metrics.py
"""

from urllib.request import urlopen

from repro.data.synthetic import zipf_table
from repro.obs import get_registry, parse_prometheus_text
from repro.serve import CubeServer, HTTPCubeClient, QueryEngine, ShardRouter

#: Families the serving dashboards assume; a rename must update both.
REQUIRED_FAMILIES = (
    "repro_requests_total",
    "repro_request_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_entries",
    "repro_appends_total",
    "repro_append_rows_total",
    "repro_append_seconds",
    "repro_cube_refreshes_total",
    "repro_cube_version",
    "repro_http_requests_total",
    "repro_query_batches_total",
    "repro_query_batch_items_total",
    # the sharded tier (drive_sharded must have populated these)
    "repro_shard_requests_total",
    "repro_shard_scatter_seconds",
    "repro_shard_fanout",
    "repro_shard_lag_seconds",
    "repro_shard_live",
    "repro_shard_version",
    # the snapshot tier (drive_snapshot must have populated these)
    "repro_snapshot_load_seconds",
    "repro_snapshot_hot_masks",
    "repro_snapshot_resident_bytes",
    "repro_snapshot_promotions_total",
    "repro_snapshot_evictions_total",
    "repro_snapshot_cold_queries_total",
    "repro_snapshot_hot_queries_total",
    # the self-tuning planner (drive_tune must have populated these)
    "repro_tune_plans_total",
    "repro_tune_plan_seconds",
    "repro_tune_sample_rows_total",
    "repro_tune_replans_total",
    # the approximate tier (drive_approx must have populated these)
    "repro_approx_requests_total",
    "repro_approx_bound_width",
    "repro_approx_fallbacks_total",
    "repro_approx_sketch_builds_total",
)


def drive(client: HTTPCubeClient, n_dims: int) -> None:
    """One request per op (each twice: a miss, then a cache hit) + append."""
    cell = [0] + [None] * (n_dims - 1)
    for _ in range(2):
        client.query({"op": "point", "cell": cell})
        client.query({"op": "rollup", "cell": cell, "dim": 0})
        client.query({"op": "drilldown", "cell": cell, "dim": 1})
        client.query({"op": "slice", "bindings": {"0": 0}})
        client.query_batch([{"op": "point", "cell": cell}, {"op": "bogus"}])
    client.append([[0] * n_dims], None)


def drive_sharded(table) -> None:
    """One scatter and one append through a 2-shard router.

    Populates every ``repro_shard_*`` family in the process-wide
    registry so the scrape below can assert them alongside the
    single-engine families.
    """
    from repro.serve import QueryRequest

    with ShardRouter.from_table(table, n_shards=2) as router:
        router.execute(QueryRequest(op="point", cell=[None] * table.n_dims))
        router.append([[0] * table.n_dims], None)


def drive_snapshot(table) -> None:
    """Freeze the table's cube, mmap it back, run one batched read.

    Populates every ``repro_snapshot_*`` family (the load histogram, the
    tier gauges and the promotion/eviction/hot/cold counters) so the
    scrape below can assert them alongside the serving families.
    """
    import shutil
    import tempfile

    from repro.core.range_cubing import range_cubing
    from repro.serve.protocol import QueryRequest
    from repro.store import SnapshotEngine, write_snapshot

    root = tempfile.mkdtemp(prefix="repro-smoke-snapshot-")
    try:
        path = f"{root}/cube.snapshot"
        write_snapshot(range_cubing(table), path, table.schema)
        requests = [
            QueryRequest(op="point", cell=[v, None, None, None]) for v in range(8)
        ]
        with SnapshotEngine(path, cache_capacity=0, promote_after=1) as engine:
            engine.execute_batch(requests)  # promotes the mask: hot counters
        with SnapshotEngine(
            path, cache_capacity=0, budget_bytes=1, promote_after=1 << 30
        ) as engine:
            engine.execute_batch(requests)  # pinned cold: cold counters
    finally:
        shutil.rmtree(root, ignore_errors=True)


def drive_approx(table) -> None:
    """One approximate dice, plus one that falls back to the exact path.

    Populates every ``repro_approx_*`` family: the request counter and
    bound-width histogram (the sketch-served dice), the sketch-build
    counter (lazy build on first approx request) and the fallback
    counter (a MIN aggregator has no sampling estimator).
    """
    from repro.serve.protocol import QueryRequest
    from repro.table.aggregates import MinAggregator

    request = QueryRequest(
        op="dice", predicates={"1": [0, 1, 2]}, approx=True
    )
    QueryEngine.from_table(table).execute(request)
    QueryEngine.from_table(table, aggregator=MinAggregator(0)).execute(request)


def drive_tune(table) -> None:
    """One plan and one drift-triggered replan through the planner.

    Populates every ``repro_tune_*`` family (plan counter + histogram,
    sampled-row counter, replan counter) so the scrape below can assert
    them alongside the serving families.
    """
    from repro.tune import plan_table, record_replan

    plan_table(table)
    record_replan(trigger="smoke")


def check_federated_fleet() -> list[str]:
    """Scrape a live 2-shard fleet's router ``/metrics``; return failures.

    The router endpoint must expose the *federated* view — every worker's
    series folded in under a ``shard`` label — and still parse under the
    strict parser.  The shards are columnar-sized so the worker-side
    query kernels (``repro_query_*``) actually populate.
    """
    from repro.data.synthetic import uniform_table

    failures: list[str] = []
    table = uniform_table(6000, 4, 10, seed=3)
    router = ShardRouter.from_table(table, n_shards=2, shard_dim=0)
    try:
        with CubeServer(router, port=0) as server:
            with HTTPCubeClient(server.url) as client:
                client.query({"op": "dice", "predicates": {"1": [0, 1, 2]}})
                client.query_batch(
                    [{"op": "point", "cell": [0, 1, None, None]},
                     {"op": "point", "cell": [1, 2, None, None]}]
                )
            with urlopen(server.url + "/metrics", timeout=10) as response:
                federated = parse_prometheus_text(response.read().decode())
            with urlopen(server.url + "/metrics?scope=local", timeout=10) as response:
                local = parse_prometheus_text(response.read().decode())
    finally:
        router.close()

    def shards(families, name):
        return {
            labels.get("shard")
            for _, labels, _ in families.get(name, {"samples": []})["samples"]
        }

    if not shards(federated, "repro_shard_requests_total") & {"0", "1"}:
        failures.append("federated repro_shard_requests_total has no worker shards")
    worker_query = [
        name
        for name in ("repro_query_batch_size", "repro_query_postings_hits_total",
                     "repro_query_cuboid_map_hits_total")
        if shards(federated, name) & {"0", "1"}
    ]
    if not worker_query:
        failures.append("no worker repro_query_* series carry shard labels")
    if "router" not in shards(federated, "repro_http_requests_total"):
        failures.append('router-local series missing shard="router" in federation')
    if shards(local, "repro_http_requests_total") != {None}:
        failures.append("?scope=local leaked federation shard labels")
    return failures


def main() -> int:
    table = zipf_table(500, 4, 10, 1.2, seed=3)
    drive_sharded(table)
    drive_snapshot(table)
    drive_tune(table)
    drive_approx(table)
    engine = QueryEngine.from_table(table)
    with CubeServer(engine, port=0) as server:
        client = HTTPCubeClient(server.url)
        try:
            drive(client, table.n_dims)
        finally:
            client.close()
        with urlopen(server.url + "/metrics", timeout=10) as response:
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
        with urlopen(server.url + "/trace", timeout=10) as response:
            import json

            spans = json.loads(response.read())["spans"]

    families = parse_prometheus_text(text)  # raises on malformed exposition
    print(f"scraped {len(families)} families ({len(text.splitlines())} lines, "
          f"Content-Type: {content_type})")

    registered = set(get_registry().names())
    missing = sorted(registered - set(families))
    if missing:
        print(f"FAIL: registered metrics absent from /metrics: {missing}")
        return 1
    required_missing = [f for f in REQUIRED_FAMILIES if f not in families]
    if required_missing:
        print(f"FAIL: required serving families missing: {required_missing}")
        return 1

    request_samples = families["repro_requests_total"]["samples"]
    ops = {labels.get("op") for _, labels, _ in request_samples}
    expected_ops = {"point", "rollup", "drilldown", "slice"}
    if not expected_ops <= ops:
        print(f"FAIL: ops missing from repro_requests_total: {expected_ops - ops}")
        return 1

    request_spans = [s for s in spans if s["name"] == "serve.request"]
    if not request_spans:
        print("FAIL: /trace has no serve.request spans after the drive")
        return 1
    if not any(s["attributes"].get("cache_hit") for s in request_spans):
        print("FAIL: no serve.request span recorded a cache hit")
        return 1

    fleet_failures = check_federated_fleet()
    if fleet_failures:
        for failure in fleet_failures:
            print(f"FAIL: {failure}")
        return 1

    print(f"all {len(registered)} registered families exposed; "
          f"{len(request_spans)} request spans traced; "
          f"federated fleet scrape OK")
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
