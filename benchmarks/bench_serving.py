"""Serving-path benchmarks: cached vs uncached queries, HTTP round trips.

The serving layer's pitch is that a small LRU cache in front of the
range-cube index absorbs the hot head of a Zipf-skewed query stream.
This module measures that directly: the same skewed batch of point
queries drained through

* an engine with the cache disabled (every query reaches the index),
* an engine with a warm cache (the head is a dict hit),
* the JSON/HTTP front end (adds transport cost on top).

Run under pytest-benchmark like the other bench modules, or standalone
as a CI smoke check that also verifies the cached path is at least
``MIN_SPEEDUP``x the uncached one::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

import time

from repro.data.synthetic import zipf_probabilities
from repro.serve import CubeServer, HTTPCubeClient, QueryEngine

try:
    from benchmarks.conftest import PRESET, cached_zipf, run_once
except ModuleNotFoundError:  # executed as a script: put the repo root on the path
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import PRESET, cached_zipf, run_once

#: The acceptance floor for the cached:uncached throughput ratio.
MIN_SPEEDUP = 5.0

SCALES = {
    "quick": {"n_rows": 1000, "n_dims": 5, "cardinality": 20, "n_queries": 2000},
    "tiny": {"n_rows": 1500, "n_dims": 5, "cardinality": 25, "n_queries": 5000},
    "small": {"n_rows": 5000, "n_dims": 5, "cardinality": 50, "n_queries": 20000},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

_CACHE: dict = {}


def make_queries(table, n_queries: int, pool_size: int = 128, theta: float = 1.1):
    """A Zipf-skewed batch of point-query requests over real base rows.

    Cells come from actual tuples (projected to 1..3 bound dims) so the
    uncached path does real index work instead of missing everywhere.
    """
    import numpy as np

    rng = np.random.default_rng(11)
    rows = table.dim_codes
    pool = []
    for i in range(pool_size):
        row = rows[int(rng.integers(0, rows.shape[0]))]
        n_bound = int(rng.integers(1, table.n_dims + 1))
        bound = rng.choice(table.n_dims, size=n_bound, replace=False)
        cell = [None] * table.n_dims
        for d in bound:
            cell[int(d)] = int(row[int(d)])
        pool.append({"op": "point", "cell": cell})
    popularity = zipf_probabilities(pool_size, theta)
    picks = rng.choice(pool_size, size=n_queries, p=popularity)
    return [pool[int(i)] for i in picks]


def fixture():
    if not _CACHE:
        table = cached_zipf(
            PARAMS["n_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2
        )
        _CACHE.update(
            table=table, queries=make_queries(table, PARAMS["n_queries"])
        )
    return _CACHE


def drain(engine: QueryEngine, queries) -> int:
    hits = 0
    for request in queries:
        if engine.execute(request)["value"] is not None:
            hits += 1
    return hits


def drain_http(client: HTTPCubeClient, queries) -> int:
    hits = 0
    for request in queries:
        if client.query(request)["value"] is not None:
            hits += 1
    return hits


def test_point_queries_uncached(benchmark):
    f = fixture()
    engine = QueryEngine.from_table(f["table"], cache_capacity=0)
    engine.point([None] * f["table"].n_dims)  # build the index outside timing
    hits = run_once(benchmark, drain, engine, f["queries"])
    benchmark.extra_info.update(path="uncached", queries=len(f["queries"]), hits=hits)


def test_point_queries_cached(benchmark):
    f = fixture()
    engine = QueryEngine.from_table(f["table"], cache_capacity=4096)
    drain(engine, f["queries"])  # warm the cache
    hits = run_once(benchmark, drain, engine, f["queries"])
    stats = engine.cache.stats()
    benchmark.extra_info.update(
        path="cached", queries=len(f["queries"]), hits=hits,
        hit_rate=round(stats.hit_rate, 4),
    )


def test_point_queries_http(benchmark):
    f = fixture()
    engine = QueryEngine.from_table(f["table"], cache_capacity=4096)
    queries = f["queries"][: max(len(f["queries"]) // 10, 100)]
    with CubeServer(engine, port=0) as server:
        client = HTTPCubeClient(server.url)
        drain_http(client, queries)  # warm cache + connection
        hits = run_once(benchmark, drain_http, client, queries)
        client.close()
    benchmark.extra_info.update(path="http-cached", queries=len(queries), hits=hits)


# ----------------------------------------------------------------------
# standalone smoke mode (CI): print throughputs, enforce the speedup floor
# ----------------------------------------------------------------------


def _timed(fn, *args) -> tuple[int, float]:
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest scale (the CI smoke job)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless cached/uncached throughput exceeds this ratio",
    )
    args = parser.parse_args(argv)
    params = SCALES["quick"] if args.quick else PARAMS

    table = cached_zipf(params["n_rows"], params["n_dims"], params["cardinality"], 1.2)
    queries = make_queries(table, params["n_queries"])
    print(
        f"serving bench: {table.n_rows} rows x {table.n_dims} dims, "
        f"{len(queries)} point queries (zipf-skewed over 128 distinct)"
    )

    from repro.obs import is_enabled, set_enabled

    # The floor compares raw engine paths, so telemetry is switched off
    # around the timed drains (it is measured separately below — the
    # per-query cost of metrics + spans is its own number, not a tax
    # silently folded into the cache speedup).
    was_enabled = is_enabled()
    set_enabled(False)
    try:
        uncached = QueryEngine.from_table(table, cache_capacity=0)
        uncached.point([None] * table.n_dims)
        _, cold_once = _timed(drain, uncached, queries)  # warm interpreter caches
        hits, cold = _timed(drain, uncached, queries)

        cached = QueryEngine.from_table(table, cache_capacity=4096)
        drain(cached, queries)
        _, warm = _timed(drain, cached, queries)
        hit_rate = cached.cache.stats().hit_rate

        set_enabled(True)
        drain(cached, queries)  # warm the instrumented path once
        _, warm_obs = _timed(drain, cached, queries)
    finally:
        set_enabled(was_enabled)

    n = len(queries)
    speedup = cold / warm if warm else float("inf")
    print(f"uncached: {n / cold:>12,.0f} queries/s  ({cold * 1e6 / n:.1f}us/query)")
    print(
        f"cached:   {n / warm:>12,.0f} queries/s  ({warm * 1e6 / n:.1f}us/query, "
        f"{100 * hit_rate:.1f}% hit rate)"
    )
    print(
        f"cached+obs: {n / warm_obs:>10,.0f} queries/s  "
        f"({warm_obs * 1e6 / n:.1f}us/query, telemetry enabled; "
        f"+{max(warm_obs - warm, 0) * 1e6 / n:.1f}us/query)"
    )
    print(f"speedup: {speedup:.1f}x (floor {args.min_speedup:g}x); {hits} non-empty")
    if speedup < args.min_speedup:
        print("FAIL: cached path below the speedup floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
