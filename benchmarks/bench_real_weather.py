"""Section 6.2 benchmark: the (simulated) weather dataset.

Paper headline: with both algorithms in their preferred dimension orders,
range cubing finishes in less than 1/30 of H-Cubing's time and the range
cube is under 1/9 (≈11.1%) of the full cube.  The time ratio here is the
ratio between the two benchmarks below; the tuple/node ratios ride along
as ``extra_info`` on the range benchmark.
"""

from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing_detailed
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, cached_weather, run_once

N_ROWS = {"tiny": 2000, "small": 20_000}["small" if PRESET == "small" else "tiny"]


def test_weather_range_cubing(benchmark):
    table = cached_weather(N_ROWS)
    order = preferred_order(table, "desc")
    cube, stats = run_once(benchmark, range_cubing_detailed, table, dim_order=order)
    htree_nodes = HTree.build(table.reordered(order)).n_nodes()
    benchmark.extra_info.update(
        experiment="weather",
        n_rows=N_ROWS,
        ranges=cube.n_ranges,
        full_cells=cube.n_cells,
        tuple_ratio=round(cube.n_ranges / cube.n_cells, 4),
        node_ratio=round(stats["trie_nodes"] / htree_nodes, 4),
        paper_tuple_ratio_bound=round(1 / 9, 4),
    )


def test_weather_h_cubing(benchmark):
    table = cached_weather(N_ROWS)
    order = preferred_order(table, "asc")
    cube = run_once(benchmark, h_cubing, table, dim_order=order)
    benchmark.extra_info.update(experiment="weather", n_rows=N_ROWS, cells=len(cube))
