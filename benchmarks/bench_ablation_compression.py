"""Ablation benchmark: the cost of each lossless compression method.

The paper positions the range cube as "close to optimality" in space at a
fraction of the computation: the quotient cube's optimal classes need a
closure search, the BST-condensed cube extends BUC, the range cube falls
out of one trie traversal.  Times compare the three on correlated data;
``extra_info`` carries the size census.
"""

import pytest

from repro.baselines.condensed import condensed_cube
from repro.baselines.quotient import quotient_cube
from repro.core.range_cubing import range_cubing
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.harness.runner import preferred_order

from benchmarks.conftest import PRESET, run_once

SCALES = {
    "tiny": {"n_rows": 500, "n_dims": 5, "cardinality": 40},
    "small": {"n_rows": 2000, "n_dims": 6, "cardinality": 80},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

_CACHE = {}


def table():
    if "t" not in _CACHE:
        raw = correlated_table(
            PARAMS["n_rows"],
            PARAMS["n_dims"],
            PARAMS["cardinality"],
            [FunctionalDependency((0,), (1,))],
            theta=1.5,
            seed=7,
        )
        _CACHE["t"] = raw.reordered(preferred_order(raw, "desc"))
    return _CACHE["t"]


def test_compression_range_cube(benchmark):
    cube = run_once(benchmark, range_cubing, table())
    benchmark.extra_info.update(
        ablation="compression",
        method="range",
        tuples=cube.n_ranges,
        full_cells=cube.n_cells,
        ratio=round(cube.n_ranges / cube.n_cells, 4),
    )


def test_compression_condensed_cube(benchmark):
    cube = run_once(benchmark, condensed_cube, table())
    benchmark.extra_info.update(
        ablation="compression",
        method="condensed",
        tuples=cube.n_tuples,
        ratio=round(cube.n_tuples / cube.n_cells, 4),
    )


def test_compression_quotient_cube(benchmark):
    cube = run_once(benchmark, quotient_cube, table())
    benchmark.extra_info.update(
        ablation="compression", method="quotient", tuples=cube.n_classes
    )
