"""Self-tuning dimension order gate: ``dim_order="auto"`` vs the statics.

Range cubing's build *time* is sensitive to the trie dimension order even
though its output is not: on correlated tables (the paper's Section 1
motivation) the wrong order splits functionally-determined dimensions
across millions of sort groups before the determinants that collapse them
are seen.  ``repro.tune`` plans the order from a bounded sample; this
module is the acceptance gate for that planner on two correlated
workloads with *opposite* static winners (see
``benchmarks.conftest.DIMORDER_WORKLOADS``):

* ``auto`` must be within ``TOLERANCE`` of the best static order, and
* the worst static order must cost at least ``MIN_WORST_RATIO``x auto, and
* planning itself must cost at most ``MAX_PLAN_FRACTION`` of one build.

Answers are verified bit-identical (full cell expansion) between the
tuned and untuned builds before anything is timed.  Build times are
best-of-3 with the plan precomputed — the plan is reused across serving
rebuilds and parallel partitions, so its one-off cost is reported (and
capped) separately rather than folded into every build.

Run under pytest-benchmark like the other bench modules, or standalone
as the CI gate::

    PYTHONPATH=src python benchmarks/bench_dimorder.py --quick

The standalone mode writes its full series to ``BENCH_dimorder.json``
(committed at the repo root; see ``docs/performance.md``).
"""

import json
import time

from repro.core.range_cubing import range_cubing
from repro.harness.runner import preferred_order
from repro.tune import plan_table

try:
    from benchmarks.conftest import DIMORDER_WORKLOADS, PRESET, cached_correlated, run_once
except ModuleNotFoundError:  # executed as a script: put the repo root on the path
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import DIMORDER_WORKLOADS, PRESET, cached_correlated, run_once

#: auto's build may cost at most this factor of the best static build.
TOLERANCE = 1.15

#: The worst static build must cost at least this factor of auto's.
MIN_WORST_RATIO = 1.5

#: Planning may cost at most this fraction of one auto build.
MAX_PLAN_FRACTION = 0.5

#: The static orders auto competes against (None = as-is column order).
STATIC_POLICIES = ("desc", "asc", None)

ROWS = {"quick": 6_000, "tiny": 6_000, "small": 20_000}
N_ROWS = ROWS["small" if PRESET == "small" else "tiny"]


def _build(table, dim_order):
    return range_cubing(table, dim_order=dim_order)


def test_dimorder_auto(benchmark):
    table = cached_correlated("determined_wide", N_ROWS)
    plan = plan_table(table)
    cube = run_once(benchmark, _build, table, plan)
    benchmark.extra_info.update(
        workload="determined_wide", order="auto", ranges=cube.n_ranges
    )


def test_dimorder_worst_static(benchmark):
    table = cached_correlated("determined_wide", N_ROWS)
    worst = preferred_order(table, "asc")  # splits the determined dims first
    cube = run_once(benchmark, _build, table, worst)
    benchmark.extra_info.update(
        workload="determined_wide", order="asc", ranges=cube.n_ranges
    )


# ----------------------------------------------------------------------
# standalone gate mode (CI): verify identity, print series, enforce floors
# ----------------------------------------------------------------------


def _states_close(a, b, rel: float = 1e-9) -> bool:
    """Exact on ints (counts), last-ulp tolerant on float sums.

    A different trie order merges the same addends in a different order,
    so float sums drift by accumulated rounding; everything discrete must
    still match exactly.
    """
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_states_close(x, y, rel) for x, y in zip(a, b))
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= rel * max(1.0, abs(a), abs(b))
    return a == b


def verify_identity(table) -> None:
    """Tuned and untuned builds must agree cell-for-cell before timing."""
    plain = dict(range_cubing(table, dim_order=None).expand())
    tuned = dict(range_cubing(table, dim_order="auto").expand())
    if plain.keys() != tuned.keys() or not all(
        _states_close(plain[cell], tuned[cell]) for cell in plain
    ):
        raise AssertionError(
            "dim_order='auto' changed query answers — refusing to time a "
            "wrong result"
        )


def _best_of(n, fn, *args) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def measure_workload(name: str, n_rows: int) -> dict:
    table = cached_correlated(name, n_rows)
    verify_identity(table)

    plan_seconds = _best_of(3, plan_table, table)
    plan = plan_table(table)

    statics = {}
    for policy in STATIC_POLICIES:
        order = preferred_order(table, policy)
        statics[policy or "as-is"] = round(_best_of(3, _build, table, order), 4)
    auto_seconds = round(_best_of(3, _build, table, plan), 4)

    best = min(statics.values())
    worst = max(statics.values())
    return {
        "workload": name,
        "n_rows": n_rows,
        "n_dims": table.n_dims,
        "plan_order": list(plan.dim_order),
        "plan_source": plan.source,
        "plan_seconds": round(plan_seconds, 4),
        "auto_seconds": auto_seconds,
        "static_seconds": statics,
        "auto_vs_best": round(auto_seconds / best, 3),
        "worst_vs_auto": round(worst / auto_seconds, 3),
        "plan_fraction": round(plan_seconds / auto_seconds, 3),
    }


def print_workload(p: dict) -> None:
    statics = "  ".join(f"{k} {v:.3f}s" for k, v in p["static_seconds"].items())
    print(
        f"{p['workload']:>16} {p['n_rows']:>7,} rows: auto {p['auto_seconds']:.3f}s "
        f"(order {tuple(p['plan_order'])} via {p['plan_source']!r}, "
        f"plan {p['plan_seconds'] * 1000:.0f}ms)   {statics}"
    )
    print(
        f"{'':>16} auto/best {p['auto_vs_best']:.2f}x  "
        f"worst/auto {p['worst_vs_auto']:.2f}x  "
        f"plan/build {p['plan_fraction']:.2f}"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest scale (the CI smoke job)"
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help="fail if auto exceeds the best static build by this factor",
    )
    parser.add_argument(
        "--min-worst-ratio", type=float, default=MIN_WORST_RATIO,
        help="fail unless the worst static costs this factor of auto",
    )
    parser.add_argument(
        "--max-plan-fraction", type=float, default=MAX_PLAN_FRACTION,
        help="fail if planning costs more than this fraction of one build",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the series as JSON (default: no file in --quick mode, "
        "BENCH_dimorder.json otherwise)",
    )
    args = parser.parse_args(argv)
    n_rows = ROWS["quick"] if args.quick else N_ROWS
    out_path = args.out if args.out else (None if args.quick else "BENCH_dimorder.json")

    print(
        f"dim-order bench: {len(DIMORDER_WORKLOADS)} correlated workloads, "
        f"{n_rows:,} rows, statics {[p or 'as-is' for p in STATIC_POLICIES]}"
    )
    series = [measure_workload(name, n_rows) for name in DIMORDER_WORKLOADS]
    for point in series:
        print_workload(point)

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "dimorder",
                    "n_rows": n_rows,
                    "tolerance": args.tolerance,
                    "min_worst_ratio": args.min_worst_ratio,
                    "max_plan_fraction": args.max_plan_fraction,
                    "workloads": series,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    failed = False
    for p in series:
        if p["auto_vs_best"] > args.tolerance:
            print(
                f"FAIL: {p['workload']}: auto is {p['auto_vs_best']:.2f}x the "
                f"best static build (cap {args.tolerance:g}x)"
            )
            failed = True
        if p["worst_vs_auto"] < args.min_worst_ratio:
            print(
                f"FAIL: {p['workload']}: worst static is only "
                f"{p['worst_vs_auto']:.2f}x auto (need >= {args.min_worst_ratio:g}x)"
            )
            failed = True
        if p["plan_fraction"] > args.max_plan_fraction:
            print(
                f"FAIL: {p['workload']}: planning costs {p['plan_fraction']:.2f} "
                f"of a build (cap {args.max_plan_fraction:g})"
            )
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
