"""Trie construction benchmark: tuple-at-a-time Algorithm 1 vs bulk sort.

``RangeTrie.bulk_build`` replaces N single-tuple insertions with one
``np.lexsort`` over the encoded dimension matrix, a recursive partition
of contiguous row ranges driven by precomputed change counts, and ONE
``ufunc.reduceat`` batch-aggregation pass over the duplicate-row groups.
This module measures the payoff at Figure 11-style scalability sizes on
the paper's motivating workload (Section 1: "real world datasets tend to
be correlated"): Zipf-skewed dimensions with injected functional
dependencies.  Correlation is where the sort-based path shines — shared
and implied values collapse into few distinct rows, whose aggregation
happens inside numpy instead of one Python merge per tuple.  An i.i.d.
zipf point (every row distinct — the builder's worst case) is reported
alongside for transparency; the acceptance floor applies to the
correlated series.

Run under pytest-benchmark like the other bench modules, or standalone
as a CI smoke check that re-verifies bulk == incremental tries and then
enforces a ``MIN_SPEEDUP``x floor at the largest point::

    PYTHONPATH=src python benchmarks/bench_bulk_build.py --quick

The standalone mode writes its full series to ``BENCH_bulk_build.json``
(committed at the repo root; see ``docs/performance.md``).
"""

import json
import time

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_trie import RangeTrie
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.table.aggregates import SumCountAggregator

try:
    from benchmarks.conftest import PRESET, cached_zipf, run_once
except ModuleNotFoundError:  # executed as a script: put the repo root on the path
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import PRESET, cached_zipf, run_once

#: Acceptance floor for the tuple:bulk build-time ratio at the largest point.
MIN_SPEEDUP = 3.0

#: Figure 11's shape at reduced scale: zipf theta 1.5, 8 dims, plus the
#: paper's Section 1 correlation: two functional dependencies (a store
#: determines its city-like attributes, a station its coordinates).
N_DIMS = 8
THETA = 1.5
FDS = (
    FunctionalDependency((0,), (1, 2)),
    FunctionalDependency((4,), (5, 6, 7)),
)

#: (n_rows, cardinality) series per preset; the CI smoke job runs "quick"
#: and enforces the floor at its 100k-row point.
POINTS = {
    "quick": [(10_000, 50), (100_000, 100)],
    "tiny": [(10_000, 50), (30_000, 100), (100_000, 100)],
    "small": [(30_000, 100), (100_000, 100), (300_000, 200)],
}
PARAMS = POINTS["small" if PRESET == "small" else "tiny"]

_TABLES: dict = {}


def corr_table(n_rows: int, cardinality: int):
    key = (n_rows, cardinality)
    if key not in _TABLES:
        _TABLES[key] = correlated_table(
            n_rows, N_DIMS, cardinality, FDS, theta=THETA, seed=7
        )
    return _TABLES[key]


def build_tuple(table):
    return RangeTrie.build(table, SumCountAggregator(0))


def build_bulk(table):
    return RangeTrie.bulk_build(table, SumCountAggregator(0))


def tries_equal(a: RangeTrie, b: RangeTrie, tol: float = 1e-6) -> bool:
    """Structural equality with float tolerance on the summed states."""

    def states(x, y):
        return len(x) == len(y) and all(
            abs(p - q) <= tol * max(1.0, abs(p), abs(q)) for p, q in zip(x, y)
        )

    def nodes(x, y):
        return (
            x.key == y.key
            and states(x.agg, y.agg)
            and x.children.keys() == y.children.keys()
            and all(nodes(c, y.children[v]) for v, c in x.children.items())
        )

    return a.n_dims == b.n_dims and nodes(a.root, b.root)


def test_build_tuple(benchmark):
    n_rows, card = PARAMS[0]
    table = corr_table(n_rows, card)
    trie = run_once(benchmark, build_tuple, table)
    benchmark.extra_info.update(
        strategy="tuple", n_rows=n_rows, trie_nodes=trie.n_nodes()
    )


def test_build_bulk(benchmark):
    n_rows, card = PARAMS[0]
    table = corr_table(n_rows, card)
    trie = run_once(benchmark, build_bulk, table)
    benchmark.extra_info.update(
        strategy="bulk", n_rows=n_rows, trie_nodes=trie.n_nodes()
    )


def test_build_bulk_largest(benchmark):
    n_rows, card = PARAMS[-1]
    table = corr_table(n_rows, card)
    trie = run_once(benchmark, build_bulk, table)
    benchmark.extra_info.update(
        strategy="bulk", n_rows=n_rows, trie_nodes=trie.n_nodes()
    )


def test_build_bulk_iid_zipf(benchmark):
    # Worst case: independent dimensions, nearly every row distinct.
    n_rows, card = PARAMS[0]
    table = cached_zipf(n_rows, N_DIMS, card, THETA)
    trie = run_once(benchmark, build_bulk, table)
    benchmark.extra_info.update(
        strategy="bulk-iid", n_rows=n_rows, trie_nodes=trie.n_nodes()
    )


# ----------------------------------------------------------------------
# standalone smoke mode (CI): verify equality, print series, enforce floor
# ----------------------------------------------------------------------


def _timed(fn, *args) -> tuple:
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def verify_equivalence(points) -> None:
    """Bulk == incremental (streaming Algorithm 1) on the smallest point.

    The trie is canonical, so node-by-node equality against per-row
    insertion is the correctness oracle; timing a wrong answer fast would
    be meaningless, hence the check runs before any measurement.
    """
    n_rows, card = points[0]
    table = corr_table(n_rows, card)
    cuber = IncrementalRangeCuber(table.n_dims, SumCountAggregator(0))
    cuber.insert_table(table, build_strategy="tuple")
    if not tries_equal(build_bulk(table), cuber.trie):
        raise AssertionError(
            "bulk-built trie differs from incrementally built trie "
            f"({n_rows} rows x {N_DIMS} dims) — refusing to time a wrong result"
        )
    print(f"equivalence: bulk == incremental trie at {n_rows:,} rows OK")


def measure_point(table) -> dict:
    """Best-of-3 bulk (milliseconds-long) vs once-timed tuple (seconds)."""
    trie, tuple_s = _timed(build_tuple, table)
    timings: dict = {}
    bulk_s = float("inf")
    for _ in range(3):
        t: dict = {}
        start = time.perf_counter()
        RangeTrie.bulk_build(table, SumCountAggregator(0), timings=t)
        elapsed = time.perf_counter() - start
        if elapsed < bulk_s:
            bulk_s, timings = elapsed, t
    return {
        "n_rows": table.n_rows,
        "trie_nodes": trie.n_nodes(),
        "tuple_seconds": round(tuple_s, 4),
        "bulk_seconds": round(bulk_s, 4),
        "speedup": round(tuple_s / bulk_s if bulk_s else float("inf"), 2),
        **{k: round(v, 4) for k, v in timings.items()},
    }


def measure_obs_overhead(table, rounds: int = 3) -> dict:
    """Instrumented cubing run, telemetry on vs off, interleaved best-of-N.

    ``range_cubing_detailed`` is the instrumented path this benchmark's
    bulk builder feeds (build/traverse spans, phase histograms).  The
    rounds interleave enabled/disabled so drift hits both sides equally;
    minima discard scheduler noise, and the collector is paused during
    the timed runs — traversal allocates millions of short-lived ranges,
    so GC pauses land on random rounds and would otherwise dwarf the
    microseconds of telemetry being measured.
    """
    import gc

    from repro.core.range_cubing import range_cubing_detailed
    from repro.obs import is_enabled, set_enabled

    was_enabled = is_enabled()
    gc_was_enabled = gc.isenabled()
    ratios = []
    enabled_s = disabled_s = float("inf")

    def run(enabled: bool) -> float:
        set_enabled(enabled)
        gc.collect()
        _, elapsed = _timed(range_cubing_detailed, table)
        return elapsed

    try:
        range_cubing_detailed(table)  # warm caches outside the comparison
        gc.disable()
        for _ in range(rounds):
            # ABBA within each round: linear machine drift contributes
            # equally to both sides and cancels in the ratio.
            off_a, on_a, on_b, off_b = run(False), run(True), run(True), run(False)
            ratios.append((on_a + on_b) / (off_a + off_b))
            enabled_s = min(enabled_s, on_a, on_b)
            disabled_s = min(disabled_s, off_a, off_b)
    finally:
        set_enabled(was_enabled)
        if gc_was_enabled:
            gc.enable()
    # Scheduler noise is one-sided (contention only ever adds time) while
    # real instrumentation cost shows up in every round, so the smallest
    # per-round ratio is the robust estimate of the systematic overhead.
    return {
        "enabled_seconds": round(enabled_s, 4),
        "disabled_seconds": round(disabled_s, 4),
        "overhead": round(min(ratios) - 1, 4),
    }


def print_point(label: str, p: dict) -> None:
    print(
        f"{label:>12} {p['n_rows']:>9,} rows: tuple {p['tuple_seconds']:7.3f}s   "
        f"bulk {p['bulk_seconds']:7.3f}s (sort {p['sort_seconds']:.3f} "
        f"group {p['group_seconds']:.3f} agg {p['aggregate_seconds']:.3f})   "
        f"speedup {p['speedup']:5.1f}x"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest scale (the CI smoke job)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless bulk beats tuple by this factor at the largest point",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the series as JSON (default: no file in --quick mode, "
        "BENCH_bulk_build.json otherwise)",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=0.05,
        help="fail if telemetry adds more than this fraction to an "
        "instrumented cubing run at the largest point",
    )
    args = parser.parse_args(argv)
    points = POINTS["quick"] if args.quick else PARAMS
    out_path = args.out if args.out else (None if args.quick else "BENCH_bulk_build.json")

    print(
        f"bulk-build bench: zipf theta {THETA}, {N_DIMS} dims, "
        f"{len(FDS)} functional dependencies"
    )
    verify_equivalence(points)

    series = []
    for n_rows, card in points:
        point = {"cardinality": card, **measure_point(corr_table(n_rows, card))}
        series.append(point)
        print_point("correlated", point)

    # Worst-case reference (not floored): independent dims, ~all rows distinct.
    n_rows, card = points[0]
    iid = {"cardinality": card, **measure_point(cached_zipf(n_rows, N_DIMS, card, THETA))}
    print_point("iid-zipf", iid)

    obs = measure_obs_overhead(corr_table(*points[-1]))
    print(
        f"telemetry overhead at {points[-1][0]:,} rows: "
        f"{max(obs['overhead'], 0) * 100:.1f}% "
        f"(on {obs['enabled_seconds']:.3f}s / off {obs['disabled_seconds']:.3f}s, "
        f"cap {args.max_obs_overhead * 100:g}%)"
    )

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(
                {
                    "benchmark": "bulk_build",
                    "n_dims": N_DIMS,
                    "theta": THETA,
                    "dependencies": [[list(f.source_dims), list(f.target_dims)] for f in FDS],
                    "min_speedup_floor": args.min_speedup,
                    "points": series,
                    "iid_reference": iid,
                    "obs_overhead": obs,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {out_path}")

    final = series[-1]
    print(
        f"floor: {final['speedup']:.1f}x at {final['n_rows']:,} rows "
        f"(need >= {args.min_speedup:g}x)"
    )
    if final["speedup"] < args.min_speedup:
        print("FAIL: bulk build below the speedup floor")
        return 1
    if obs["overhead"] > args.max_obs_overhead:
        print("FAIL: telemetry overhead above the cap")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
