"""Incremental-maintenance benchmark: refresh vs from-scratch recompute.

After a warm history has been absorbed, an incremental refresh pays only
the new batch's insertions plus the traversal; the batch path re-inserts
the whole history.  Both produce identical cubes (tested in
tests/test_incremental.py); this measures the amortization.
"""

import numpy as np

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_cubing import range_cubing
from repro.data.synthetic import zipf_table
from repro.table.base_table import BaseTable

from benchmarks.conftest import PRESET, run_once

SCALES = {
    "tiny": {"history_rows": 3000, "batch_rows": 300, "n_dims": 5, "cardinality": 40},
    "small": {"history_rows": 15000, "batch_rows": 1500, "n_dims": 6, "cardinality": 80},
}
PARAMS = SCALES["small" if PRESET == "small" else "tiny"]

_CACHE: dict = {}


def _tables():
    if not _CACHE:
        history = zipf_table(
            PARAMS["history_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2, seed=3
        )
        batch = zipf_table(
            PARAMS["batch_rows"], PARAMS["n_dims"], PARAMS["cardinality"], 1.2, seed=4
        )
        combined = BaseTable(
            history.schema,
            np.concatenate([history.dim_codes, batch.dim_codes]),
            np.concatenate([history.measures, batch.measures]),
        )
        _CACHE.update(history=history, batch=batch, combined=combined)
    return _CACHE


def test_incremental_refresh(benchmark):
    tables = _tables()

    def refresh():
        # setup cost (absorbing history) paid per round to keep rounds
        # independent; the measured delta vs batch recompute is the point.
        cuber = IncrementalRangeCuber(PARAMS["n_dims"])
        cuber.insert_table(tables["history"])
        cuber.insert_table(tables["batch"])
        return cuber.cube()

    cube = run_once(benchmark, refresh)
    benchmark.extra_info.update(mode="incremental", ranges=cube.n_ranges)


def test_incremental_refresh_warm(benchmark):
    tables = _tables()
    cuber = IncrementalRangeCuber(PARAMS["n_dims"])
    cuber.insert_table(tables["history"])

    def refresh():
        # NB: repeated rounds re-absorb the batch; counts inflate but the
        # measured work per refresh (insert batch + traverse) is realistic.
        cuber.insert_table(tables["batch"])
        return cuber.cube()

    cube = run_once(benchmark, refresh)
    benchmark.extra_info.update(mode="incremental-warm", ranges=cube.n_ranges)


def test_batch_recompute(benchmark):
    tables = _tables()
    cube = run_once(benchmark, range_cubing, tables["combined"])
    benchmark.extra_info.update(mode="batch", ranges=cube.n_ranges)
