"""Shared machinery for the pytest-benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper at a
reduced ("tiny"/"small"-preset) scale: the timed series corresponds to the
figure's run-time plot, and the space series (tuple ratio, node ratio,
range/cell counts) is attached to each benchmark as ``extra_info`` so it
appears in ``--benchmark-json`` output and can be compared against the
figure's second panel.  ``python -m repro.harness.figN_... --preset small``
prints the same series as full tables.

Set ``REPRO_BENCH_PRESET=small`` to run the benchmarks at the larger
preset (minutes instead of seconds).
"""

from __future__ import annotations

import os

import pytest

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import zipf_table
from repro.data.weather import weather_table

PRESET = os.environ.get("REPRO_BENCH_PRESET", "tiny")

_TABLE_CACHE: dict = {}

#: Correlated workloads shared by the dim-order gate (``bench_dimorder``)
#: and the ablation series (``bench_ablation_dimorder``), so the two
#: benchmarks argue about the same tables.  Each picks a different static
#: winner, which is the point: no single static policy covers both, the
#: ``"auto"`` planner must.
DIMORDER_WORKLOADS = {
    # Two narrow dims functionally determine the two widest ones;
    # cardinality-descending (which sinks the narrow determinants) wins,
    # the as-is column order is the trap.
    "determined_wide": dict(
        n_dims=7,
        cardinalities=(12, 12, 150, 150, 40, 30, 20),
        dependencies=(FunctionalDependency((0, 1), (2, 3)),),
        theta=1.2,
        seed=7,
    ),
    # The as-is column order is already near-optimal (determinants sit
    # behind the dims they determine); descending is the trap here.
    "asis_best": dict(
        n_dims=6,
        cardinalities=(30, 120, 120, 10, 10, 25),
        dependencies=(FunctionalDependency((3, 4), (1, 2)),),
        theta=1.3,
        seed=11,
    ),
}


def cached_correlated(name: str, n_rows: int):
    spec = DIMORDER_WORKLOADS[name]
    key = ("correlated", name, n_rows)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = correlated_table(
            n_rows,
            spec["n_dims"],
            list(spec["cardinalities"]),
            spec["dependencies"],
            theta=spec["theta"],
            seed=spec["seed"],
        )
    return _TABLE_CACHE[key]


def cached_zipf(n_rows: int, n_dims: int, cardinality: int, theta: float, seed: int = 7):
    key = ("zipf", n_rows, n_dims, cardinality, theta, seed)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = zipf_table(n_rows, n_dims, cardinality, theta, seed=seed)
    return _TABLE_CACHE[key]


def cached_weather(n_rows: int, seed: int = 7):
    key = ("weather", n_rows, seed)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = weather_table(n_rows, seed=seed)
    return _TABLE_CACHE[key]


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark with one warm round and two measured rounds.

    Cube computations are seconds-long and deterministic; pytest-benchmark's
    auto-calibration would re-run them dozens of times for no extra
    information.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=2, iterations=1)


@pytest.fixture
def preset() -> str:
    return PRESET
