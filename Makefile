# Convenience targets for the Range CUBE reproduction.

PYTHON ?= python3

.PHONY: install test test-thorough lint ci bench bench-smoke query-bench shard-bench snapshot-bench dimorder-bench approx-bench bench-report serve-demo examples figures report claims clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-thorough:
	REPRO_HYPOTHESIS_PROFILE=thorough $(PYTHON) -m pytest tests/

lint:
	ruff check src tests benchmarks examples

# what .github/workflows/ci.yml runs: the full test suite plus the linter
# (lint is best-effort locally; CI fails on it)
ci:
	$(PYTHON) -m pytest tests/
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks examples \
		|| echo "ruff not installed; skipping lint locally"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the CI smoke job: the serving bench (with its cached-path speedup floor),
# the build and batched-query benches (each with a speedup floor), and a
# live /metrics scrape gate
bench-smoke:
	$(PYTHON) benchmarks/bench_serving.py --quick
	$(PYTHON) benchmarks/bench_bulk_build.py --quick
	$(PYTHON) benchmarks/bench_point_queries.py --quick
	$(PYTHON) benchmarks/bench_sharded.py --quick
	$(PYTHON) benchmarks/bench_snapshot.py --quick
	$(PYTHON) benchmarks/bench_dimorder.py --quick
	$(PYTHON) benchmarks/bench_approx.py --quick
	$(PYTHON) benchmarks/smoke_metrics.py
	REPRO_BENCH_PRESET=tiny $(PYTHON) -m pytest benchmarks/bench_point_queries.py --benchmark-only -q

# the batched point-query bench at full scale: verifies hash / columnar /
# scan identity, enforces the batched speedup floor and refreshes
# BENCH_point_queries.json
query-bench:
	$(PYTHON) benchmarks/bench_point_queries.py

# the sharded-service bench at full scale: verifies sharded == single
# identity, enforces the 4-shard routed-batch speedup floor and
# refreshes BENCH_sharded.json
shard-bench:
	$(PYTHON) benchmarks/bench_sharded.py

# the snapshot bench at full scale: verifies json == mmap answer identity,
# enforces the snapshot cold-start speedup floor and refreshes
# BENCH_snapshot.json
snapshot-bench:
	$(PYTHON) benchmarks/bench_snapshot.py

# the dim-order bench at full scale: verifies tuned == untuned answer
# identity, enforces the auto-vs-static floors and refreshes
# BENCH_dimorder.json
dimorder-bench:
	$(PYTHON) benchmarks/bench_dimorder.py

# the approximate-tier bench at full scale: verifies the exact answers
# fall inside the reported bounds, enforces the >=10x heavy-dice
# speedup floor and refreshes BENCH_approx.json
approx-bench:
	$(PYTHON) benchmarks/bench_approx.py

# fold every committed BENCH_*.json headline into docs/benchmarks.md
bench-report:
	$(PYTHON) benchmarks/bench_report.py

# end-to-end serving demo: generate a skewed table, serve it over HTTP on an
# ephemeral port, and drive 4 concurrent clients (plus 2 append batches) at it
serve-demo:
	$(PYTHON) -c "from repro.data.synthetic import zipf_table; \
		from repro.data.io import write_table_csv; \
		write_table_csv(zipf_table(2000, 4, 20, 1.2, seed=7), '/tmp/repro_demo.csv')"
	$(PYTHON) -m repro.cli workload /tmp/repro_demo.csv --measures 1 --serve \
		--clients 4 --requests 200 --theta 1.1 --appends 2

# the serving demo with an SLO target: the report adds attainment and
# error-budget burn lines (requests over the p99 target, and errors,
# count as misses against a 1% budget)
workload:
	$(PYTHON) -c "from repro.data.synthetic import zipf_table; \
		from repro.data.io import write_table_csv; \
		write_table_csv(zipf_table(2000, 4, 20, 1.2, seed=7), '/tmp/repro_demo.csv')"
	$(PYTHON) -m repro.cli workload /tmp/repro_demo.csv --measures 1 --serve \
		--clients 4 --requests 200 --theta 1.1 --appends 2 \
		--slo-p99-ms 25 --slo-budget 0.01

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

figures:
	$(PYTHON) -m repro.harness.fig8_dimensionality --preset small
	$(PYTHON) -m repro.harness.fig9_skew --preset small
	$(PYTHON) -m repro.harness.fig10_sparsity --preset small
	$(PYTHON) -m repro.harness.fig11_scalability --preset small
	$(PYTHON) -m repro.harness.real_weather --preset small
	$(PYTHON) -m repro.harness.ablations --preset small

report:
	$(PYTHON) -m repro.harness.report_all --preset small --out docs/report_small.md

claims:
	$(PYTHON) -m repro.harness.claims --preset tiny

clean:
	rm -rf src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
