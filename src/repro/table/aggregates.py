"""Aggregate functions and aggregator states shared by all cube algorithms.

Every cube algorithm in this repository (range cubing, H-Cubing, BUC,
star-cubing, ...) manipulates *aggregate states* rather than raw tuples.  A
state is an immutable value created from one tuple's measures and combined
pairwise with :meth:`Aggregator.merge`; immutability lets the range-cubing
reduction share states freely between tries.

Only *distributive* and *algebraic* aggregates (in Gray et al.'s
terminology) are supported — COUNT, SUM, MIN, MAX and AVG — because the
paper's simultaneous-aggregation strategy (computing an ``m``-dimensional
cell from ``(m+1)``-dimensional cells) requires states that merge.

The tuple count is always tracked as the first component of every state:
the count of a node bounds the count of every cell beneath it, which is what
enables the Apriori (iceberg) pruning the paper describes in Section 1.

Besides the scalar algebra, every aggregator also exposes two *batch
kernels* consumed by the sort-based bulk trie builder
(:meth:`repro.core.range_trie.RangeTrie.bulk_build`):

* :meth:`Aggregator.states_from_block` — per-row states for a whole
  measures block at once;
* :meth:`Aggregator.reduce_segments` — one merged state per contiguous
  row segment, vectorized with ``ufunc.reduceat`` (``np.add.reduceat``,
  ``np.minimum.reduceat``, ``np.maximum.reduceat``) for the distributive
  functions, so a trie node's state is computed from its row range in one
  shot instead of N pairwise :meth:`Aggregator.merge` calls.

Subclasses that redefine the scalar algebra (``state_from_row``/``merge``)
without providing matching batch kernels — e.g. the top-k average state of
:mod:`repro.core.complex_measures` — automatically fall back to an exact
per-row loop, so the batch entry points are always safe to call.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class AggregateFunction:
    """One aggregate over one measure column.

    Subclasses define a tiny algebra: ``initial(value)`` builds a state from
    one measure value, ``merge`` combines two states, and ``finalize`` turns
    a state into the reported aggregate value.
    """

    name = "abstract"

    def initial(self, value: float) -> Any:
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> float:
        raise NotImplementedError

    # batch kernels ----------------------------------------------------

    def initial_block(self, column: np.ndarray) -> list:
        """Vectorized :meth:`initial` over one measure column.

        Returns plain-python states (the scalar and the batch paths must
        produce interchangeable state values, e.g. for JSON persistence).
        """
        return [self.initial(v) for v in column.tolist()]

    def reduce_segments(self, column: np.ndarray, starts: np.ndarray) -> list:
        """One merged state per contiguous segment of ``column``.

        ``starts`` holds the ascending segment start offsets with
        ``starts[0] == 0``; segment ``i`` covers
        ``column[starts[i]:starts[i + 1]]`` and the last segment runs to
        the end of the column (exactly ``ufunc.reduceat`` semantics,
        which the distributive subclasses use verbatim).  The default is
        an exact per-row loop.
        """
        values = column.tolist()
        bounds = [int(s) for s in starts] + [len(values)]
        out = []
        for lo, hi in zip(bounds, bounds[1:]):
            state = self.initial(values[lo])
            for value in values[lo + 1 : hi]:
                state = self.merge(state, self.initial(value))
            out.append(state)
        return out


class SumFunction(AggregateFunction):
    name = "sum"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, state: float) -> float:
        return state

    def initial_block(self, column: np.ndarray) -> list:
        return column.tolist()

    def reduce_segments(self, column: np.ndarray, starts: np.ndarray) -> list:
        return np.add.reduceat(column, starts).tolist()


class MinFunction(AggregateFunction):
    name = "min"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a if a <= b else b

    def finalize(self, state: float) -> float:
        return state

    def initial_block(self, column: np.ndarray) -> list:
        return column.tolist()

    def reduce_segments(self, column: np.ndarray, starts: np.ndarray) -> list:
        return np.minimum.reduceat(column, starts).tolist()


class MaxFunction(AggregateFunction):
    name = "max"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a if a >= b else b

    def finalize(self, state: float) -> float:
        return state

    def initial_block(self, column: np.ndarray) -> list:
        return column.tolist()

    def reduce_segments(self, column: np.ndarray, starts: np.ndarray) -> list:
        return np.maximum.reduceat(column, starts).tolist()


class AvgFunction(AggregateFunction):
    """Algebraic average carried as a (sum, count) pair."""

    name = "avg"

    def initial(self, value: float) -> tuple[float, int]:
        return (value, 1)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state: tuple[float, int]) -> float:
        return state[0] / state[1]

    def initial_block(self, column: np.ndarray) -> list:
        return [(v, 1) for v in column.tolist()]

    def reduce_segments(self, column: np.ndarray, starts: np.ndarray) -> list:
        starts = np.asarray(starts, dtype=np.intp)
        sums = np.add.reduceat(column, starts).tolist()
        counts = np.diff(starts, append=len(column)).tolist()
        return list(zip(sums, counts))


class Aggregator:
    """A bundle of aggregate functions applied to measure columns.

    ``specs`` is a sequence of ``(function, measure_index)`` pairs.  The
    state produced is ``(count, f1_state, f2_state, ...)``: the leading
    count is always present so every algorithm can do iceberg pruning and
    report COUNT for free.
    """

    def __init__(self, specs: Sequence[tuple[AggregateFunction, int]] = ()) -> None:
        self.specs = tuple(specs)

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1,) + tuple(f.initial(measures[i]) for f, i in self.specs)

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0],) + tuple(
            f.merge(x, y) for (f, _), x, y in zip(self.specs, a[1:], b[1:])
        )

    def count(self, state: tuple) -> int:
        return state[0]

    def merge_many(self, states: Sequence[tuple | None]) -> tuple | None:
        """Fold partial states into one, skipping ``None`` (empty) entries.

        The scatter-gather router merges per-shard partial states with
        this: a shard that holds no matching tuples reports ``None``, and
        a cell empty on *every* shard merges to ``None`` — the same
        "empty cell" answer a single engine's ``lookup`` gives.
        """
        total = None
        for state in states:
            if state is None:
                continue
            total = state if total is None else self.merge(total, state)
        return total

    # batch kernels ----------------------------------------------------

    def _scalar_algebra_overridden(self) -> bool:
        """True when a subclass redefined the per-row algebra.

        Such a subclass's states need not match what the specs-driven
        batch kernels would produce, so the batch entry points must fall
        back to the (always-correct) per-row path unless the subclass
        also overrides them.
        """
        cls = type(self)
        return (
            cls.state_from_row is not Aggregator.state_from_row
            or cls.merge is not Aggregator.merge
        )

    def states_from_block(self, measures: np.ndarray) -> list[tuple]:
        """Per-row states for a whole measures block (rows x measures)."""
        measures = np.asarray(measures, dtype=np.float64)
        if self._scalar_algebra_overridden():
            return [self.state_from_row(row) for row in measures.tolist()]
        if not self.specs:
            return [(1,)] * measures.shape[0]
        columns = [f.initial_block(measures[:, i]) for f, i in self.specs]
        return [(1, *values) for values in zip(*columns)]

    def reduce_segments(self, measures: np.ndarray, starts: np.ndarray) -> list[tuple]:
        """One merged state per contiguous row segment of ``measures``.

        Segment semantics follow :meth:`AggregateFunction.reduce_segments`
        (ascending ``starts`` beginning at 0; the last segment runs to the
        end of the block).  The block must be non-empty.
        """
        starts = np.asarray(starts, dtype=np.intp)
        counts = np.diff(starts, append=len(measures)).tolist()
        if self._scalar_algebra_overridden():
            states = self.states_from_block(measures)
            out = []
            pos = 0
            for n in counts:
                state = states[pos]
                for other in states[pos + 1 : pos + n]:
                    state = self.merge(state, other)
                out.append(state)
                pos += n
            return out
        if not self.specs:
            return [(n,) for n in counts]
        measures = np.asarray(measures, dtype=np.float64)
        columns = [f.reduce_segments(measures[:, i], starts) for f, i in self.specs]
        return [(n, *values) for n, values in zip(counts, zip(*columns))]

    def result_names(self) -> tuple[str, ...]:
        return ("count",) + tuple(f.name for f, _ in self.specs)

    def finalize(self, state: tuple) -> dict[str, float]:
        out: dict[str, float] = {"count": state[0]}
        for (f, i), s in zip(self.specs, state[1:]):
            out[f"{f.name}({i})" if f.name in out else f.name] = f.finalize(s)
        return out


class CountAggregator(Aggregator):
    """COUNT(*) only — the cheapest state, an integer wrapped in a 1-tuple."""

    def __init__(self) -> None:
        super().__init__(())

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1,)

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0],)

    def finalize(self, state: tuple) -> dict[str, float]:
        return {"count": state[0]}

    def states_from_block(self, measures: np.ndarray) -> list[tuple]:
        return [(1,)] * len(measures)

    def reduce_segments(self, measures: np.ndarray, starts: np.ndarray) -> list[tuple]:
        starts = np.asarray(starts, dtype=np.intp)
        return [(n,) for n in np.diff(starts, append=len(measures)).tolist()]


class SumCountAggregator(Aggregator):
    """COUNT(*) plus SUM over one measure column — the default.

    This is the hot path for every benchmark, so the generic per-function
    loops are overridden with direct tuple arithmetic.
    """

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((SumFunction(), measure_index),))
        self.measure_index = measure_index

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1, measures[self.measure_index])

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state: tuple) -> dict[str, float]:
        return {"count": state[0], "sum": state[1]}

    def states_from_block(self, measures: np.ndarray) -> list[tuple]:
        column = np.asarray(measures, dtype=np.float64)[:, self.measure_index]
        return [(1, value) for value in column.tolist()]

    def reduce_segments(self, measures: np.ndarray, starts: np.ndarray) -> list[tuple]:
        starts = np.asarray(starts, dtype=np.intp)
        column = np.asarray(measures, dtype=np.float64)[:, self.measure_index]
        counts = np.diff(starts, append=len(column)).tolist()
        sums = np.add.reduceat(column, starts).tolist()
        return list(zip(counts, sums))


class SumAggregator(SumCountAggregator):
    """Alias of :class:`SumCountAggregator` kept for API clarity."""


class MinAggregator(Aggregator):
    """COUNT(*) plus MIN over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((MinFunction(), measure_index),))


class MaxAggregator(Aggregator):
    """COUNT(*) plus MAX over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((MaxFunction(), measure_index),))


class AvgAggregator(Aggregator):
    """COUNT(*) plus AVG over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((AvgFunction(), measure_index),))


class MultiAggregator(Aggregator):
    """Several aggregate functions at once, e.g. SUM+MIN+MAX of a measure.

    >>> agg = MultiAggregator([(SumFunction(), 0), (MaxFunction(), 1)])
    """


def default_aggregator(n_measures: int) -> Aggregator:
    """COUNT for measure-less tables, COUNT+SUM(first measure) otherwise."""
    if n_measures == 0:
        return CountAggregator()
    return SumCountAggregator(0)
