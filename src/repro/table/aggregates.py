"""Aggregate functions and aggregator states shared by all cube algorithms.

Every cube algorithm in this repository (range cubing, H-Cubing, BUC,
star-cubing, ...) manipulates *aggregate states* rather than raw tuples.  A
state is an immutable value created from one tuple's measures and combined
pairwise with :meth:`Aggregator.merge`; immutability lets the range-cubing
reduction share states freely between tries.

Only *distributive* and *algebraic* aggregates (in Gray et al.'s
terminology) are supported — COUNT, SUM, MIN, MAX and AVG — because the
paper's simultaneous-aggregation strategy (computing an ``m``-dimensional
cell from ``(m+1)``-dimensional cells) requires states that merge.

The tuple count is always tracked as the first component of every state:
the count of a node bounds the count of every cell beneath it, which is what
enables the Apriori (iceberg) pruning the paper describes in Section 1.
"""

from __future__ import annotations

from typing import Any, Sequence


class AggregateFunction:
    """One aggregate over one measure column.

    Subclasses define a tiny algebra: ``initial(value)`` builds a state from
    one measure value, ``merge`` combines two states, and ``finalize`` turns
    a state into the reported aggregate value.
    """

    name = "abstract"

    def initial(self, value: float) -> Any:
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> float:
        raise NotImplementedError


class SumFunction(AggregateFunction):
    name = "sum"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, state: float) -> float:
        return state


class MinFunction(AggregateFunction):
    name = "min"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a if a <= b else b

    def finalize(self, state: float) -> float:
        return state


class MaxFunction(AggregateFunction):
    name = "max"

    def initial(self, value: float) -> float:
        return value

    def merge(self, a: float, b: float) -> float:
        return a if a >= b else b

    def finalize(self, state: float) -> float:
        return state


class AvgFunction(AggregateFunction):
    """Algebraic average carried as a (sum, count) pair."""

    name = "avg"

    def initial(self, value: float) -> tuple[float, int]:
        return (value, 1)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state: tuple[float, int]) -> float:
        return state[0] / state[1]


class Aggregator:
    """A bundle of aggregate functions applied to measure columns.

    ``specs`` is a sequence of ``(function, measure_index)`` pairs.  The
    state produced is ``(count, f1_state, f2_state, ...)``: the leading
    count is always present so every algorithm can do iceberg pruning and
    report COUNT for free.
    """

    def __init__(self, specs: Sequence[tuple[AggregateFunction, int]] = ()) -> None:
        self.specs = tuple(specs)

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1,) + tuple(f.initial(measures[i]) for f, i in self.specs)

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0],) + tuple(
            f.merge(x, y) for (f, _), x, y in zip(self.specs, a[1:], b[1:])
        )

    def count(self, state: tuple) -> int:
        return state[0]

    def result_names(self) -> tuple[str, ...]:
        return ("count",) + tuple(f.name for f, _ in self.specs)

    def finalize(self, state: tuple) -> dict[str, float]:
        out: dict[str, float] = {"count": state[0]}
        for (f, i), s in zip(self.specs, state[1:]):
            out[f"{f.name}({i})" if f.name in out else f.name] = f.finalize(s)
        return out


class CountAggregator(Aggregator):
    """COUNT(*) only — the cheapest state, an integer wrapped in a 1-tuple."""

    def __init__(self) -> None:
        super().__init__(())

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1,)

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0],)

    def finalize(self, state: tuple) -> dict[str, float]:
        return {"count": state[0]}


class SumCountAggregator(Aggregator):
    """COUNT(*) plus SUM over one measure column — the default.

    This is the hot path for every benchmark, so the generic per-function
    loops are overridden with direct tuple arithmetic.
    """

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((SumFunction(), measure_index),))
        self.measure_index = measure_index

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        return (1, measures[self.measure_index])

    def merge(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state: tuple) -> dict[str, float]:
        return {"count": state[0], "sum": state[1]}


class SumAggregator(SumCountAggregator):
    """Alias of :class:`SumCountAggregator` kept for API clarity."""


class MinAggregator(Aggregator):
    """COUNT(*) plus MIN over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((MinFunction(), measure_index),))


class MaxAggregator(Aggregator):
    """COUNT(*) plus MAX over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((MaxFunction(), measure_index),))


class AvgAggregator(Aggregator):
    """COUNT(*) plus AVG over one measure column."""

    def __init__(self, measure_index: int = 0) -> None:
        super().__init__(((AvgFunction(), measure_index),))


class MultiAggregator(Aggregator):
    """Several aggregate functions at once, e.g. SUM+MIN+MAX of a measure.

    >>> agg = MultiAggregator([(SumFunction(), 0), (MaxFunction(), 1)])
    """


def default_aggregator(n_measures: int) -> Aggregator:
    """COUNT for measure-less tables, COUNT+SUM(first measure) otherwise."""
    if n_measures == 0:
        return CountAggregator()
    return SumCountAggregator(0)
