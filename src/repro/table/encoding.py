"""Dictionary encoding of dimension values.

All cube algorithms here work on dense integer codes per dimension; raw
values (strings, dates, floats used as categories, ...) are mapped through a
per-dimension dictionary.  Encoding is order-of-first-appearance, which is
sufficient because none of the algorithms relies on value order — only on
equality and per-dimension cardinality.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.table.schema import Schema


class DimensionEncoder:
    """Bidirectional value <-> dense integer code mapping for one dimension."""

    def __init__(self) -> None:
        self._code_of: dict[Hashable, int] = {}
        self._value_of: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._value_of)

    @property
    def cardinality(self) -> int:
        return len(self._value_of)

    def encode(self, value: Hashable) -> int:
        """Return the code for ``value``, assigning a fresh one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def encode_existing(self, value: Hashable) -> int:
        """Return the code for ``value``; raise ``KeyError`` if unseen."""
        return self._code_of[value]

    def decode(self, code: int) -> Hashable:
        return self._value_of[code]

    def values(self) -> tuple[Hashable, ...]:
        return tuple(self._value_of)


class TableEncoder:
    """Per-schema collection of :class:`DimensionEncoder` objects."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.encoders = tuple(DimensionEncoder() for _ in schema.dimensions)

    def encode_row(self, row: Sequence[Hashable]) -> tuple[int, ...]:
        if len(row) != self.schema.n_dims:
            raise ValueError(
                f"row has {len(row)} dimension values, schema expects {self.schema.n_dims}"
            )
        return tuple(enc.encode(v) for enc, v in zip(self.encoders, row))

    def encode_rows(self, rows: Iterable[Sequence[Hashable]]) -> list[tuple[int, ...]]:
        return [self.encode_row(r) for r in rows]

    def decode_row(self, codes: Sequence[int]) -> tuple[Hashable, ...]:
        return tuple(enc.decode(c) for enc, c in zip(self.encoders, codes))

    def decode_cell(self, cell: Sequence[int | None]) -> tuple[Hashable | None, ...]:
        """Decode a cell, leaving ``None`` (the ``*`` value) untouched."""
        return tuple(
            None if c is None else enc.decode(c) for enc, c in zip(self.encoders, cell)
        )

    def encoded_schema(self) -> Schema:
        """The schema with observed cardinalities filled in."""
        dims = tuple(
            d.with_cardinality(enc.cardinality)
            for d, enc in zip(self.schema.dimensions, self.encoders)
        )
        return Schema(dims, self.schema.measures)
