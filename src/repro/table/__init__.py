"""Relational substrate: schemas, dictionary encoding, base tables, aggregates.

The cube algorithms in :mod:`repro.core` and :mod:`repro.baselines` operate
on dictionary-encoded :class:`~repro.table.base_table.BaseTable` objects:
every dimension value is a dense non-negative integer code and every measure
is a float.  This package owns that encoding plus the aggregate-function
machinery shared by all cube computation algorithms.
"""

from repro.table.aggregates import (
    AggregateFunction,
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    MultiAggregator,
    SumAggregator,
    SumCountAggregator,
    default_aggregator,
)
from repro.table.base_table import BaseTable
from repro.table.encoding import DimensionEncoder, TableEncoder
from repro.table.schema import Dimension, Measure, Schema

__all__ = [
    "AggregateFunction",
    "Aggregator",
    "AvgAggregator",
    "BaseTable",
    "CountAggregator",
    "Dimension",
    "DimensionEncoder",
    "MaxAggregator",
    "Measure",
    "MinAggregator",
    "MultiAggregator",
    "Schema",
    "SumAggregator",
    "SumCountAggregator",
    "TableEncoder",
    "default_aggregator",
]
