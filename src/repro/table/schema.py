"""Schema objects describing the dimensions and measures of a base table.

Following the paper's data model (Section 1), a base table is a relation
whose attributes split into *dimensions* (the group-by attributes, e.g.
``Store``, ``City``, ``Product``, ``Date`` in the running sales example) and
numeric *measures* (e.g. ``Price``).  The dimensions jointly determine the
position of a tuple in the multidimensional space; the cube aggregates the
measures over every subset of dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Dimension:
    """A group-by attribute.

    ``cardinality`` is the number of distinct values the dimension takes.
    It is ``None`` for raw (not yet encoded) schemas and is filled in by
    :class:`repro.table.encoding.TableEncoder` once values are seen.
    """

    name: str
    cardinality: int | None = None

    def with_cardinality(self, cardinality: int) -> "Dimension":
        return Dimension(self.name, cardinality)


@dataclass(frozen=True)
class Measure:
    """A numeric attribute to be aggregated."""

    name: str


@dataclass(frozen=True)
class Schema:
    """An ordered list of dimensions plus a list of measures.

    The *order* of dimensions matters to every cube algorithm in this
    repository (the paper discusses dimension-order sensitivity in
    Section 5.2); :meth:`reordered` produces a schema with dimensions
    permuted, and :meth:`cardinality_descending_order` computes the order
    the paper identifies as favourable for range cubing, star-cubing and
    BUC alike.
    """

    dimensions: tuple[Dimension, ...]
    measures: tuple[Measure, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [d.name for d in self.dimensions] + [m.name for m in self.measures]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")

    @classmethod
    def from_names(
        cls,
        dimension_names: list[str] | tuple[str, ...],
        measure_names: list[str] | tuple[str, ...] = (),
    ) -> "Schema":
        return cls(
            tuple(Dimension(n) for n in dimension_names),
            tuple(Measure(n) for n in measure_names),
        )

    @property
    def n_dims(self) -> int:
        return len(self.dimensions)

    @property
    def n_measures(self) -> int:
        return len(self.measures)

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def measure_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.measures)

    @property
    def cardinalities(self) -> tuple[int | None, ...]:
        return tuple(d.cardinality for d in self.dimensions)

    def dimension_index(self, name: str) -> int:
        for i, d in enumerate(self.dimensions):
            if d.name == name:
                return i
        raise KeyError(f"no dimension named {name!r}")

    def measure_index(self, name: str) -> int:
        for i, m in enumerate(self.measures):
            if m.name == name:
                return i
        raise KeyError(f"no measure named {name!r}")

    def reordered(self, order: list[int] | tuple[int, ...]) -> "Schema":
        """Return a schema with dimensions permuted by ``order``.

        ``order`` lists old dimension indexes in their new positions and
        must be a permutation of ``range(n_dims)``.
        """
        if sorted(order) != list(range(self.n_dims)):
            raise ValueError(f"order {order!r} is not a permutation of 0..{self.n_dims - 1}")
        return Schema(tuple(self.dimensions[i] for i in order), self.measures)

    def cardinality_descending_order(self) -> tuple[int, ...]:
        """Dimension indexes sorted by descending cardinality.

        This is the paper's preferred order for range cubing (Section 5.2):
        high-cardinality dimensions are the most likely to *imply* values of
        lower-cardinality dimensions, so putting them first exposes the most
        correlation to the range trie while producing small partitions early
        (which also benefits iceberg pruning).
        """
        cards = self.cardinalities
        if any(c is None for c in cards):
            raise ValueError("cardinalities unknown; encode the table first")
        return tuple(sorted(range(self.n_dims), key=lambda i: (-cards[i], i)))

    def cardinality_ascending_order(self) -> tuple[int, ...]:
        """Dimension indexes sorted by ascending cardinality (H-Cubing's favourite)."""
        cards = self.cardinalities
        if any(c is None for c in cards):
            raise ValueError("cardinalities unknown; encode the table first")
        return tuple(sorted(range(self.n_dims), key=lambda i: (cards[i], i)))
