"""The encoded base table every cube algorithm consumes.

A :class:`BaseTable` stores dimension values as a dense ``numpy`` integer
matrix (one column per dimension, dictionary-encoded) and measures as a
float matrix.  It remembers the :class:`~repro.table.encoding.TableEncoder`
used to build it, so cells and cube output can be decoded back to raw
values for presentation.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.table.encoding import TableEncoder
from repro.table.schema import Schema


class BaseTable:
    """An immutable fact table of encoded dimension codes plus measures."""

    def __init__(
        self,
        schema: Schema,
        dim_codes: np.ndarray,
        measures: np.ndarray | None = None,
        encoder: TableEncoder | None = None,
    ) -> None:
        dim_codes = np.ascontiguousarray(dim_codes, dtype=np.int64)
        if dim_codes.ndim != 2:
            raise ValueError("dim_codes must be a 2-D array (rows x dimensions)")
        if dim_codes.shape[1] != schema.n_dims:
            raise ValueError(
                f"dim_codes has {dim_codes.shape[1]} columns, schema has {schema.n_dims} dimensions"
            )
        if measures is None:
            measures = np.zeros((dim_codes.shape[0], schema.n_measures), dtype=np.float64)
        measures = np.ascontiguousarray(measures, dtype=np.float64)
        if measures.ndim == 1:
            measures = measures.reshape(-1, 1)
        if measures.shape != (dim_codes.shape[0], schema.n_measures):
            raise ValueError(
                f"measures shape {measures.shape} does not match "
                f"({dim_codes.shape[0]}, {schema.n_measures})"
            )
        if dim_codes.size and dim_codes.min() < 0:
            raise ValueError("dimension codes must be non-negative")
        self.schema = schema
        self.dim_codes = dim_codes
        self.measures = measures
        self.encoder = encoder

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence[Hashable]],
        measures: Iterable[Sequence[float]] | None = None,
    ) -> "BaseTable":
        """Build a table from raw (unencoded) dimension-value rows.

        ``rows`` may also carry the measures inline: if ``measures`` is None
        and each row is longer than the schema's dimension count, the trailing
        ``n_measures`` entries of each row are taken as measures.
        """
        rows = list(rows)
        encoder = TableEncoder(schema)
        n_dims, n_meas = schema.n_dims, schema.n_measures
        if measures is None and rows and len(rows[0]) == n_dims + n_meas and n_meas:
            measures = [r[n_dims:] for r in rows]
            rows = [r[:n_dims] for r in rows]
        codes = np.array(
            [encoder.encode_row(r) for r in rows], dtype=np.int64
        ).reshape(len(rows), n_dims)
        meas_arr = None
        if measures is not None:
            meas_arr = np.array(list(measures), dtype=np.float64).reshape(len(rows), n_meas)
        return cls(encoder.encoded_schema(), codes, meas_arr, encoder)

    @classmethod
    def from_encoded(
        cls,
        schema: Schema,
        dim_codes: np.ndarray | Sequence[Sequence[int]],
        measures: np.ndarray | Sequence[Sequence[float]] | None = None,
    ) -> "BaseTable":
        """Build a table whose dimension values are already integer codes."""
        codes = np.asarray(dim_codes, dtype=np.int64)
        if codes.ndim == 1:
            codes = codes.reshape(-1, schema.n_dims)
        meas = None if measures is None else np.asarray(measures, dtype=np.float64)
        observed = tuple(
            d.with_cardinality(int(codes[:, i].max()) + 1 if codes.size else 0)
            if d.cardinality is None
            else d
            for i, d in enumerate(schema.dimensions)
        )
        return cls(Schema(observed, schema.measures), codes, meas)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.dim_codes.shape[0]

    @property
    def n_dims(self) -> int:
        return self.schema.n_dims

    @property
    def n_measures(self) -> int:
        return self.schema.n_measures

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"BaseTable({self.n_rows} rows, dims={list(self.schema.dimension_names)}, "
            f"measures={list(self.schema.measure_names)})"
        )

    def dim_column(self, dim: int) -> np.ndarray:
        return self.dim_codes[:, dim]

    def dim_rows(self) -> list[tuple[int, ...]]:
        """All dimension rows as Python int tuples (the algorithms' hot input)."""
        return list(map(tuple, self.dim_codes.tolist()))

    def measure_rows(self) -> list[tuple[float, ...]]:
        return list(map(tuple, self.measures.tolist()))

    def iter_rows(self) -> Iterator[tuple[tuple[int, ...], tuple[float, ...]]]:
        yield from zip(self.dim_rows(), self.measure_rows())

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def cardinality(self, dim: int) -> int:
        card = self.schema.dimensions[dim].cardinality
        if card is not None:
            return card
        return self.distinct_count(dim)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        return tuple(self.cardinality(i) for i in range(self.n_dims))

    def distinct_count(self, dim: int) -> int:
        """Number of distinct values actually present in column ``dim``."""
        if self.n_rows == 0:
            return 0
        return int(np.unique(self.dim_codes[:, dim]).size)

    def distinct_tuple_count(self) -> int:
        """Number of distinct full dimension-value combinations."""
        if self.n_rows == 0:
            return 0
        return int(np.unique(self.dim_codes, axis=0).shape[0])

    def density(self) -> float:
        """Distinct tuples divided by the size of the full dimension space."""
        space = 1.0
        for c in self.cardinalities:
            space *= max(c, 1)
        return self.distinct_tuple_count() / space

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def reordered(self, order: Sequence[int]) -> "BaseTable":
        """Return a table with dimensions permuted by ``order``."""
        schema = self.schema.reordered(list(order))
        return BaseTable(schema, self.dim_codes[:, list(order)], self.measures, None)

    def with_cardinality_descending_dims(self) -> tuple["BaseTable", tuple[int, ...]]:
        """Reorder dimensions by descending observed cardinality.

        Returns the reordered table together with the permutation applied
        (new position -> old dimension index), so cells can be mapped back.
        """
        observed = tuple(self.distinct_count(i) for i in range(self.n_dims))
        order = tuple(sorted(range(self.n_dims), key=lambda i: (-observed[i], i)))
        return self.reordered(order), order

    def head(self, n: int = 5) -> list[tuple[Hashable, ...]]:
        """First ``n`` rows, decoded if an encoder is available."""
        rows = []
        for codes in self.dim_codes[:n].tolist():
            if self.encoder is not None:
                rows.append(self.encoder.decode_row(codes))
            else:
                rows.append(tuple(codes))
        return rows
