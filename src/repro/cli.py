"""Command-line interface: cube CSV tables without writing any Python.

    python -m repro generate zipf --rows 5000 --dims 5 --card 100 --out t.csv
    python -m repro cube t.csv --measures 1 --out cube.csv --min-support 4
    python -m repro stats t.csv --measures 1
    python -m repro query cube.csv --bind 0=3 --bind 2=7
    python -m repro experiment fig9 --preset tiny
    python -m repro report --preset tiny --out report.md
    python -m repro claims --preset tiny

``cube`` writes the range cube in the paper's tuple notation (see
:mod:`repro.data.io`); ``stats`` prints the table's shape plus the trie /
H-tree node comparison; ``query`` answers point queries against a saved
cube by dimension *codes*; ``experiment`` dispatches to the per-figure
harness drivers.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.baselines.buc import buc
from repro.baselines.hcubing import h_cubing
from repro.baselines.htree import HTree
from repro.baselines.star_cubing import star_cubing
from repro.core.range_cubing import range_cubing_detailed
from repro.core.range_trie import RangeTrie
from repro.data.io import read_range_cube_csv, read_table_csv, write_table_csv
from repro.data.weather import weather_table
from repro.data.synthetic import uniform_table, zipf_table
from repro.harness.runner import preferred_order


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "zipf":
        table = zipf_table(args.rows, args.dims, args.card, args.theta, seed=args.seed)
    elif args.kind == "uniform":
        table = uniform_table(args.rows, args.dims, args.card, seed=args.seed)
    else:
        table = weather_table(args.rows, seed=args.seed)
    write_table_csv(table, args.out)
    print(f"wrote {table.n_rows} rows x {table.n_dims} dims to {args.out}")
    return 0


def _cmd_cube(args: argparse.Namespace) -> int:
    table = read_table_csv(args.table, n_measures=args.measures)
    order = preferred_order(table, args.order) if args.order != "as-is" else None
    start = time.perf_counter()
    if args.algorithm == "range":
        cube, stats = range_cubing_detailed(
            table, order=order, min_support=args.min_support
        )
        seconds = time.perf_counter() - start
        print(
            f"range cube: {cube.n_ranges:,} ranges"
            + (f" for {cube.n_cells:,} cells" if args.min_support <= 1 else "")
            + f" in {seconds:.2f}s ({stats['trie_nodes']:,} trie nodes)"
        )
        if args.out:
            from repro.data.io import write_range_cube_csv

            write_range_cube_csv(cube, args.out, table.schema.dimension_names)
            print(f"wrote {args.out}")
    else:
        algorithm = {"buc": buc, "hcubing": h_cubing, "star": star_cubing}[args.algorithm]
        cube = algorithm(table, order=order, min_support=args.min_support)
        seconds = time.perf_counter() - start
        print(f"{args.algorithm}: {len(cube):,} cells in {seconds:.2f}s")
        if args.out:
            print("note: --out only writes range cubes; rerun with --algorithm range")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    table = read_table_csv(args.table, n_measures=args.measures)
    print(f"{table.n_rows:,} rows, {table.n_dims} dimensions, "
          f"{table.n_measures} measure(s)")
    for i, name in enumerate(table.schema.dimension_names):
        print(f"   {name}: cardinality {table.distinct_count(i)}")
    print(f"distinct tuples: {table.distinct_tuple_count():,} "
          f"(density {table.density():.3g})")
    working = table.reordered(preferred_order(table, "desc"))
    trie = RangeTrie.build(working)
    htree = HTree.build(working)
    print(f"range trie: {trie.n_nodes():,} nodes "
          f"({trie.n_interior():,} interior, depth {trie.max_depth()})")
    print(f"H-tree:     {htree.n_nodes():,} nodes "
          f"(node ratio {100 * trie.n_nodes() / htree.n_nodes():.1f}%)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    cube = read_range_cube_csv(args.cube)
    bindings: dict[int, int] = {}
    for item in args.bind or []:
        dim_text, _, value_text = item.partition("=")
        bindings[int(dim_text)] = int(value_text)
    cell = tuple(bindings.get(i) for i in range(cube.n_dims))
    state = cube.lookup(cell)
    if state is None:
        print("empty cell (no matching tuples)")
        return 1
    result = cube.aggregator.finalize(state)
    containing = cube.range_of(cell)
    print(f"cell {cell}: {result}")
    print(f"containing range: {containing.to_string()}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import (
        ablations,
        fig8_dimensionality,
        fig9_skew,
        fig10_sparsity,
        fig11_scalability,
        real_weather,
    )

    drivers = {
        "fig8": fig8_dimensionality,
        "fig9": fig9_skew,
        "fig10": fig10_sparsity,
        "fig11": fig11_scalability,
        "weather": real_weather,
        "ablations": ablations,
    }
    driver = drivers[args.which]
    driver.main(["--preset", args.preset])
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report_all import main as report_main

    argv = ["--preset", args.preset]
    if args.out:
        argv += ["--out", args.out]
    return report_main(argv)


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.harness.claims import main as claims_main

    return claims_main(["--preset", args.preset])


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.cube.estimate import estimate_full_cube_size, recommend_strategy

    table = read_table_csv(args.table, n_measures=args.measures)
    advice = recommend_strategy(table, sample_size=args.sample)
    estimated = (
        advice.estimated_cells
        if advice.estimated_cells == advice.estimated_cells  # not NaN
        else estimate_full_cube_size(table, args.sample)
        if table.n_dims <= 16
        else float("nan")
    )
    print(f"{table.n_rows:,} rows x {table.n_dims} dims")
    if estimated == estimated:
        print(f"estimated full-cube size: ~{estimated:,.0f} cells")
    print(f"recommended strategy: {advice.strategy}")
    print(f"reason: {advice.reason}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Range CUBE (ICDE 2004) command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic table as CSV")
    p.add_argument("kind", choices=("zipf", "uniform", "weather"))
    p.add_argument("--rows", type=int, default=5000)
    p.add_argument("--dims", type=int, default=5)
    p.add_argument("--card", type=int, default=100)
    p.add_argument("--theta", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("cube", help="compute a cube from a CSV table")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument(
        "--algorithm", default="range", choices=("range", "buc", "hcubing", "star")
    )
    p.add_argument("--order", default="desc", choices=("desc", "asc", "as-is"))
    p.add_argument("--min-support", type=int, default=1)
    p.add_argument("--out", help="write the (range) cube as CSV")
    p.set_defaults(func=_cmd_cube)

    p = sub.add_parser("stats", help="table shape + trie/H-tree comparison")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("query", help="point query against a saved range cube")
    p.add_argument("cube")
    p.add_argument(
        "--bind",
        action="append",
        metavar="DIM=CODE",
        help="bind a dimension index to a value code (repeatable)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("experiment", help="run a paper experiment driver")
    p.add_argument(
        "which", choices=("fig8", "fig9", "fig10", "fig11", "weather", "ablations")
    )
    p.add_argument("--preset", default="small", choices=("tiny", "small", "paper"))
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("report", help="run every experiment, write a markdown report")
    p.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("claims", help="check the paper's qualitative claims")
    p.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    p.set_defaults(func=_cmd_claims)

    p = sub.add_parser("advise", help="estimate cube size, recommend a strategy")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0)
    p.add_argument("--sample", type=int, default=2000)
    p.set_defaults(func=_cmd_advise)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
