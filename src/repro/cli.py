"""Command-line interface: cube CSV tables without writing any Python.

    python -m repro generate zipf --rows 5000 --dims 5 --card 100 --out t.csv
    python -m repro cube t.csv --measures 1 --out cube.csv --min-support 4
    python -m repro cube t.csv --algorithm parallel_range_cubing \\
        --executor process --workers 4
    python -m repro algorithms
    python -m repro stats t.csv --measures 1
    python -m repro tune explain t.csv --measures 1
    python -m repro query cube.csv --bind 0=3 --bind 2=7
    python -m repro serve t.csv --measures 1 --port 8642
    python -m repro workload http://127.0.0.1:8642 --clients 4
    python -m repro workload t.csv --measures 1 --serve --clients 4
    python -m repro snapshot save t.csv --measures 1 --out t.snapshot
    python -m repro snapshot save t.csv --measures 1 --out fleet.snapshot --shards 4
    python -m repro snapshot inspect t.snapshot
    python -m repro snapshot load t.snapshot --budget-mb 64
    python -m repro serve --snapshot-dir t.snapshot --port 8642
    python -m repro workload t.snapshot --cold-start 5
    python -m repro cube t.csv --measures 1 --trace-out spans.json
    python -m repro obs http://127.0.0.1:8642
    python -m repro obs http://127.0.0.1:8642 --trace --out spans.json
    python -m repro experiment fig9 --preset tiny
    python -m repro report --preset tiny --out report.md
    python -m repro claims --preset tiny

``cube`` dispatches by name through the algorithm registry
(:mod:`repro.baselines.registry`) and writes range cubes in the paper's
tuple notation (see :mod:`repro.data.io`); ``algorithms`` lists every
registered name; ``stats`` prints the table's shape plus the trie /
H-tree node comparison; ``query`` answers point queries against a saved
cube by dimension *codes*; ``experiment`` dispatches to the per-figure
harness drivers.

``serve`` holds a cube resident behind the JSON/HTTP front end of
:mod:`repro.serve`; ``workload`` drives a running server (or a table it
serves itself with ``--serve``, or queries in-process) with a
Zipf-skewed query mix and prints throughput, cache hit rate and
p50/p95/p99 latency.

``cube --trace-out`` saves the build's tracing spans as Chrome
trace-event JSON (open in Perfetto / ``chrome://tracing``); ``obs``
fetches a running server's ``/metrics`` (or ``--trace`` / ``--slowlog``)
— see ``docs/observability.md``.

``snapshot`` freezes a cubed table into an mmap-able column snapshot
(``--shards N`` writes one snapshot per value-routed partition plus a
fleet manifest); ``serve --snapshot-dir`` and a directory ``workload``
target cold-start from it — near-instant restarts, out-of-core reads —
and ``workload --cold-start N`` measures that restart latency.  See
``docs/persistence.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.baselines.htree import HTree
from repro.baselines.registry import available_algorithms, get_algorithm
from repro.core.range_cube import RangeCube
from repro.core.range_trie import RangeTrie
from repro.data.io import read_range_cube_csv, read_table_csv, write_table_csv
from repro.data.weather import weather_table
from repro.data.synthetic import uniform_table, zipf_table
from repro.exec.executors import available_executors
from repro.harness.runner import preferred_order


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "zipf":
        table = zipf_table(args.rows, args.dims, args.card, args.theta, seed=args.seed)
    elif args.kind == "uniform":
        table = uniform_table(args.rows, args.dims, args.card, seed=args.seed)
    else:
        table = weather_table(args.rows, seed=args.seed)
    write_table_csv(table, args.out)
    print(f"wrote {table.n_rows} rows x {table.n_dims} dims to {args.out}")
    return 0


def _cmd_cube(args: argparse.Namespace) -> int:
    table = read_table_csv(args.table, n_measures=args.measures)
    record = get_algorithm(args.algorithm)
    extra: dict = {}
    if record.name == "parallel_range_cubing":
        extra = {
            "executor": args.executor,
            "workers": args.workers,
            "n_partitions": args.partitions,
        }
    elif record.name == "range_cubing":
        extra = {"build_strategy": args.build}
    # The registry forwards an explicit dim_order=None as "pin the as-is
    # order" (the range-cubing family self-tunes when it is omitted).
    if not record.supports_dim_order or args.order == "as-is":
        order = None
    elif args.order == "auto" and record.name in (
        "range_cubing",
        "parallel_range_cubing",
    ):
        order = "auto"  # native self-tuning path (plan lands in stats)
    else:
        order = preferred_order(table, args.order)
    from repro.obs import get_tracer

    tracer = get_tracer()
    try:
        # The CLI-level span wraps the whole run so every algorithm —
        # instrumented internally or not — shows up in --trace-out.
        with tracer.span(
            "cli.cube", algorithm=record.name, rows=table.n_rows, dims=table.n_dims
        ):
            result, stats = record.run_detailed(
                table, dim_order=order, min_support=args.min_support, **extra
            )
    except ValueError as exc:  # e.g. "dwarf does not support iceberg thresholds"
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_out:
        n_spans = tracer.export_chrome_file(args.trace_out)
        print(f"wrote {n_spans} spans to {args.trace_out} (open in Perfetto)")
    seconds = stats["total_seconds"]
    if isinstance(result, RangeCube):
        cube = result
        print(
            f"{record.name}: {cube.n_ranges:,} ranges"
            + (f" for {cube.n_cells:,} cells" if args.min_support <= 1 else "")
            + f" in {seconds:.2f}s"
            + (f" ({stats['trie_nodes']:,} trie nodes)" if "trie_nodes" in stats else "")
        )
        if "build_s" in stats:
            print(
                "stages: "
                + ", ".join(
                    f"{name} {stats[f'{name}_s']:.2f}s"
                    for name in ("partition", "build", "merge", "cube")
                )
                + f" ({stats['executor']} x{stats['workers']}, "
                f"{int(stats['n_partitions'])} partitions)"
            )
        if "sort_seconds" in stats:
            print(
                f"build ({stats['build_strategy']}): "
                f"sort {stats['sort_seconds']:.2f}s, "
                f"group {stats['group_seconds']:.2f}s, "
                f"aggregate {stats['aggregate_seconds']:.2f}s; "
                f"traverse {stats['traverse_seconds']:.2f}s"
            )
        if args.out:
            from repro.data.io import write_range_cube_csv

            write_range_cube_csv(cube, args.out, table.schema.dimension_names)
            print(f"wrote {args.out}")
    else:
        try:
            size = f"{len(result):,} cells"
        except TypeError:
            size = "done"
        print(f"{record.name}: {size} in {seconds:.2f}s")
        if args.out:
            print(
                "note: --out only writes range cubes; rerun with "
                "--algorithm range_cubing"
            )
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    for name in available_algorithms():
        record = get_algorithm(name)
        flags = []
        if not record.supports_min_support:
            flags.append("no iceberg")
        if not record.supports_dim_order:
            flags.append("no dim order")
        if not record.lossless:
            flags.append("condensed subset")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{name:24} {record.description}{suffix}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    table = read_table_csv(args.table, n_measures=args.measures)
    print(f"{table.n_rows:,} rows, {table.n_dims} dimensions, "
          f"{table.n_measures} measure(s)")
    for i, name in enumerate(table.schema.dimension_names):
        print(f"   {name}: cardinality {table.distinct_count(i)}")
    print(f"distinct tuples: {table.distinct_tuple_count():,} "
          f"(density {table.density():.3g})")
    working = table.reordered(preferred_order(table, "desc"))
    trie = RangeTrie.bulk_build(working)
    census = trie.stats()
    htree = HTree.build(working)
    print(f"range trie: {census.nodes:,} nodes "
          f"({census.interior:,} interior, depth {census.max_depth})")
    print(f"H-tree:     {htree.n_nodes():,} nodes "
          f"(node ratio {100 * census.nodes / htree.n_nodes():.1f}%)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    cube = read_range_cube_csv(args.cube)
    bindings: dict[int, int] = {}
    for item in args.bind or []:
        dim_text, _, value_text = item.partition("=")
        bindings[int(dim_text)] = int(value_text)
    cell = tuple(bindings.get(i) for i in range(cube.n_dims))
    state = cube.lookup(cell)
    if state is None:
        print("empty cell (no matching tuples)")
        return 1
    result = cube.aggregator.finalize(state)
    containing = cube.range_of(cell)
    print(f"cell {cell}: {result}")
    print(f"containing range: {containing.to_string()}")
    return 0


def _build_engine(args: argparse.Namespace):
    """The serving engine for ``args``: resident, sharded, or snapshot-backed."""
    from repro.serve import QueryEngine, ShardRouter

    snapshot_dir = getattr(args, "snapshot_dir", None)
    if snapshot_dir:
        from repro.store import SnapshotEngine, is_sharded_snapshot

        budget = int(getattr(args, "budget_mb", 64.0) * (1 << 20))
        if is_sharded_snapshot(snapshot_dir):
            return ShardRouter.from_snapshot_dir(
                snapshot_dir,
                cache_capacity=args.cache,
                timeout=getattr(args, "shard_timeout", 30.0),
                budget_bytes=budget,
            )
        return SnapshotEngine(snapshot_dir, cache_capacity=args.cache, budget_bytes=budget)
    table = read_table_csv(args.table, n_measures=args.measures)
    shards = getattr(args, "shards", 0)
    if shards and shards > 1:
        return ShardRouter.from_table(
            table,
            n_shards=shards,
            shard_dim=getattr(args, "shard_dim", 0),
            min_support=args.min_support,
            cache_capacity=args.cache,
            timeout=getattr(args, "shard_timeout", 30.0),
        )
    return QueryEngine.from_table(
        table, min_support=args.min_support, cache_capacity=args.cache
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CubeServer

    if bool(args.table) == bool(args.snapshot_dir):
        print(
            "error: give a CSV table or --snapshot-dir DIR (exactly one)",
            file=sys.stderr,
        )
        return 2
    engine = _build_engine(args)
    server = CubeServer(engine, host=args.host, port=args.port, verbose=args.verbose)
    stats = engine.stats()
    if stats.get("sharded"):
        tier = f"{stats['n_shards']} shards (dim {stats['shard_dim']})"
        if args.snapshot_dir:
            tier += ", snapshot-backed"
    elif stats.get("snapshot"):
        tier = (
            f"snapshot tier, {stats['snapshot']['mapped_bytes'] / (1 << 20):.1f} MiB mapped"
        )
    else:
        tier = "single engine"
    print(
        f"serving {stats['rows_absorbed']:,} rows as {stats['n_ranges']:,} ranges "
        f"({stats['n_dims']} dims, {tier}) on {server.url}"
    )
    print(
        "endpoints: GET /healthz /readyz /stats /metrics /trace /slowlog, "
        "POST /query /append  (ctrl-c to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        if hasattr(engine, "close"):
            engine.close()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.serve import CubeServer, HTTPCubeClient, InProcessClient, WorkloadDriver
    from repro.serve.workload import WorkloadMix

    try:
        mix = WorkloadMix.parse(args.mix) if args.mix else None
        if mix is not None:
            mix.normalized()  # surface zero/negative weights before any setup
    except ValueError as exc:  # e.g. "unknown op 'nope' in mix"
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = None
    engine = None
    if args.target.startswith(("http://", "https://")):
        if args.cold_start:
            print(
                "error: --cold-start needs a local target (CSV table or "
                "snapshot directory), not a running server",
                file=sys.stderr,
            )
            return 2
        url = args.target
        factory = lambda: HTTPCubeClient(url)  # noqa: E731
        transport = f"HTTP -> {url}"
    else:
        # A directory target is a snapshot (single or sharded fleet);
        # anything else is a CSV table to cube in-process.
        if Path(args.target).is_dir():
            args.snapshot_dir = args.target
        else:
            args.table = args.target
        engine = _build_engine(args)
        if args.serve:
            server = CubeServer(engine, port=0)
            url = server.start()
            factory = lambda: HTTPCubeClient(url)  # noqa: E731
            transport = f"HTTP -> {url} (self-served)"
        else:
            factory = lambda: InProcessClient(engine)  # noqa: E731
            transport = "in-process"
    try:
        driver = WorkloadDriver(
            factory,
            mix=mix,
            theta=args.theta,
            pool_size=args.pool,
            seed=args.seed,
            append_batches=args.appends,
            append_rows=args.append_rows,
            batch_size=args.batch,
            bind_dim=getattr(args, "bind_dim", None),
            cold_start=args.cold_start,
            cold_start_factory=(
                (lambda: _build_engine(args)) if args.cold_start else None
            ),
            slo_p99_ms=getattr(args, "slo_p99_ms", None),
            slo_budget=getattr(args, "slo_budget", 0.01),
            approx_fraction=getattr(args, "approx_fraction", 0.0),
            approx_confidence=getattr(args, "approx_confidence", 0.95),
        )
        report = driver.run(clients=args.clients, requests_per_client=args.requests)
    except ValueError as exc:  # e.g. "clients and requests_per_client must be positive"
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
        if engine is not None and hasattr(engine, "close"):
            engine.close()
    print(f"transport: {transport}")
    print(report.format())
    return 1 if report.errors else 0


_EXPLAIN_COUNTERS = (
    "postings_intersected",
    "postings_resolved",
    "batch_masks",
    "cells_scanned",
    "cuboid_map_hits",
    "cuboid_ids_built",
    "cuboid_maps_built",
    "ranges_merged",
    "snapshot_bytes_faulted",
)


def _format_explain(account: dict) -> str:
    """The EXPLAIN account as the readable block ``repro explain`` prints."""
    head = f"explain: {account.get('op')} @ v{account.get('version')}"
    if account.get("engine"):
        head += f"  engine {account['engine']}"
    if account.get("cache_hit"):
        head += "  (result cache hit)"
    lines = [head]
    routing = account.get("routing")
    if routing:
        lines.append(
            f"routing: shard dim {routing['shard_dim']}, fanout "
            f"{routing['fanout']} -> shards {routing['shards_touched']}, "
            f"items {routing['items']}"
        )
    for shard in account.get("shards", ()):
        tier = shard.get("tier") or {}
        parts = [f"shard {shard.get('shard')}: tier {tier.get('source', '?')}"]
        parts += [
            f"{name} {shard[name]:,}" for name in _EXPLAIN_COUNTERS if name in shard
        ]
        if "elapsed_us" in shard:
            parts.append(f"{shard['elapsed_us']:,.0f}us")
        lines.append("  " + "  ".join(parts))
    if "shards" not in account:
        counters = [
            f"{name} {account[name]:,}"
            for name in _EXPLAIN_COUNTERS
            if name in account
        ]
        if counters:
            lines.append("index: " + "  ".join(counters))
        tier = account.get("tier")
        if tier:
            detail = "".join(
                f"  {k} {tier[k]}" for k in ("hot_hits", "cold_hits") if k in tier
            )
            lines.append(f"tier: {tier.get('source')}{detail}")
        if account.get("snapshot"):
            lines.append(f"snapshot: {account['snapshot']}")
    approx = account.get("approx")
    if approx:
        lines.append(
            f"approx: estimator {approx.get('estimator')}  "
            f"sample {approx.get('sample_size'):,} rows "
            f"({approx.get('matched'):,} matched)  "
            f"bound width {approx.get('bound_width')}"
        )
    phases = account.get("phases_us")
    if phases:
        lines.append(
            "phases: " + "  ".join(f"{k} {v:,.0f}us" for k, v in phases.items())
        )
    return "\n".join(lines)


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.serve import HTTPCubeClient, InProcessClient
    from repro.serve.protocol import QueryRequest, ServeError

    predicates: dict[str, list[int]] = {}
    for item in args.pred or []:
        dim_text, _, values = item.partition("=")
        predicates[dim_text.strip()] = [
            int(v) for v in values.split(",") if v.strip()
        ]
    bindings: dict[int, int] = {}
    for item in args.bind or []:
        dim_text, _, value_text = item.partition("=")
        bindings[int(dim_text)] = int(value_text)
    engine = None
    if args.target.startswith(("http://", "https://")):
        client = HTTPCubeClient(args.target)
    else:
        if Path(args.target).is_dir():
            args.snapshot_dir = args.target
        else:
            args.table = args.target
        engine = _build_engine(args)
        client = InProcessClient(engine)
    try:
        n_dims = client.stats()["n_dims"]
        cell: list[int | None] = [None] * n_dims
        for d, v in bindings.items():
            if not 0 <= d < n_dims:
                print(f"error: dimension {d} out of range (cube has {n_dims})",
                      file=sys.stderr)
                return 2
            cell[d] = v
        if (args.confidence is not None or args.having is not None) and not args.approx:
            print("error: --confidence/--having need --approx", file=sys.stderr)
            return 2
        if args.approx and args.op != "dice":
            print("error: --approx only applies to --op dice", file=sys.stderr)
            return 2
        request = QueryRequest(
            op=args.op,
            cell=cell,
            dim=args.dim,
            predicates=predicates or None,
            explain=True,
            approx=True if args.approx else None,
            confidence=args.confidence,
            having=args.having,
        )
        try:
            response = client.query(request)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    finally:
        client.close()
        if engine is not None and hasattr(engine, "close"):
            engine.close()
    if args.json:
        print(json.dumps(response, indent=1, default=str))
        return 0
    if "value" in response:
        print(f"value: {response['value']}")
    elif "children" in response:
        print(f"children: {len(response['children'])}")
    block = response.get("approx")
    if block:
        if "estimate" in block:
            print(
                f"bounds ({block.get('confidence'):g}): "
                f"{block.get('lower')} .. {block.get('upper')}"
            )
        if block.get("fallback"):
            reason = block.get("reason")
            print(
                "approx: exact fallback"
                + (f" ({reason})" if reason else " (some shards answered exactly)")
            )
    account = response.get("explain")
    if account:
        print(_format_explain(account))
    else:
        print("(server returned no explain block)")
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    from repro.table.schema import Dimension, Schema

    table = read_table_csv(args.table, n_measures=args.measures)
    # Pin observed cardinalities so a loaded engine can build workload
    # pools / drill-down candidates without the base table at hand.
    schema = Schema(
        tuple(
            Dimension(d.name, int(c) if c else table.distinct_count(i))
            for i, (d, c) in enumerate(
                zip(table.schema.dimensions, table.schema.cardinalities)
            )
        ),
        table.schema.measures,
    )
    if args.shards and args.shards > 1:
        from repro.store import save_sharded_snapshot

        save_sharded_snapshot(
            table,
            args.out,
            n_shards=args.shards,
            shard_dim=args.shard_dim,
            min_support=args.min_support,
        )
        print(
            f"wrote sharded snapshot of {table.n_rows:,} rows "
            f"({args.shards} shards on dim {args.shard_dim}) to {args.out}"
        )
        return 0
    from repro.core.range_cubing import range_cubing_detailed
    from repro.store import write_snapshot

    cube, stats = range_cubing_detailed(table, min_support=args.min_support)
    write_snapshot(
        cube,
        args.out,
        schema,
        min_support=args.min_support,
        rows_absorbed=table.n_rows,
        tuning=stats.get("tuning"),
        # Bake the approx-tier sketch in at freeze time so a cold-started
        # engine answers approx dice without a warm-up build.
        sketch=True,
    )
    print(f"wrote {cube.n_ranges:,} ranges ({table.n_rows:,} rows) to {args.out}")
    return 0


def _cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.store import (
        SnapshotError,
        inspect_snapshot,
        is_sharded_snapshot,
        read_router_manifest,
    )

    try:
        if is_sharded_snapshot(args.snapshot):
            manifest = read_router_manifest(args.snapshot)
            shards = [
                inspect_snapshot(Path(args.snapshot) / name)
                for name in manifest["shards"]
            ]
            if args.json:
                print(json.dumps({"router": manifest, "shards": shards}, indent=1))
                return 0
            print(
                f"sharded snapshot: {manifest['n_shards']} shards "
                f"(dim {manifest['shard_dim']}), {manifest['rows_absorbed']:,} rows, "
                f"engine version {manifest['engine_version']}"
            )
            for name, info in zip(manifest["shards"], shards):
                print(
                    f"  {name}: {info['n_ranges']:,} ranges, "
                    f"{info['column_bytes']:,} column bytes"
                )
            return 0
        info = inspect_snapshot(args.snapshot)
    except (SnapshotError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(info, indent=1))
        return 0
    print(f"{info['path']}: {info['format']} v{info['format_version']}")
    print(
        f"{info['n_ranges']:,} ranges, {info['n_dims']} dims, "
        f"states {info['states_format']}, min_support {info['min_support']}, "
        f"engine version {info['engine_version']}, "
        f"{info['rows_absorbed']:,} rows absorbed"
    )
    for entry in info["files"]:
        print(
            f"  {entry['file']:<24} {entry['dtype']:>8}  "
            f"{'x'.join(str(n) for n in entry['shape']):>12}  {entry['bytes']:,} bytes"
        )
    print(f"column bytes: {info['column_bytes']:,}")
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    import time

    from repro.serve import InProcessClient
    from repro.serve.protocol import QueryRequest
    from repro.store import SnapshotError, SnapshotIntegrityError

    args.snapshot_dir = args.snapshot
    args.cache = 0
    start = time.perf_counter()
    try:
        engine = _build_engine(args)
    except (SnapshotError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.verify and hasattr(engine, "store"):
            from repro.store.snapshot import _verify_checksums

            try:
                _verify_checksums(Path(args.snapshot_dir), engine.store.manifest)
            except SnapshotIntegrityError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print("checksums: ok")
        mapped = time.perf_counter() - start
        with InProcessClient(engine) as client:
            stats = client.stats()
            begin = time.perf_counter()
            response = client.query(
                QueryRequest(op="point", cell=[None] * stats["n_dims"])
            )
            first_query = time.perf_counter() - begin
        print(
            f"mapped {stats['n_ranges']:,} ranges "
            f"({stats['rows_absorbed']:,} rows) in {mapped:.4f}s; "
            f"first query {first_query * 1000:.3f}ms"
        )
        print(f"apex: {response['value']}")
        if hasattr(engine, "tier_stats"):
            tier = engine.tier_stats()
            print(
                f"tier: budget {tier['budget_bytes']:,} bytes, "
                f"{tier['hot_masks']} hot masks, {tier['resident_bytes']:,} resident"
            )
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from urllib.error import URLError
    from urllib.request import urlopen

    if args.trace and args.slowlog:
        print("error: choose one of --trace / --slowlog", file=sys.stderr)
        return 2
    if args.trace:
        path = "/trace?format=chrome" if args.chrome else "/trace"
        if args.limit is not None:
            path += ("&" if "?" in path else "?") + f"limit={args.limit}"
    elif args.slowlog:
        path = "/slowlog"
    else:
        path = "/metrics?scope=local" if args.local else "/metrics"
    url = args.server.rstrip("/") + path
    try:
        with urlopen(url, timeout=args.timeout) as response:
            body = response.read().decode("utf-8")
    except (URLError, OSError, TimeoutError) as exc:
        print(f"error: could not fetch {url}: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(body)
            if not body.endswith("\n"):
                fh.write("\n")
        print(f"wrote {args.out}")
    elif args.slowlog and not args.raw:
        import json

        entries = json.loads(body).get("slow_queries", [])
        if not entries:
            print("no slow queries retained")
            return 0
        for entry in entries:
            ms = float(entry.get("duration_s", entry.get("duration", 0.0))) * 1000
            trace_id = entry.get("trace_id") or "-"
            span_id = entry.get("span_id") or "-"
            print(
                f"{ms:9.3f}ms  {entry.get('op', '?'):<9}  "
                f"trace {trace_id}  span {span_id}  "
                f"{json.dumps(entry.get('request'), default=str)}"
            )
    else:
        print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import (
        ablations,
        fig8_dimensionality,
        fig9_skew,
        fig10_sparsity,
        fig11_scalability,
        real_weather,
    )

    drivers = {
        "fig8": fig8_dimensionality,
        "fig9": fig9_skew,
        "fig10": fig10_sparsity,
        "fig11": fig11_scalability,
        "weather": real_weather,
        "ablations": ablations,
    }
    driver = drivers[args.which]
    driver.main(["--preset", args.preset])
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report_all import main as report_main

    argv = ["--preset", args.preset]
    if args.out:
        argv += ["--out", args.out]
    return report_main(argv)


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.harness.claims import main as claims_main

    return claims_main(["--preset", args.preset])


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from repro.tune import plan_table

    table = read_table_csv(args.table, n_measures=args.measures)
    plan = plan_table(table, sample_rows=args.sample, value_reorder=args.values)
    if args.json:
        print(json.dumps(plan.to_json(), indent=1))
        return 0
    print(plan.explain(table.schema.dimension_names))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    import json

    from repro.cube.estimate import (
        estimate_cuboid_size,
        estimate_full_cube_size,
        recommend_strategy,
    )

    table = read_table_csv(args.table, n_measures=args.measures)
    if args.dims:
        try:
            dims = [int(d) for d in args.dims.split(",") if d.strip()]
        except ValueError:
            print(f"error: --dims wants comma-separated indices, got {args.dims!r}",
                  file=sys.stderr)
            return 2
        bad = [d for d in dims if not 0 <= d < table.n_dims]
        if bad:
            print(f"error: dimension(s) {bad} out of range "
                  f"(table has {table.n_dims})", file=sys.stderr)
            return 2
        cells = estimate_cuboid_size(table, dims, sample_size=args.sample)
        if args.json:
            print(json.dumps({
                "rows": table.n_rows,
                "dims": dims,
                "estimated_cells": cells,
                "sample_size": args.sample,
            }))
            return 0
        names = ", ".join(table.schema.dimension_names[d] for d in dims)
        print(f"{table.n_rows:,} rows; cuboid ({names}): ~{cells:,.0f} cells "
              f"(GEE over a {args.sample}-row sample)")
        return 0
    advice = recommend_strategy(table, sample_size=args.sample)
    total = (
        advice.estimated_cells
        if advice.estimated_cells == advice.estimated_cells  # not NaN
        else estimate_full_cube_size(table, args.sample)
        if table.n_dims <= 16
        else float("nan")
    )
    if args.json:
        print(json.dumps({
            "rows": table.n_rows,
            "n_dims": table.n_dims,
            "estimated_cells": None if total != total else total,
            "density": advice.density,
            "strategy": advice.strategy,
            "reason": advice.reason,
            "sample_size": args.sample,
        }))
        return 0
    print(f"{table.n_rows:,} rows x {table.n_dims} dims "
          f"(density {advice.density:.3g})")
    if total == total:
        print(f"estimated full-cube size: ~{total:,.0f} cells")
    else:
        print("estimated full-cube size: n/a (too many dims for the full sweep)")
    print(f"recommended strategy: {advice.strategy}")
    print(f"reason: {advice.reason}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.cube.estimate import estimate_full_cube_size, recommend_strategy

    table = read_table_csv(args.table, n_measures=args.measures)
    advice = recommend_strategy(table, sample_size=args.sample)
    estimated = (
        advice.estimated_cells
        if advice.estimated_cells == advice.estimated_cells  # not NaN
        else estimate_full_cube_size(table, args.sample)
        if table.n_dims <= 16
        else float("nan")
    )
    print(f"{table.n_rows:,} rows x {table.n_dims} dims")
    if estimated == estimated:
        print(f"estimated full-cube size: ~{estimated:,.0f} cells")
    print(f"recommended strategy: {advice.strategy}")
    print(f"reason: {advice.reason}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Range CUBE (ICDE 2004) command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic table as CSV")
    p.add_argument("kind", choices=("zipf", "uniform", "weather"))
    p.add_argument("--rows", type=int, default=5000)
    p.add_argument("--dims", type=int, default=5)
    p.add_argument("--card", type=int, default=100)
    p.add_argument("--theta", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("cube", help="compute a cube from a CSV table")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument(
        "--algorithm",
        default="range_cubing",
        choices=(*available_algorithms(), "range", "star", "parallel"),
        help="a registry name (see `repro algorithms`) or legacy alias",
    )
    p.add_argument(
        "--order",
        "--dim-order",
        default="auto",
        choices=("auto", "desc", "asc", "as-is"),
        help="trie dimension order: the 'auto' sentinel samples the table and "
        "plans it (repro.tune, the library default); 'desc'/'asc' sort by "
        "cardinality; 'as-is' keeps column order",
    )
    p.add_argument("--min-support", type=int, default=1)
    p.add_argument(
        "--executor",
        default="process",
        choices=available_executors(),
        help="parallel_range_cubing backend",
    )
    p.add_argument(
        "--workers", type=int, default=None, help="worker count (default: CPUs)"
    )
    p.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="table partitions for parallel_range_cubing (default: workers)",
    )
    p.add_argument(
        "--build",
        default="bulk",
        choices=("bulk", "tuple"),
        help="range_cubing trie construction: vectorized bulk sort or tuple-at-a-time",
    )
    p.add_argument("--out", help="write the (range) cube as CSV")
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the build's tracing spans as Chrome trace-event JSON",
    )
    p.set_defaults(func=_cmd_cube)

    p = sub.add_parser("algorithms", help="list the registered cube algorithms")
    p.set_defaults(func=_cmd_algorithms)

    p = sub.add_parser("stats", help="table shape + trie/H-tree comparison")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("query", help="point query against a saved range cube")
    p.add_argument("cube")
    p.add_argument(
        "--bind",
        action="append",
        metavar="DIM=CODE",
        help="bind a dimension index to a value code (repeatable)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("serve", help="serve a cube over JSON/HTTP")
    p.add_argument(
        "table",
        nargs="?",
        default=None,
        help="CSV base table to cube and hold resident (or use --snapshot-dir)",
    )
    p.add_argument(
        "--snapshot-dir",
        default=None,
        dest="snapshot_dir",
        metavar="DIR",
        help="cold-start from an mmap snapshot (single or sharded) instead of a table",
    )
    p.add_argument(
        "--budget-mb",
        type=float,
        default=64.0,
        dest="budget_mb",
        help="snapshot tier resident-bytes budget in MiB (with --snapshot-dir)",
    )
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument("--min-support", type=int, default=1)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642, help="0 picks an ephemeral port")
    p.add_argument("--cache", type=int, default=4096, help="result-cache entries (0 = off)")
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve the cube sharded over N worker processes (0/1 = single engine)",
    )
    p.add_argument(
        "--shard-dim",
        type=int,
        default=0,
        dest="shard_dim",
        help="dimension whose value routes each row/query to its shard",
    )
    p.add_argument(
        "--shard-timeout",
        type=float,
        default=30.0,
        dest="shard_timeout",
        help="seconds before a silent shard turns into a structured timeout",
    )
    p.add_argument("--verbose", action="store_true", help="log every request")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("workload", help="drive a serving workload, print latencies")
    p.add_argument(
        "target",
        help="a running server's http://host:port, a CSV table to serve, "
        "or a snapshot directory to mmap",
    )
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument("--min-support", type=int, default=1)
    p.add_argument(
        "--serve",
        action="store_true",
        help="serve a CSV target over a local HTTP server instead of in-process",
    )
    p.add_argument("--cache", type=int, default=4096, help="result-cache entries (0 = off)")
    p.add_argument("--clients", type=int, default=4, help="concurrent clients")
    p.add_argument("--requests", type=int, default=200, help="requests per client")
    p.add_argument("--theta", type=float, default=1.1, help="zipf skew of query popularity")
    p.add_argument("--pool", type=int, default=256, help="distinct queries in the mix")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--mix",
        default=None,
        help="op weights, e.g. point=0.7,rollup=0.15,drilldown=0.1,slice=0.05",
    )
    p.add_argument("--appends", type=int, default=0, help="append batches during the run")
    p.add_argument("--append-rows", type=int, default=32, help="rows per append batch")
    p.add_argument(
        "--batch",
        type=int,
        default=1,
        help="requests per query_batch round trip (1 = request-at-a-time)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve a CSV target sharded over N worker processes",
    )
    p.add_argument(
        "--shard-dim",
        type=int,
        default=0,
        dest="shard_dim",
        help="dimension whose value routes each row/query to its shard",
    )
    p.add_argument(
        "--shard-timeout",
        type=float,
        default=30.0,
        dest="shard_timeout",
        help="seconds before a silent shard turns into a structured timeout",
    )
    p.add_argument(
        "--bind-dim",
        type=int,
        default=None,
        dest="bind_dim",
        help="pin this dimension in every pooled query (shard-key-bound traffic)",
    )
    p.add_argument(
        "--cold-start",
        type=int,
        default=0,
        dest="cold_start",
        help="after the run, time N engine restarts to first answered query "
        "(local targets only; reported as the cold_start op)",
    )
    p.add_argument(
        "--budget-mb",
        type=float,
        default=64.0,
        dest="budget_mb",
        help="snapshot tier resident-bytes budget in MiB (directory targets)",
    )
    p.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        dest="slo_p99_ms",
        help="latency SLO target in ms: report attainment and error-budget burn",
    )
    p.add_argument(
        "--slo-budget",
        type=float,
        default=0.01,
        dest="slo_budget",
        help="allowed fraction of requests over the SLO target (default 1%%)",
    )
    p.add_argument(
        "--approx-fraction",
        type=float,
        default=0.0,
        dest="approx_fraction",
        help="fraction of dice queries answered by the approximate tier "
        "(reported as the dice_approx op with its own percentiles)",
    )
    p.add_argument(
        "--approx-confidence",
        type=float,
        default=0.95,
        dest="approx_confidence",
        help="confidence level for approximate-tier bounds (default 0.95)",
    )
    p.set_defaults(func=_cmd_workload, snapshot_dir=None)

    p = sub.add_parser(
        "snapshot", help="freeze, inspect or probe mmap cube snapshots"
    )
    snap = p.add_subparsers(dest="action", required=True)

    ps = snap.add_parser("save", help="cube a CSV table into a snapshot directory")
    ps.add_argument("table", help="CSV base table to cube and freeze")
    ps.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    ps.add_argument("--min-support", type=int, default=1)
    ps.add_argument("--out", required=True, help="snapshot directory to write")
    ps.add_argument(
        "--shards",
        type=int,
        default=0,
        help="write a sharded fleet: one snapshot per partition plus router.json",
    )
    ps.add_argument(
        "--shard-dim",
        type=int,
        default=0,
        dest="shard_dim",
        help="dimension whose value routes each row to its shard",
    )
    ps.set_defaults(func=_cmd_snapshot_save)

    ps = snap.add_parser("inspect", help="print a snapshot's manifest summary")
    ps.add_argument("snapshot", help="snapshot directory (single or sharded)")
    ps.add_argument("--json", action="store_true", help="machine-readable output")
    ps.set_defaults(func=_cmd_snapshot_inspect)

    ps = snap.add_parser(
        "load", help="mmap a snapshot, answer the apex query, print timings"
    )
    ps.add_argument("snapshot", help="snapshot directory (single or sharded)")
    ps.add_argument(
        "--budget-mb",
        type=float,
        default=64.0,
        dest="budget_mb",
        help="snapshot tier resident-bytes budget in MiB",
    )
    ps.add_argument(
        "--verify",
        action="store_true",
        help="checksum every column file against the manifest first (full read)",
    )
    ps.set_defaults(func=_cmd_snapshot_load)

    p = sub.add_parser("obs", help="fetch telemetry from a running server")
    p.add_argument("server", help="base URL, e.g. http://127.0.0.1:8642")
    p.add_argument(
        "--trace", action="store_true", help="fetch /trace instead of /metrics"
    )
    p.add_argument(
        "--chrome",
        action="store_true",
        help="with --trace: Chrome trace-event JSON (open in Perfetto)",
    )
    p.add_argument(
        "--slowlog", action="store_true", help="fetch /slowlog instead of /metrics"
    )
    p.add_argument(
        "--raw",
        action="store_true",
        help="with --slowlog: print the raw JSON instead of one line per entry",
    )
    p.add_argument(
        "--local",
        action="store_true",
        help="fetch /metrics?scope=local (this process only, no shard federation)",
    )
    p.add_argument("--limit", type=int, default=None, help="keep only the newest N spans")
    p.add_argument("--timeout", type=float, default=5.0, help="request timeout seconds")
    p.add_argument("--out", default=None, help="write the response to a file")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "explain", help="run one query with EXPLAIN, print the per-phase account"
    )
    p.add_argument(
        "target",
        help="a running server's http://host:port, a CSV table, or a snapshot directory",
    )
    p.add_argument(
        "--op",
        default="point",
        choices=("point", "rollup", "drilldown", "slice", "dice"),
    )
    p.add_argument(
        "--bind",
        action="append",
        metavar="DIM=CODE",
        help="bind a dimension index to a value code (repeatable)",
    )
    p.add_argument("--dim", type=int, default=None, help="axis for rollup/drilldown")
    p.add_argument(
        "--pred",
        action="append",
        metavar="DIM=V1,V2",
        help="dice predicate: dimension index = comma-separated codes (repeatable)",
    )
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument("--min-support", type=int, default=1)
    p.add_argument("--cache", type=int, default=4096)
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        help="explain against a local N-shard fleet (CSV targets)",
    )
    p.add_argument("--shard-dim", type=int, default=0, dest="shard_dim")
    p.add_argument(
        "--budget-mb",
        type=float,
        default=64.0,
        dest="budget_mb",
        help="snapshot tier resident-bytes budget in MiB (directory targets)",
    )
    p.add_argument(
        "--approx",
        action="store_true",
        help="answer a dice from the sketch tier (estimate + bounds)",
    )
    p.add_argument(
        "--confidence",
        type=float,
        default=None,
        help="with --approx: bound confidence level (default 0.95)",
    )
    p.add_argument(
        "--having",
        type=float,
        default=None,
        help="with --approx: keep only finest cells with count >= N (iceberg)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable account")
    p.set_defaults(func=_cmd_explain, snapshot_dir=None, shard_timeout=30.0)

    p = sub.add_parser("experiment", help="run a paper experiment driver")
    p.add_argument(
        "which", choices=("fig8", "fig9", "fig10", "fig11", "weather", "ablations")
    )
    p.add_argument("--preset", default="small", choices=("tiny", "small", "paper"))
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("report", help="run every experiment, write a markdown report")
    p.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("claims", help="check the paper's qualitative claims")
    p.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    p.set_defaults(func=_cmd_claims)

    p = sub.add_parser("tune", help="inspect the dim_order='auto' planner")
    tsub = p.add_subparsers(dest="action", required=True)
    pt = tsub.add_parser(
        "explain", help="print the plan 'auto' would choose for a table"
    )
    pt.add_argument("table", help="CSV base table to sample")
    pt.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    pt.add_argument(
        "--sample", type=int, default=4096, help="reservoir rows the planner scans"
    )
    pt.add_argument(
        "--values",
        action="store_true",
        help="also plan per-dimension value reorders (co-occurrence clustering)",
    )
    pt.add_argument("--json", action="store_true", help="machine-readable plan")
    pt.set_defaults(func=_cmd_tune)

    p = sub.add_parser("advise", help="estimate cube size, recommend a strategy")
    p.add_argument("table")
    p.add_argument("--measures", type=int, default=0)
    p.add_argument("--sample", type=int, default=2000)
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser(
        "estimate",
        help="sampling-based size estimates: one cuboid (--dims) or the full cube",
    )
    p.add_argument("table", help="CSV base table to sample")
    p.add_argument("--measures", type=int, default=0, help="trailing measure columns")
    p.add_argument(
        "--dims",
        default=None,
        metavar="D1,D2",
        help="estimate one cuboid's distinct-group count instead of the full cube",
    )
    p.add_argument(
        "--sample", type=int, default=2000, help="sampled rows for the GEE estimator"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_estimate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
