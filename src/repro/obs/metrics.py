"""A process-wide metric registry with a Prometheus-text exposition.

Every layer of the system used to report itself differently — ad-hoc
stats dicts from the cubing paths, private cache counters in the serving
engine, a latency histogram inside the workload driver.  This module is
the one vocabulary they all speak now: named **counters**, **gauges**
and **histograms** with optional labels, registered once in a
process-wide :class:`MetricRegistry` and scraped as Prometheus text
(exposition format 0.0.4) from ``GET /metrics`` on a running server.

Design constraints, in order:

* **dependency-free** — stdlib only; the histogram type reuses
  :class:`~repro.metrics.histogram.LatencyHistogram`'s geometric buckets
  (sparse, merge in O(buckets)) instead of prometheus_client's fixed
  bucket lists;
* **thread-safe recording** — every mutation takes the metric's lock;
  the lock guards a couple of dict/float operations, so contention is
  nanoseconds and exact counts survive concurrent recording (asserted by
  the test suite);
* **cross-worker folding** — :meth:`MetricRegistry.to_dict` /
  :meth:`MetricRegistry.merge` round-trip the whole registry through
  plain JSON-able dicts, so per-worker registries (or per-worker
  histograms, via :meth:`LatencyHistogram.to_dict`) fold into the
  parent's after a parallel stage;
* **hot-path cheap** — ``metric.labels(op="point")`` returns a bound
  series handle callers can cache, skipping label resolution per event.

The metric name catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.metrics.histogram import LatencyHistogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Content type a ``/metrics`` response should declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


_LABEL_UNESCAPE_RE = re.compile(r"\\(.)")
_LABEL_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label_value(value: str) -> str:
    # One left-to-right pass, so '\\n' round-trips to a backslash + 'n'
    # rather than a newline (sequential str.replace gets this wrong).
    return _LABEL_UNESCAPE_RE.sub(
        lambda m: _LABEL_UNESCAPES.get(m.group(1), m.group(0)), value
    )


def _format_number(value: float) -> str:
    """Prometheus sample values: integral floats render without a dot."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """Shared machinery: one named family holding label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    # -- series resolution ------------------------------------------------

    def _key(self, labels: Mapping[str, object]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _new_value(self) -> object:
        return 0.0

    def _get_series(self, key: tuple) -> object:
        with self._lock:
            value = self._series.get(key)
            if value is None:
                value = self._series[key] = self._new_value()
            return value

    def labels(self, **labels: object) -> "BoundSeries":
        """A bound handle for one label combination (cacheable by callers)."""
        return BoundSeries(self, self._key(labels))

    # -- snapshots --------------------------------------------------------

    def series(self) -> list[tuple[tuple, object]]:
        """A consistent ``(label_values, value)`` snapshot, sorted."""
        with self._lock:
            return sorted(self._series.items())

    def value(self, **labels: object) -> float:
        """The current scalar value of one series (0.0 when unrecorded)."""
        with self._lock:
            value = self._series.get(self._key(labels))
        if isinstance(value, LatencyHistogram):
            return value.count
        return float(value) if value is not None else 0.0

    def reset(self) -> None:
        """Drop every recorded series (tests; the family stays registered)."""
        with self._lock:
            self._series.clear()

    def to_dict(self) -> dict:
        """JSON-able snapshot: the cross-worker folding format."""
        out = []
        for key, value in self.series():
            entry: dict = {"labels": list(key)}
            if isinstance(value, LatencyHistogram):
                entry["histogram"] = value.to_dict()
            else:
                entry["value"] = value
            out.append(entry)
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": out,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {len(self._series)} series)"


class BoundSeries:
    """One (metric, label-values) pair, pre-resolved for hot paths."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Metric, key: tuple) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc_key(self._key, amount)

    def set(self, value: float) -> None:
        self._metric._set_key(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe_key(self._key, value)

    def merge(self, histogram: LatencyHistogram) -> None:
        self._metric._merge_key(self._key, histogram)


class Counter(Metric):
    """A monotonically increasing count (rendered with a ``_total`` name)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the labeled series."""
        self._inc_key(self._key(labels), amount)

    def _inc_key(self, key: tuple, amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def _set_key(self, key: tuple, value: float) -> None:
        raise TypeError("counters cannot be set; use inc()")

    def _observe_key(self, key: tuple, value: float) -> None:
        raise TypeError(f"{self.name} is a counter, not a histogram")

    def _merge_key(self, key: tuple, histogram: LatencyHistogram) -> None:
        raise TypeError(f"{self.name} is a counter, not a histogram")


class Gauge(Metric):
    """A value that can go up and down (sizes, versions, capacities)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._set_key(self._key(labels), value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self._inc_key(self._key(labels), amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self._inc_key(self._key(labels), -amount)

    def _inc_key(self, key: tuple, amount: float) -> None:
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def _set_key(self, key: tuple, value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def _observe_key(self, key: tuple, value: float) -> None:
        raise TypeError(f"{self.name} is a gauge, not a histogram")

    def _merge_key(self, key: tuple, histogram: LatencyHistogram) -> None:
        raise TypeError(f"{self.name} is a gauge, not a histogram")


class Histogram(Metric):
    """Geometric-bucket value distribution, one per label combination.

    Each series is a :class:`LatencyHistogram`, so observation is O(1),
    the footprint is a sparse dict of non-empty buckets, and two series
    with the same layout merge bucket-wise — which is how per-worker
    timings fold into the parent registry after a parallel stage.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        min_value: float = 1e-6,
        growth: float = 1.25,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.min_value = min_value
        self.growth = growth

    def _new_value(self) -> LatencyHistogram:
        return LatencyHistogram(self.min_value, self.growth)

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample into the labeled series."""
        self._observe_key(self._key(labels), value)

    def merge(self, histogram: LatencyHistogram, **labels: object) -> None:
        """Fold a whole pre-recorded histogram (e.g. a worker's) in."""
        self._merge_key(self._key(labels), histogram)

    def percentile(self, p: float, **labels: object) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
        return series.percentile(p) if series is not None else 0.0

    def _observe_key(self, key: tuple, value: float) -> None:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._new_value()
            series.record(value)

    def _merge_key(self, key: tuple, histogram: LatencyHistogram) -> None:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = LatencyHistogram(
                    histogram.min_latency, histogram.growth
                )
            series.merge(histogram)

    def _inc_key(self, key: tuple, amount: float) -> None:
        raise TypeError(f"{self.name} is a histogram; use observe()")

    def _set_key(self, key: tuple, value: float) -> None:
        raise TypeError(f"{self.name} is a histogram; use observe()")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricRegistry:
    """Named metrics, get-or-create, rendered as Prometheus text.

    One process-wide instance (:func:`repro.obs.get_registry`) backs the
    whole system; modules create their handles at import time and the
    get-or-create contract makes re-registration idempotent — asking for
    an existing name with a matching kind and label set returns the same
    object, a mismatch raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration -----------------------------------------------------

    def _get_or_create(self, cls: type, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        min_value: float = 1e-6,
        growth: float = 1.25,
    ) -> Histogram:
        """Get or create a geometric-bucket histogram."""
        return self._get_or_create(
            Histogram, name, help, labelnames, min_value=min_value, growth=growth
        )

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Run ``collect()`` before every snapshot/render.

        Collectors bridge state that lives elsewhere (cache sizes, cube
        versions) onto gauges at scrape time instead of on every update.
        A collector that raises ``LookupError`` is dropped — the idiom
        for weakref-bound collectors whose owner has been collected.
        """
        with self._lock:
            self._collectors.append(collect)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        dead = []
        for collect in collectors:
            try:
                collect()
            except LookupError:
                dead.append(collect)
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors if c not in dead]

    # -- introspection ----------------------------------------------------

    def names(self) -> list[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        """The registered metric, or KeyError."""
        with self._lock:
            return self._metrics[name]

    def metrics(self) -> list[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop all recorded values (families stay registered) — tests."""
        for metric in self.metrics():
            metric.reset()

    # -- folding ----------------------------------------------------------

    def to_dict(self) -> dict:
        """The whole registry as a JSON-able dict (collectors included)."""
        self._run_collectors()
        return {"metrics": [m.to_dict() for m in self.metrics()]}

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. a worker's) into this one.

        Counters and gauges add; histograms merge bucket-wise.  Families
        absent here are created with the snapshot's kind and labels.
        """
        self._merge_snapshot(snapshot, None, None)

    def merge_labeled(self, snapshot: Mapping, label: str, value: str) -> None:
        """Fold a snapshot in, tagging every series with ``label=value``.

        The federation primitive: each worker's registry snapshot lands
        with an extra identifying label (``shard="0"``), so counters sum
        per shard, gauges stay distinguishable per shard, and histograms
        bucket-merge per shard instead of collapsing into one anonymous
        series.  Families that already carry ``label`` fold unchanged
        (a worker re-exporting an already-federated view).
        """
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
        self._merge_snapshot(snapshot, label, str(value))

    def _merge_snapshot(self, snapshot: Mapping, label: str | None, value) -> None:
        for m in snapshot.get("metrics", ()):
            cls = _KINDS.get(m.get("kind"))
            if cls is None:
                raise ValueError(f"unknown metric kind in snapshot: {m.get('kind')!r}")
            labelnames = tuple(m.get("labelnames", ()))
            extend = label is not None and label not in labelnames
            metric = self._get_or_create(
                cls,
                m["name"],
                m.get("help", ""),
                labelnames + (label,) if extend else labelnames,
            )
            for entry in m.get("series", ()):
                key = tuple(entry["labels"])
                if extend:
                    key = key + (value,)
                if "histogram" in entry:
                    metric._merge_key(key, LatencyHistogram.from_dict(entry["histogram"]))
                else:
                    metric._inc_key(key, entry["value"])

    # -- exposition -------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4.

        Every registered family renders its ``# HELP`` / ``# TYPE``
        header even with no samples yet, so a scrape can verify that the
        full catalog is present (the CI exposition gate does exactly
        that).
        """
        self._run_collectors()
        lines: list[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in metric.series():
                if isinstance(value, LatencyHistogram):
                    lines.extend(self._render_histogram(metric, key, value))
                else:
                    lines.append(
                        f"{metric.name}{self._label_str(metric.labelnames, key)} "
                        f"{_format_number(value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_str(names: tuple, values: tuple, extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(names, values)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    @classmethod
    def _render_histogram(
        cls, metric: Metric, key: tuple, hist: LatencyHistogram
    ) -> Iterable[str]:
        """Cumulative ``_bucket``/``_sum``/``_count`` samples for one series.

        The geometric buckets are sparse, so only non-empty buckets (plus
        ``+Inf``) are emitted; ``le`` is each bucket's upper bound
        ``min_value * growth**i``.
        """
        cumulative = 0
        for index in sorted(hist._buckets):
            cumulative += hist._buckets[index]
            le = hist.min_latency * hist.growth**index
            bucket_labels = cls._label_str(metric.labelnames, key, f'le="{le:.9g}"')
            yield f"{metric.name}_bucket{bucket_labels} {cumulative}"
        inf_labels = cls._label_str(metric.labelnames, key, 'le="+Inf"')
        yield f"{metric.name}_bucket{inf_labels} {hist.count}"
        labels = cls._label_str(metric.labelnames, key)
        yield f"{metric.name}_sum{labels} {_format_number(hist.total)}"
        yield f"{metric.name}_count{labels} {hist.count}"

    def __repr__(self) -> str:
        return f"MetricRegistry({len(self._metrics)} metrics)"


# ----------------------------------------------------------------------
# exposition-format validation (tests and the CI scrape gate)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse (and thereby validate) Prometheus text exposition.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Histogram component
    samples (``_bucket``/``_sum``/``_count``) attach to their family.
    Raises :class:`ValueError` with the offending line on any malformed
    input — the CI gate scrapes a live server through this.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            _, keyword, name = parts[:3]
            rest = parts[3] if len(parts) > 3 else ""
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            family = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            if keyword == "TYPE":
                if rest not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: unknown type {rest!r}")
                family["type"] = rest
                typed[name] = rest
            else:
                family["help"] = rest
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {raw_value!r}") from None
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed = pair.end()
            remainder = raw_labels[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and typed.get(stem) == "histogram":
                base = stem
                break
        family = families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []}
        )
        family["samples"].append((name, labels, value))
    return families
