"""A sampled slow-query log for the serving engine.

Percentile histograms say *that* the tail is slow; the slow-query log
says *which queries* live in it.  Every request whose latency crosses
the threshold is counted, and every ``sample``-th such request is kept
(with its request shape and attributes) in a bounded ring — sampling is
deterministic (a counter, not a coin flip) so tests and replays are
reproducible, and the ring bounds memory no matter how bad the tail
gets.  The engine exposes the entries through ``GET /slowlog`` and the
count through the ``repro_slow_queries_total`` counter.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class SlowQueryLog:
    """Bounded ring of the slowest requests, threshold-gated and sampled.

    >>> log = SlowQueryLog(threshold=0.01, capacity=8)
    >>> log.record(0.5, {"op": "slice"}, op="slice")
    True
    >>> log.record(0.001, {"op": "point"}, op="point")
    False
    >>> len(log.entries())
    1
    """

    def __init__(
        self, threshold: float = 0.1, capacity: int = 128, sample: int = 1
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if sample < 1:
            raise ValueError("sample must be at least 1 (1 = keep every slow query)")
        self.threshold = threshold
        self.capacity = capacity
        self.sample = sample
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._seen = 0

    def record(self, duration: float, request, **attributes: object) -> bool:
        """Consider one finished request; True when it counted as slow.

        Only every ``sample``-th slow request is retained in the ring
        (all of them count toward the return value and the caller's
        counter).
        """
        if duration < self.threshold:
            return False
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self.sample == 0:
                self._entries.append(
                    {
                        "time": time.time(),
                        "duration_s": duration,
                        # Copied here (only for retained entries) so the
                        # entry stays stable if the caller reuses dicts.
                        "request": dict(request) if isinstance(request, dict) else request,
                        **attributes,
                    }
                )
        return True

    @property
    def seen(self) -> int:
        """Slow queries observed (including sampled-out ones)."""
        return self._seen

    def entries(self) -> list[dict]:
        """Retained entries, oldest first (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._seen = 0

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(>{self.threshold * 1000:g}ms, "
            f"{len(self._entries)}/{self.capacity} kept, {self._seen} seen)"
        )
