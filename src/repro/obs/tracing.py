"""Hierarchical tracing: spans, a bounded buffer, JSON/Chrome exporters.

A :class:`Span` is a context manager around one unit of work — a cube
build phase, a served request, a per-worker partition build.  Spans
carry a trace id (shared by everything under one root), a span id, the
parent's span id, a wall-clock start (``time.time``, so spans from
different processes on one machine line up) and a ``perf_counter``-based
duration, plus free-form attributes.  Finished spans land in a bounded
in-memory :class:`TraceBuffer`; nothing is written or shipped unless a
caller exports — ``GET /trace`` on the HTTP server returns the recent
spans as JSON, ``repro cube --trace-out`` writes the Chrome trace-event
form that ``chrome://tracing`` and Perfetto open directly.

Parenting is implicit: each thread keeps a stack of open spans, so
``tracer.span("traverse")`` under an open ``range_cubing`` span becomes
its child with no plumbing.  Work that ran elsewhere (a process-pool
worker) reports plain timing dicts back, and the parent *synthesizes*
child spans from them with :meth:`Tracer.record_span` — span recording
never crosses a pickle boundary.

Tracing honors the global kill switch (:func:`repro.obs.set_enabled`):
when disabled, :meth:`Tracer.span` hands out a shared no-op span and
records nothing, so instrumented code needs no conditionals.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Mapping


class _ObsState:
    """The process-wide on/off switch, read as one attribute on hot paths."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


#: Shared by the tracer and the instrumented hot paths (serving checks it
#: once per request before paying for any span or metric work).
OBS_STATE = _ObsState()


class Span:
    """One timed unit of work; records itself into the buffer on exit."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "duration",
        "attributes",
        "thread_id",
        "_tracer",
        "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = 0.0
        self.duration = 0.0
        self.thread_id = 0
        self._start_perf = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (JSON-able values keep exporters happy)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self.thread_id = threading.get_ident()
        self._tracer._push(self)
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "thread": self.thread_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms)"


class _NoopSpan:
    """Handed out when tracing is disabled; absorbs the span protocol."""

    __slots__ = ()
    name = trace_id = span_id = parent_id = ""
    start_wall = duration = 0.0
    attributes: dict = {}

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceBuffer:
    """The most recent ``capacity`` finished spans, oldest first."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, limit: int | None = None) -> list[Span]:
        """A snapshot, oldest first; ``limit`` keeps only the newest N."""
        with self._lock:
            out = list(self._spans)
        return out if limit is None or limit >= len(out) else out[-limit:]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_json(self, limit: int | None = None) -> list[dict]:
        """Recent spans as plain dicts (the ``GET /trace`` body)."""
        return [span.to_dict() for span in self.spans(limit)]

    def export_chrome(self, limit: int | None = None) -> dict:
        """Chrome trace-event JSON (open in chrome://tracing or Perfetto).

        Spans become complete (``"ph": "X"``) events on a wall-clock
        microsecond timebase, one track per thread.
        """
        events = []
        for span in self.spans(limit):
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_wall * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": span.thread_id,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attributes,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def __repr__(self) -> str:
        return f"TraceBuffer({len(self._spans)}/{self.capacity} spans)"


class Tracer:
    """Creates spans, tracks the per-thread open-span stack, owns a buffer."""

    def __init__(self, capacity: int = 4096) -> None:
        self.buffer = TraceBuffer(capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)
        # Trace ids are a per-process random prefix plus a counter:
        # globally unique enough to correlate multi-process traces, far
        # cheaper than a uuid4 per root span (every served request roots
        # its own trace, so this sits on the hot path).
        self._trace_prefix = os.urandom(4).hex()
        self._trace_ids = itertools.count(1)

    # -- the per-thread stack --------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it and everything above
            del stack[stack.index(span) :]
        self.buffer.add(span)

    # -- span creation ---------------------------------------------------

    def _next_span_id(self) -> str:
        return f"{next(self._ids):012x}"

    def _next_trace_id(self) -> str:
        return f"{self._trace_prefix}{next(self._trace_ids):08x}"

    def span(self, name: str, **attributes: object) -> Span | _NoopSpan:
        """Open a child of this thread's current span (or a new root).

        Use as a context manager::

            with tracer.span("build", rows=table.n_rows) as sp:
                ...
                sp.set_attribute("trie_nodes", trie.n_nodes())
        """
        if not OBS_STATE.enabled:
            return NOOP_SPAN
        parent = self.current()
        if parent is None:
            trace_id = self._next_trace_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(self, name, trace_id, self._next_span_id(), parent_id, attributes)

    def record_span(
        self,
        name: str,
        *,
        start_wall: float,
        duration: float,
        attributes: Mapping | None = None,
        parent: Span | _NoopSpan | None = None,
    ) -> None:
        """Synthesize an already-finished span directly into the buffer.

        This is how work measured elsewhere becomes part of the trace: a
        process-pool worker returns ``{start_wall, duration, ...}`` and
        the parent records it as a child of its own stage span; the bulk
        builder's sort/group/aggregate phase seconds become sequential
        children of the build span.  ``parent=None`` parents under this
        thread's current span.
        """
        if not OBS_STATE.enabled:
            return
        if parent is None or isinstance(parent, _NoopSpan):
            parent = self.current()
        if parent is None:
            trace_id, parent_id = self._next_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            self,
            name,
            trace_id,
            self._next_span_id(),
            parent_id,
            dict(attributes or {}),
        )
        span.start_wall = start_wall
        span.duration = duration
        span.thread_id = threading.get_ident()
        self.buffer.add(span)

    # -- export convenience ----------------------------------------------

    def export_chrome_file(self, path: str, limit: int | None = None) -> int:
        """Write the buffer as a Chrome trace JSON file; returns #events."""
        trace = self.buffer.export_chrome(limit)
        with open(path, "w") as fh:
            json.dump(trace, fh, indent=1, default=str)
            fh.write("\n")
        return len(trace["traceEvents"])

    def __repr__(self) -> str:
        return f"Tracer({self.buffer!r})"
