"""Hierarchical tracing: spans, a bounded buffer, JSON/Chrome exporters.

A :class:`Span` is a context manager around one unit of work — a cube
build phase, a served request, a per-worker partition build.  Spans
carry a trace id (shared by everything under one root), a span id, the
parent's span id, a wall-clock start (``time.time``, so spans from
different processes on one machine line up) and a ``perf_counter``-based
duration, plus free-form attributes.  Finished spans land in a bounded
in-memory :class:`TraceBuffer`; nothing is written or shipped unless a
caller exports — ``GET /trace`` on the HTTP server returns the recent
spans as JSON, ``repro cube --trace-out`` writes the Chrome trace-event
form that ``chrome://tracing`` and Perfetto open directly.

Parenting is implicit: each thread keeps a stack of open spans, so
``tracer.span("traverse")`` under an open ``range_cubing`` span becomes
its child with no plumbing.  Work that ran elsewhere (a process-pool
worker) reports plain timing dicts back, and the parent *synthesizes*
child spans from them with :meth:`Tracer.record_span` — span recording
never crosses a pickle boundary.

Tracing honors the global kill switch (:func:`repro.obs.set_enabled`):
when disabled, :meth:`Tracer.span` hands out a shared no-op span and
records nothing, so instrumented code needs no conditionals.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from collections import deque
from typing import Iterable, Mapping


class _ObsState:
    """The process-wide on/off switch, read as one attribute on hot paths."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


#: Shared by the tracer and the instrumented hot paths (serving checks it
#: once per request before paying for any span or metric work).
OBS_STATE = _ObsState()


_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")
_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


class TraceContext:
    """The propagated identity of a trace: W3C trace-context ids.

    A ``TraceContext`` names one remote parent span — a 32-hex-digit
    trace id shared by every span in the request tree and the 16-hex
    span id of the caller's span.  It crosses process boundaries two
    ways: as a ``traceparent`` HTTP header (``00-<trace>-<span>-01``,
    the W3C trace-context wire form) and as the optional
    ``trace_context`` field of the serve wire protocol.  A span opened
    with ``tracer.span(name, remote_context=ctx)`` joins the remote
    trace instead of rooting a new one, which is how one request's tree
    spans the router and its shard workers.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        if not _TRACE_ID_RE.match(trace_id) or int(trace_id, 16) == 0:
            raise ValueError(f"invalid trace id {trace_id!r}")
        if not _SPAN_ID_RE.match(span_id) or int(span_id, 16) == 0:
            raise ValueError(f"invalid span id {span_id!r}")
        self.trace_id = trace_id
        self.span_id = span_id

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; None when absent or malformed.

        Malformed headers are dropped, not rejected — a bad upstream
        tracer must never fail the request it decorates.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if not match or match.group("version") == "ff":
            return None
        try:
            return cls(match.group("trace_id"), match.group("span_id"))
        except ValueError:
            return None

    def to_json(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_json(cls, data: Mapping) -> "TraceContext":
        return cls(str(data["trace_id"]), str(data["span_id"]))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


class Span:
    """One timed unit of work; records itself into the buffer on exit."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "duration",
        "attributes",
        "thread_id",
        "_tracer",
        "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = 0.0
        self.duration = 0.0
        self.thread_id = 0
        self._start_perf = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (JSON-able values keep exporters happy)."""
        self.attributes[key] = value

    def context(self) -> TraceContext:
        """This span's identity as a propagatable :class:`TraceContext`."""
        return TraceContext(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self.thread_id = threading.get_ident()
        self._tracer._push(self)
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "thread": self.thread_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms)"


class _NoopSpan:
    """Handed out when tracing is disabled; absorbs the span protocol."""

    __slots__ = ()
    name = trace_id = span_id = parent_id = ""
    start_wall = duration = 0.0
    attributes: dict = {}

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceBuffer:
    """The most recent ``capacity`` finished spans, oldest first."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, limit: int | None = None) -> list[Span]:
        """A snapshot, oldest first; ``limit`` keeps only the newest N."""
        with self._lock:
            out = list(self._spans)
        return out if limit is None or limit >= len(out) else out[-limit:]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_json(self, limit: int | None = None) -> list[dict]:
        """Recent spans as plain dicts (the ``GET /trace`` body)."""
        return [span.to_dict() for span in self.spans(limit)]

    def export_chrome(self, limit: int | None = None) -> dict:
        """Chrome trace-event JSON (open in chrome://tracing or Perfetto).

        Spans become complete (``"ph": "X"``) events on a wall-clock
        microsecond timebase, one track per thread.
        """
        events = []
        for span in self.spans(limit):
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_wall * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": span.thread_id,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attributes,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def __repr__(self) -> str:
        return f"TraceBuffer({len(self._spans)}/{self.capacity} spans)"


class Tracer:
    """Creates spans, tracks the per-thread open-span stack, owns a buffer."""

    def __init__(self, capacity: int = 4096) -> None:
        self.buffer = TraceBuffer(capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)
        # W3C-width ids (32-hex trace, 16-hex span), each a per-process
        # random prefix plus a counter: globally unique enough to
        # correlate multi-process traces, far cheaper than a uuid4 per
        # root span (every served request roots its own trace, so this
        # sits on the hot path).
        self._trace_prefix = os.urandom(12).hex()
        self._span_prefix = os.urandom(3).hex()
        self._trace_ids = itertools.count(1)

    # -- the per-thread stack --------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it and everything above
            del stack[stack.index(span) :]
        self.buffer.add(span)

    # -- span creation ---------------------------------------------------

    def _next_span_id(self) -> str:
        return f"{self._span_prefix}{next(self._ids):010x}"

    def _next_trace_id(self) -> str:
        return f"{self._trace_prefix}{next(self._trace_ids):08x}"

    def current_context(self) -> TraceContext | None:
        """This thread's innermost open span as a propagatable context."""
        span = self.current()
        return span.context() if span is not None else None

    def span(
        self,
        name: str,
        *,
        remote_context: TraceContext | None = None,
        **attributes: object,
    ) -> Span | _NoopSpan:
        """Open a child of this thread's current span (or a new root).

        Use as a context manager::

            with tracer.span("build", rows=table.n_rows) as sp:
                ...
                sp.set_attribute("trie_nodes", trie.n_nodes())

        ``remote_context`` (a :class:`TraceContext` from a ``traceparent``
        header or the wire protocol's ``trace_context`` field) grafts the
        span into a trace started in another process: with no local
        parent open, the new span joins the remote trace id under the
        remote span instead of rooting a fresh trace.  An open local
        parent always wins — remote context only seeds the root of this
        process's subtree.
        """
        if not OBS_STATE.enabled:
            return NOOP_SPAN
        parent = self.current()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif remote_context is not None:
            trace_id = remote_context.trace_id
            parent_id = remote_context.span_id
        else:
            trace_id = self._next_trace_id()
            parent_id = None
        return Span(self, name, trace_id, self._next_span_id(), parent_id, attributes)

    def record_span(
        self,
        name: str,
        *,
        start_wall: float,
        duration: float,
        attributes: Mapping | None = None,
        parent: Span | _NoopSpan | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        thread_id: int | None = None,
    ) -> None:
        """Synthesize an already-finished span directly into the buffer.

        This is how work measured elsewhere becomes part of the trace: a
        process-pool worker returns ``{start_wall, duration, ...}`` and
        the parent records it as a child of its own stage span; the bulk
        builder's sort/group/aggregate phase seconds become sequential
        children of the build span.  ``parent=None`` parents under this
        thread's current span.

        Spans that already carry identity — a shard worker's spans
        shipped back over the pipe — pass their original ``trace_id`` /
        ``span_id`` / ``parent_id`` (and ``thread_id``) explicitly, so
        cross-worker folding preserves the ids and the stitched tree
        survives every exporter, Chrome trace-event form included.
        """
        if not OBS_STATE.enabled:
            return
        if trace_id is None:
            # No identity supplied: infer parentage locally.  A span that
            # names its trace_id owns its parent_id too (None = a root).
            anchor = parent
            if anchor is None or isinstance(anchor, _NoopSpan):
                anchor = self.current()
            if anchor is None:
                trace_id, parent_id = self._next_trace_id(), None
            else:
                trace_id, parent_id = anchor.trace_id, anchor.span_id
        span = Span(
            self,
            name,
            trace_id,
            span_id if span_id is not None else self._next_span_id(),
            parent_id,
            dict(attributes or {}),
        )
        span.start_wall = start_wall
        span.duration = duration
        span.thread_id = thread_id if thread_id is not None else threading.get_ident()
        self.buffer.add(span)

    def fold(self, span_dicts: Iterable[Mapping]) -> int:
        """Stitch spans exported elsewhere (``Span.to_dict`` form) in.

        The ids travel verbatim — a worker span whose root parented
        under the router's scatter context lands in this buffer as the
        same node of the same trace tree.  Returns the number folded.
        """
        count = 0
        for data in span_dicts:
            self.record_span(
                data["name"],
                start_wall=float(data.get("start", 0.0)),
                duration=float(data.get("duration", 0.0)),
                attributes=data.get("attributes") or {},
                trace_id=data.get("trace_id"),
                span_id=data.get("span_id"),
                parent_id=data.get("parent_id"),
                thread_id=data.get("thread"),
            )
            count += 1
        return count

    # -- export convenience ----------------------------------------------

    def export_chrome_file(self, path: str, limit: int | None = None) -> int:
        """Write the buffer as a Chrome trace JSON file; returns #events."""
        trace = self.buffer.export_chrome(limit)
        with open(path, "w") as fh:
            json.dump(trace, fh, indent=1, default=str)
            fh.write("\n")
        return len(trace["traceEvents"])

    def __repr__(self) -> str:
        return f"Tracer({self.buffer!r})"
