"""``repro.obs`` — the unified telemetry subsystem.

Before this package, every layer reported itself differently: the cubing
paths returned ad-hoc stats dicts, the serving engine kept private cache
counters, and latency histograms lived inside the workload driver.
``repro.obs`` is the instrumentation spine they all share — the numbers
every performance or scaling change is judged by flow through here.

Three pieces, all dependency-free:

* :mod:`~repro.obs.metrics` — a process-wide :class:`MetricRegistry` of
  named counters, gauges and geometric-bucket histograms with label
  support, thread-safe recording, ``to_dict``/``merge`` for cross-worker
  folding, and a Prometheus text renderer (``GET /metrics``);
* :mod:`~repro.obs.tracing` — hierarchical :class:`Span`\\ s (trace /
  span / parent ids, wall + perf-counter timing, attributes) recorded
  into a bounded :class:`TraceBuffer` with JSON (``GET /trace``) and
  Chrome trace-event exporters (``repro cube --trace-out``, opens in
  Perfetto);
* :mod:`~repro.obs.slowlog` — a sampled, bounded :class:`SlowQueryLog`
  the serving engine feeds (``GET /slowlog``).

The process-wide singletons are :func:`get_registry` and
:func:`get_tracer`; instrumented modules create their metric handles at
import time (registration is get-or-create, hence idempotent) and open
spans around their phases.  :func:`set_enabled` is the global kill
switch: disabled, spans become shared no-ops and the serving engine
skips its per-request metric block, which is how the benchmarks measure
instrumentation overhead honestly (``bench_bulk_build.py`` enforces a
<= 5% ceiling).

See ``docs/observability.md`` for the metric name catalog, how to
scrape ``/metrics``, and how to open a trace in Perfetto.
"""

from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    BoundSeries,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    parse_prometheus_text,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    NOOP_SPAN,
    OBS_STATE,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
)

#: The process-wide registry every instrumented module records into.
REGISTRY = MetricRegistry()

#: The process-wide tracer (one bounded buffer of recent spans).
TRACER = Tracer()


def get_registry() -> MetricRegistry:
    """The process-wide metric registry."""
    return REGISTRY


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return TRACER


def is_enabled() -> bool:
    """Whether spans and per-request metrics are being recorded."""
    return OBS_STATE.enabled


def set_enabled(enabled: bool) -> None:
    """Turn instrumentation on or off process-wide.

    Disabled, :meth:`Tracer.span` returns a shared no-op span and the
    serving request path skips its metric block; metric *registration*
    and direct recording calls still work (the registry itself is never
    switched off).
    """
    OBS_STATE.enabled = bool(enabled)


def reset() -> None:
    """Clear all recorded metric values and buffered spans (tests)."""
    REGISTRY.reset()
    TRACER.buffer.clear()


__all__ = [
    "BoundSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "NOOP_SPAN",
    "OBS_STATE",
    "PROMETHEUS_CONTENT_TYPE",
    "REGISTRY",
    "SlowQueryLog",
    "Span",
    "TRACER",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "parse_prometheus_text",
    "reset",
    "set_enabled",
]
