"""Backwards-compatibility shims for the unified algorithm signatures.

Every cube-algorithm entrypoint now takes its tuning parameters as
keyword-only arguments under one naming scheme — ``aggregator``,
``dim_order``, ``min_support`` — so the registry
(:mod:`repro.baselines.registry`) can drive any of them interchangeably.
Older call styles (positional tuning arguments, the pre-rename ``order=``
keyword) keep working through :func:`legacy_call_shim`, which folds them
into the new keywords and emits a :class:`DeprecationWarning` pointing at
the replacement.  Each (function, call style) pair warns **once per
process** — legacy callers in a hot loop should not drown real warnings —
and :func:`reset_legacy_warnings` re-arms them (tests use this).
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Callable

#: Old keyword name -> new keyword name.
RENAMED_KEYWORDS = {"order": "dim_order"}

#: (function name, call style) pairs that already warned this process.
_WARNED: set[tuple[str, str]] = set()


def reset_legacy_warnings() -> None:
    """Re-arm the once-per-process deprecation warnings (for tests)."""
    _WARNED.clear()


def _warn_once(key: tuple[str, str], message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def legacy_call_shim(*old_positional: str) -> Callable:
    """Wrap a keyword-only entrypoint so legacy call styles still work.

    ``old_positional`` lists, **in the old positional order and under the
    new names**, the tuning parameters the function used to accept
    positionally after the table.  The wrapped function must take the
    table as its only positional parameter and everything else
    keyword-only.

    >>> @legacy_call_shim("aggregator", "dim_order", "min_support")
    ... def cube(table, *, aggregator=None, dim_order=None, min_support=1):
    ...     return (aggregator, dim_order, min_support)
    >>> import warnings
    >>> with warnings.catch_warnings(record=True):
    ...     warnings.simplefilter("always")
    ...     cube("t", None, (1, 0))       # old positional style
    (None, (1, 0), 1)
    """

    def decorate(func: Callable) -> Callable:
        keyword_only = {
            name
            for name, param in inspect.signature(func).parameters.items()
            if param.kind is inspect.Parameter.KEYWORD_ONLY
        }

        @functools.wraps(func)
        def wrapper(table, *legacy_args, **kwargs):
            if legacy_args:
                if len(legacy_args) > len(old_positional):
                    raise TypeError(
                        f"{func.__name__}() takes 1 positional argument but "
                        f"{1 + len(legacy_args)} were given"
                    )
                _warn_once(
                    (func.__name__, "positional"),
                    f"{func.__name__}(): passing tuning parameters positionally "
                    f"is deprecated; use keyword arguments "
                    f"({', '.join(old_positional[: len(legacy_args)])})",
                )
                for name, value in zip(old_positional, legacy_args):
                    if name in kwargs:
                        raise TypeError(
                            f"{func.__name__}() got multiple values for argument {name!r}"
                        )
                    kwargs[name] = value
            for old_name, new_name in RENAMED_KEYWORDS.items():
                if old_name in kwargs and old_name not in keyword_only:
                    if new_name in kwargs:
                        raise TypeError(
                            f"{func.__name__}() got values for both {old_name!r} "
                            f"and its replacement {new_name!r}"
                        )
                    _warn_once(
                        (func.__name__, f"renamed:{old_name}"),
                        f"{func.__name__}(): keyword {old_name!r} was renamed to "
                        f"{new_name!r}",
                    )
                    kwargs[new_name] = kwargs.pop(old_name)
            return func(table, **kwargs)

        return wrapper

    return decorate
