"""The condensed cube (Wang, Feng, Lu & Yu, ICDE 2002) — BST condensation.

A *base single tuple* (BST) is a tuple that is alone in its group-by
partition: every further specialization of that group-by is then also a
single-tuple cell with the very same aggregate — the tuple's own measures.
The condensed cube stores one entry for the whole family instead of
``2**k`` cells.

The computation extends BUC (exactly as Wang et al. describe): during the
bottom-up partitioning, as soon as a partition contains a single base
tuple, a condensed entry is emitted covering the current cell and every
specialization over the not-yet-partitioned dimensions, and the recursion
stops there.

Relation to the Range-CUBE paper (its Related Work, item 2): a condensed
entry is a special case of a range — one whose marked dimensions are "all
remaining dimensions of one base tuple".  The range trie generalizes the
trick to value sets shared by *groups* of tuples, which is why the range
cube compresses further on correlated data; the ablation benchmark
``bench_ablation_compression`` measures exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell, apex_cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


@dataclass(frozen=True)
class CondensedEntry:
    """One BST entry: a prefix cell plus the lone tuple's values.

    Covers every cell obtained from ``cell`` by additionally binding any
    subset of the dimensions ``>= free_from`` to ``row``'s values; all of
    them aggregate exactly the one base tuple, whose state is ``state``.
    """

    cell: Cell
    free_from: int
    row: tuple
    state: tuple

    @property
    def n_cells(self) -> int:
        return 1 << (len(self.row) - self.free_from)

    def cells(self) -> Iterator[Cell]:
        free = range(self.free_from, len(self.row))
        base = list(self.cell)
        for subset in range(1 << len(free)):
            cell = base[:]
            for j, dim in enumerate(free):
                if subset >> j & 1:
                    cell[dim] = self.row[dim]
            yield tuple(cell)


class CondensedCube:
    """Plain cells plus BST entries; together a partition of the full cube."""

    def __init__(
        self,
        n_dims: int,
        aggregator: Aggregator,
        cells: dict[Cell, tuple],
        entries: list[CondensedEntry],
    ) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.cells = cells
        self.entries = entries

    @property
    def n_tuples(self) -> int:
        """Stored tuples — the condensed cube's size metric."""
        return len(self.cells) + len(self.entries)

    @property
    def n_cells(self) -> int:
        """Cells represented (equals the full cube size)."""
        return len(self.cells) + sum(e.n_cells for e in self.entries)

    def expand(self) -> Iterator[tuple[Cell, tuple]]:
        yield from self.cells.items()
        for entry in self.entries:
            for cell in entry.cells():
                yield cell, entry.state

    def to_materialized(self) -> MaterializedCube:
        return MaterializedCube(self.n_dims, self.aggregator, dict(self.expand()))


@legacy_call_shim("aggregator", "dim_order")
def condensed_cube(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
) -> CondensedCube:
    """Compute the BST-condensed cube of ``table`` (BUC + BST detection).

    Note: unlike the other algorithms no ``dim_order`` remapping is applied
    to the *free* dimensions of the entries (they are positional); when
    ``dim_order`` is given the result is expressed in the permuted
    dimension order and ``table.reordered(dim_order)`` is the matching
    base table.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    order = dim_order
    working = table if order is None else table.reordered(order)
    n = working.n_dims
    codes = working.dim_codes
    rows = working.dim_rows()
    states = [agg.state_from_row(m) for m in working.measure_rows()]
    merge = agg.merge

    def aggregate(indexes: np.ndarray):
        it = iter(indexes.tolist())
        total = states[next(it)]
        for i in it:
            total = merge(total, states[i])
        return total

    cells: dict[Cell, tuple] = {}
    entries: list[CondensedEntry] = []
    bindings: dict[int, int] = {}

    def recurse(indexes: np.ndarray, first_dim: int) -> None:
        for d in range(first_dim, n):
            column = codes[indexes, d]
            sort = np.argsort(column, kind="stable")
            sorted_idx = indexes[sort]
            sorted_col = column[sort]
            boundaries = np.flatnonzero(np.diff(sorted_col)) + 1
            start = 0
            for end in [*boundaries.tolist(), len(sorted_col)]:
                part = sorted_idx[start:end]
                value = int(sorted_col[start])
                start = end
                bindings[d] = value
                cell = tuple(bindings.get(i) for i in range(n))
                if len(part) == 1:
                    i = int(part[0])
                    entries.append(CondensedEntry(cell, d + 1, rows[i], states[i]))
                else:
                    cells[cell] = aggregate(part)
                    recurse(part, d + 1)
                del bindings[d]

    if working.n_rows == 1:
        entries.append(CondensedEntry(apex_cell(n), 0, rows[0], states[0]))
    elif working.n_rows:
        cells[apex_cell(n)] = aggregate(np.arange(working.n_rows))
        recurse(np.arange(working.n_rows), 0)
    return CondensedCube(n, agg, cells, entries)
