"""Dwarf (Sismanis, Deligiannakis, Roussopoulos & Kotidis, SIGMOD 2002).

The Range-CUBE paper cites Dwarf as the archetype of the
"compressed-output" cube family (its Figure 1 classification) and notes
that such index structures "can also be applied naturally to a range
cube".  This module implements the Dwarf structure itself: a layered DAG
with one level per dimension, where

* **prefix redundancy** is eliminated as in a trie — equal prefixes share
  the path; and
* **suffix coalescing** shares the entire sub-dwarf whenever two
  group-bys aggregate the *same set of tuples* (the dominant saving on
  sparse/correlated data: any sub-space reached by a single tuple's
  prefix collapses to one shared tail).

Each node holds one cell per distinct value of its dimension plus the
``ALL`` cell (the paper's ``*``); leaf-level cells store aggregate states.
A point query walks one cell per dimension — following the value cell
where the query binds the dimension and the ALL cell where it does not —
so every cube cell is answered in O(n) hops.

Construction here memoizes sub-dwarfs by (level, covered tuple set),
which yields *full* suffix coalescing (the original detects the dominant
single-tuple case during its sorted-order construction; the memo
subsumes it).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cube.cell import Cell
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


class DwarfNode:
    """One node: value cells plus the ALL cell, at one dimension level.

    At interior levels cells hold child nodes; at the last level they
    hold aggregate states.
    """

    __slots__ = ("level", "cells", "all_cell")

    def __init__(self, level: int) -> None:
        self.level = level
        self.cells: dict[int, object] = {}
        self.all_cell: object = None


class Dwarf:
    """The full data cube stored as a prefix-shared, suffix-coalesced DAG."""

    def __init__(self, n_dims: int, aggregator: Aggregator, root: DwarfNode | None) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = root

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, table: BaseTable, aggregator: Aggregator | None = None) -> "Dwarf":
        agg = aggregator or default_aggregator(table.n_measures)
        n = table.n_dims
        if n == 0 or table.n_rows == 0:
            return cls(n, agg, None)
        codes = table.dim_codes
        states = [agg.state_from_row(m) for m in table.measure_rows()]
        merge = agg.merge
        memo: dict[tuple[int, bytes], DwarfNode] = {}

        def aggregate(rows: np.ndarray):
            it = iter(rows.tolist())
            total = states[next(it)]
            for i in it:
                total = merge(total, states[i])
            return total

        def build_node(level: int, rows: np.ndarray) -> DwarfNode:
            key = (level, rows.tobytes())
            cached = memo.get(key)
            if cached is not None:
                return cached
            node = DwarfNode(level)
            memo[key] = node
            column = codes[rows, level]
            order = np.argsort(column, kind="stable")
            sorted_rows = rows[order]
            sorted_col = column[order]
            boundaries = np.flatnonzero(np.diff(sorted_col)) + 1
            groups: list[tuple[int, np.ndarray]] = []
            start = 0
            for end in [*boundaries.tolist(), len(sorted_col)]:
                groups.append((int(sorted_col[start]), np.sort(sorted_rows[start:end])))
                start = end
            if level == n - 1:
                for value, group in groups:
                    node.cells[value] = aggregate(group)
                node.all_cell = aggregate(rows)
            else:
                for value, group in groups:
                    node.cells[value] = build_node(level + 1, group)
                if len(groups) == 1:
                    # suffix coalescing's dominant case: one value means
                    # the ALL cell aggregates the very same tuples.
                    node.all_cell = node.cells[groups[0][0]]
                else:
                    node.all_cell = build_node(level + 1, np.sort(rows))
            return node

        all_rows = np.arange(table.n_rows)
        return cls(n, agg, build_node(0, all_rows))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def lookup(self, cell: Cell) -> tuple | None:
        """Aggregate state of ``cell`` in O(n_dims) hops; None if empty."""
        if len(cell) != self.n_dims:
            raise ValueError(f"query cell has {len(cell)} dims, dwarf has {self.n_dims}")
        if self.root is None:
            return None
        position: object = self.root
        for value in cell:
            node: DwarfNode = position  # type: ignore[assignment]
            if value is None:
                position = node.all_cell
            else:
                position = node.cells.get(value)
                if position is None:
                    return None
        return position  # the leaf-level cell content is the state

    def value(self, cell: Cell) -> dict[str, float] | None:
        state = self.lookup(cell)
        return None if state is None else self.aggregator.finalize(state)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[DwarfNode]:
        if self.root is None:
            return
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            if node.level < self.n_dims - 1:
                for child in node.cells.values():
                    stack.append(child)  # type: ignore[arg-type]
                if node.all_cell is not None:
                    stack.append(node.all_cell)  # type: ignore[arg-type]

    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def n_stored_cells(self) -> int:
        """Dwarf's size metric: value cells + ALL cells over distinct nodes."""
        return sum(len(node.cells) + 1 for node in self.iter_nodes())

    def coalesced_all_cells(self) -> int:
        """How many ALL cells were suffix-coalesced onto a value cell."""
        return sum(
            1
            for node in self.iter_nodes()
            if node.level < self.n_dims - 1
            and any(node.all_cell is child for child in node.cells.values())
        )
