"""Baseline cube-computation algorithms the paper measures against.

Every algorithm is implemented from its original publication:

* :mod:`repro.baselines.buc` — Bottom-Up Computation
  (Beyer & Ramakrishnan, SIGMOD 1999);
* :mod:`repro.baselines.htree` / :mod:`repro.baselines.hcubing` — the
  H-tree and H-Cubing (Han, Pei, Dong & Wang, SIGMOD 2001), the main
  comparator of the Range-CUBE paper;
* :mod:`repro.baselines.star_cubing` — star tree + star-cubing
  (Xin, Han, Li & Wah, VLDB 2003), the comparison the paper defers to
  future work;
* :mod:`repro.baselines.condensed` — the BST-condensed cube
  (Wang, Feng, Lu & Yu, ICDE 2002);
* :mod:`repro.baselines.quotient` — quotient-cube classes
  (Lakshmanan, Pei & Han, VLDB 2002), the optimal lossless coalescing
  the paper compares its compression against;
* :mod:`repro.baselines.multiway` — MultiWay array cubing
  (Zhao, Deshpande & Naughton, SIGMOD 1997), the "Array Cube" of the
  paper's Figure 1 classification;
* :mod:`repro.baselines.dwarf` — the Dwarf cube store
  (Sismanis et al., SIGMOD 2002), the compressed-output archetype the
  paper says composes naturally with range cubes;
* :mod:`repro.baselines.qc_tree` — the QC-tree index over quotient
  classes (Lakshmanan, Pei & Zhao, SIGMOD 2003);
* :mod:`repro.baselines.c_cubing` — C-Cubing closed cubes via the
  aggregation-based closedness measure (Xin, Shao, Han & Liu, 2006);
* :mod:`repro.baselines.shell_fragments` — shell-fragment minimal cubing
  with inverted tid-lists (Li, Han & Gonzalez, VLDB 2004).
"""

from repro.baselines.buc import buc
from repro.baselines.c_cubing import closed_cubing
from repro.baselines.condensed import CondensedCube, condensed_cube
from repro.baselines.dwarf import Dwarf
from repro.baselines.hcubing import h_cubing, h_cubing_detailed
from repro.baselines.htree import HTree
from repro.baselines.multiway import multiway
from repro.baselines.qc_tree import QCTree
from repro.baselines.quotient import QuotientCube, quotient_cube
from repro.baselines.registry import (
    CubeAlgorithm,
    available_algorithms,
    get_algorithm,
    register,
)
from repro.baselines.shell_fragments import ShellFragmentCube
from repro.baselines.star_cubing import StarTree, star_cubing

__all__ = [
    "CondensedCube",
    "CubeAlgorithm",
    "Dwarf",
    "HTree",
    "QCTree",
    "QuotientCube",
    "ShellFragmentCube",
    "StarTree",
    "available_algorithms",
    "buc",
    "closed_cubing",
    "condensed_cube",
    "get_algorithm",
    "h_cubing",
    "h_cubing_detailed",
    "multiway",
    "quotient_cube",
    "register",
    "star_cubing",
]
