"""Star-cubing (Xin, Han, Li & Wah, VLDB 2003).

The Range-CUBE paper could not compare against star-cubing ("to appear in
VLDB'03 ... we would like to include it in the near future"); this module
implements it so that comparison can finally be run.

Star-cubing organizes the input in a *star tree* — structurally an H-tree
without side links or header tables — and computes the cube by an
integrated top-down/bottom-up traversal that shares aggregation work: a
dimension is either *bound* to each child value in turn (descending into
the child subtree) or *collapsed* by merging all sibling subtrees into
one, after which the remaining dimensions are processed on the merged
tree.  Merged subtrees are computed once and reused for every cuboid that
excludes the collapsed dimension — the "simultaneous aggregation" that
also powers MultiWay and, in the Range-CUBE paper, the trie reduction.

For iceberg cubes the original's *star-table* reduction is applied while
building the tree: any value whose whole-table frequency misses the
threshold can never appear in a qualifying cell, so it is replaced by the
star value; star nodes aggregate into collapses but are never emitted,
and counts prune bound branches exactly as in the original.

Relative to Xin et al. we simplify the traversal bookkeeping (they
interleave the construction of the child cuboid trees with a single DFS
of the parent; we materialize each collapsed tree when its turn comes).
The sharing structure and the star/count pruning — the properties their
and the Range-CUBE experiments measure — are preserved.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell, apex_cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable

#: Code used for starred (iceberg-pruned) values inside the star tree.
STAR_CODE = -1


class StarNode:
    """One star-tree node: a value at one dimension level."""

    __slots__ = ("value", "children", "agg")

    def __init__(self, value: int, agg) -> None:
        self.value = value
        self.children: dict[int, StarNode] = {}
        self.agg = agg


class StarTree:
    """A prefix tree over dimension levels, without side links."""

    def __init__(self, n_dims: int, aggregator: Aggregator) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = StarNode(-2, None)

    @classmethod
    def build(
        cls,
        table: BaseTable,
        aggregator: Aggregator | None = None,
        min_support: int = 1,
    ) -> "StarTree":
        """Build the tree, applying the star-table reduction if iceberg."""
        agg = aggregator or default_aggregator(table.n_measures)
        tree = cls(table.n_dims, agg)
        star_maps = None
        if min_support > 1:
            star_maps = _star_tables(table, min_support)
        state_from_row = agg.state_from_row
        for row, measures in zip(table.dim_rows(), table.measure_rows()):
            if star_maps is not None:
                row = tuple(
                    v if v in keep else STAR_CODE for v, keep in zip(row, star_maps)
                )
            tree.insert(row, state_from_row(measures))
        return tree

    def insert(self, values: Sequence[int], state) -> None:
        merge = self.aggregator.merge
        node = self.root
        node.agg = state if node.agg is None else merge(node.agg, state)
        for value in values:
            child = node.children.get(value)
            if child is None:
                child = StarNode(value, state)
                node.children[value] = child
            else:
                child.agg = merge(child.agg, state)
            node = child

    def n_nodes(self) -> int:
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total


def _star_tables(table: BaseTable, min_support: int) -> list[set[int]]:
    """Per dimension, the values frequent enough to survive (the star table)."""
    keeps: list[set[int]] = []
    for d in range(table.n_dims):
        values, counts = np.unique(table.dim_column(d), return_counts=True)
        keeps.append({int(v) for v, c in zip(values, counts) if c >= min_support})
    return keeps


@legacy_call_shim("aggregator", "dim_order", "min_support")
def star_cubing(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> MaterializedCube:
    """Compute the (iceberg) cube of ``table`` by star-cubing."""
    agg = aggregator or default_aggregator(table.n_measures)
    order = dim_order
    working = table if order is None else table.reordered(order)
    n = working.n_dims
    tree = StarTree.build(working, agg, min_support)

    out: dict[Cell, tuple] = {}
    if tree.root.agg is not None and agg.count(tree.root.agg) >= min_support:
        out[apex_cell(n)] = tree.root.agg
    _traverse(tree.root, list(range(n)), {}, out, n, agg, min_support)

    if order is not None:
        remapped: dict[Cell, tuple] = {}
        for cell, state in out.items():
            mapped = [None] * n
            for new_dim, old_dim in enumerate(order):
                mapped[old_dim] = cell[new_dim]
            remapped[tuple(mapped)] = state
        out = remapped
    return MaterializedCube(table.n_dims, agg, out)


def _traverse(
    node: StarNode,
    dims: list[int],
    fixed: dict[int, int],
    out: dict[Cell, tuple],
    n: int,
    agg: Aggregator,
    min_support: int,
) -> None:
    """Bind-or-collapse recursion over the remaining ``dims`` of ``node``.

    ``node``'s children branch on ``dims[0]``.  Binding emits a cell per
    (frequent, non-star) value and recurses into its subtree; collapsing
    merges every sibling subtree — star nodes included, their tuples count
    toward coarser cells — and handles all cuboids without ``dims[0]``.
    """
    d = dims[0]
    rest = dims[1:]
    count = agg.count
    for value, child in node.children.items():
        if value == STAR_CODE or count(child.agg) < min_support:
            continue
        cell_fixed = dict(fixed)
        cell_fixed[d] = value
        out[tuple(cell_fixed.get(i) for i in range(n))] = child.agg
        if rest:
            _traverse(child, rest, cell_fixed, out, n, agg, min_support)
    if rest:
        merged = _collapse(node, agg)
        _traverse(merged, rest, fixed, out, n, agg, min_support)


def _collapse(node: StarNode, agg: Aggregator) -> StarNode:
    """Merge all child subtrees of ``node`` into one (drop their dimension).

    Non-destructive: fresh nodes are allocated level by level; single-child
    collapses share the untouched subtree directly.
    """
    merged = StarNode(-2, node.agg)
    children = list(node.children.values())
    if len(children) == 1:
        merged.children = children[0].children
        return merged
    merge = agg.merge
    for child in children:
        for value, grandchild in child.children.items():
            present = merged.children.get(value)
            if present is None:
                merged.children[value] = grandchild
            else:
                merged.children[value] = _merge_subtrees(present, grandchild, merge)
    return merged


def _merge_subtrees(a: StarNode, b: StarNode, merge) -> StarNode:
    """Union two same-value subtrees, summing aggregates."""
    result = StarNode(a.value, merge(a.agg, b.agg))
    result.children = dict(a.children)
    for value, child in b.children.items():
        present = result.children.get(value)
        result.children[value] = (
            child if present is None else _merge_subtrees(present, child, merge)
        )
    return result
