"""The QC-tree (Lakshmanan, Pei & Zhao, SIGMOD 2003) over quotient classes.

The Range-CUBE paper's related work notes that Lakshmanan et al. "index
the classes of cells using a QC-tree".  This module provides that index:
the upper bounds of all quotient-cube classes, stored in a prefix tree
over their ``(dimension, value)`` pairs (dimension-sorted), each class
node carrying the class aggregate.

Point lookup exploits two facts: (i) the class of a query cell ``q`` is
the unique closed cell whose bound pairs are a superset of ``q``'s with
the *maximum* tuple count (any closed superset covers a subset of ``q``'s
tuples; the closure covers exactly them), and (ii) paths are
dimension-sorted, so a branch whose next dimension exceeds the smallest
unmatched query dimension can never match and is pruned.  Dimensions
absent from ``q`` are free to appear along the path — those are exactly
the implied dimensions the closure added.

The QC-tree plays for quotient cubes the role
:class:`~repro.core.range_index.RangeCubeIndex` plays for range cubes;
both are exercised against each other in the integration tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.quotient import QuotientCube, quotient_cube
from repro.cube.cell import Cell
from repro.table.aggregates import Aggregator
from repro.table.base_table import BaseTable


class QCTreeNode:
    """One (dimension, value) pair on a path; ``state`` marks a class."""

    __slots__ = ("dim", "value", "children", "state")

    def __init__(self, dim: int, value: int) -> None:
        self.dim = dim
        self.value = value
        self.children: dict[tuple[int, int], QCTreeNode] = {}
        self.state: tuple | None = None


class QCTree:
    """Prefix tree over the dimension-sorted upper bounds of all classes."""

    def __init__(self, n_dims: int, aggregator: Aggregator) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = QCTreeNode(-1, -1)
        self.n_classes = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_quotient(cls, quotient: QuotientCube) -> "QCTree":
        tree = cls(quotient.n_dims, quotient.aggregator)
        for upper, state in quotient.classes.items():
            tree.insert(upper, state)
        return tree

    @classmethod
    def build(cls, table: BaseTable, aggregator: Aggregator | None = None) -> "QCTree":
        """Enumerate the quotient classes of ``table`` and index them."""
        return cls.from_quotient(quotient_cube(table, aggregator=aggregator))

    def insert(self, upper_bound: Cell, state: tuple) -> None:
        """Add one class, keyed by its (dimension-sorted) upper bound."""
        node = self.root
        for dim, value in enumerate(upper_bound):
            if value is None:
                continue
            key = (dim, value)
            child = node.children.get(key)
            if child is None:
                child = QCTreeNode(dim, value)
                node.children[key] = child
            node = child
        if node.state is None:
            self.n_classes += 1
        node.state = state

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def lookup(self, cell: Cell) -> tuple | None:
        """Aggregate state of ``cell``; None when the cell is empty."""
        found = self.class_of(cell)
        return None if found is None else found[1]

    def class_of(self, cell: Cell) -> tuple[Cell, tuple] | None:
        """The (upper bound, state) of the class containing ``cell``."""
        if len(cell) != self.n_dims:
            raise ValueError(f"query cell has {len(cell)} dims, tree has {self.n_dims}")
        pairs = [(d, v) for d, v in enumerate(cell) if v is not None]
        best: list = [None, -1, ()]  # state, count, path

        def search(node: QCTreeNode, index: int, path: list) -> None:
            if index == len(pairs) and node.state is not None:
                if node.state[0] > best[1]:
                    best[0], best[1], best[2] = node.state, node.state[0], tuple(path)
            for (dim, value), child in node.children.items():
                if index < len(pairs):
                    want_dim, want_value = pairs[index]
                    if dim > want_dim:
                        continue  # dimension-sorted paths cannot match later
                    if dim == want_dim:
                        if value == want_value:
                            path.append((dim, value))
                            search(child, index + 1, path)
                            path.pop()
                        continue
                # dim precedes the next wanted dimension (or nothing is
                # wanted): it is free in the query — an implied dimension.
                path.append((dim, value))
                search(child, index, path)
                path.pop()

        search(self.root, 0, [])
        if best[0] is None:
            return None
        upper = [None] * self.n_dims
        for dim, value in best[2]:
            upper[dim] = value
        return tuple(upper), best[0]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def n_nodes(self) -> int:
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def classes(self) -> Iterator[tuple[Cell, tuple]]:
        """Every (upper bound, state) stored in the tree."""

        def walk(node: QCTreeNode, path: list) -> Iterator:
            if node.state is not None:
                upper = [None] * self.n_dims
                for dim, value in path:
                    upper[dim] = value
                yield tuple(upper), node.state
            for (dim, value), child in node.children.items():
                path.append((dim, value))
                yield from walk(child, path)
                path.pop()

        yield from walk(self.root, [])
