"""MultiWay array cubing (Zhao, Deshpande & Naughton, SIGMOD 1997).

The "Array Cube" of the paper's Figure 1 classification and the origin of
the *simultaneous aggregation* idea that star-cubing (and, via trie
reduction, range cubing) inherit: load the facts into a dense
multidimensional array, then compute every cuboid by aggregating a
previously computed, minimally larger cuboid along one axis — each cell
of a parent cuboid is touched exactly once per child.

Array cubing is the dense-data specialist: its memory is the size of the
*dimension space*, independent of tuple count, so it shines exactly where
the range trie degenerates to an H-tree (the paper's 2–4-dimension dense
regime) and collapses where range cubing shines (high cardinality).  The
constructor therefore refuses spaces above ``max_cells`` rather than
silently swapping.

Aggregates must vectorize: COUNT and COUNT+SUM (the repository defaults)
are supported; richer aggregators raise ``ValueError``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell
from repro.cube.full_cube import MaterializedCube
from repro.cube.lattice import CuboidLattice
from repro.table.aggregates import (
    Aggregator,
    CountAggregator,
    SumCountAggregator,
    default_aggregator,
)
from repro.table.base_table import BaseTable

#: Refuse dimension spaces larger than this many cells (dense-array method).
DEFAULT_MAX_CELLS = 20_000_000


@legacy_call_shim("aggregator", "min_support", "max_cells")
def multiway(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    min_support: int = 1,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> MaterializedCube:
    """Compute the full (or iceberg-filtered) cube through dense arrays.

    Raises ``ValueError`` when the dimension space exceeds ``max_cells``
    or the aggregator is not COUNT / COUNT+SUM.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    if not isinstance(agg, (CountAggregator, SumCountAggregator)):
        raise ValueError("multiway supports CountAggregator and SumCountAggregator only")
    track_sum = isinstance(agg, SumCountAggregator)

    n = table.n_dims
    # Dense domain per dimension: codes index the array directly, so the
    # extent is max code + 1 (codes need not be contiguous).
    cards = [
        int(table.dim_codes[:, d].max()) + 1 if table.n_rows else 1 for d in range(n)
    ]
    space = 1
    for c in cards:
        space *= c
    if space > max_cells:
        raise ValueError(
            f"dimension space has {space:,} cells (> {max_cells:,}); "
            "array cubing is a dense-data method — use range_cubing or BUC"
        )

    out: dict[Cell, tuple] = {}
    if table.n_rows == 0:
        return MaterializedCube(n, agg, out)

    # Base array: counts (and sums) at full dimensionality.
    codes = table.dim_codes
    flat = np.zeros(space, dtype=np.int64)
    indexes = np.zeros(table.n_rows, dtype=np.int64)
    for d in range(n):
        indexes = indexes * cards[d] + codes[:, d]
    np.add.at(flat, indexes, 1)
    counts = flat.reshape(cards)
    sums = None
    if track_sum:
        flat_sum = np.zeros(space, dtype=np.float64)
        np.add.at(flat_sum, indexes, table.measures[:, agg.measure_index])
        sums = flat_sum.reshape(cards)

    lattice = CuboidLattice(n)
    base = lattice.base
    arrays: dict[int, tuple[np.ndarray, np.ndarray | None]] = {base: (counts, sums)}

    def array_for(mask: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Aggregate down from the smallest already-computed parent."""
        cached = arrays.get(mask)
        if cached is not None:
            return cached
        # Parent: add back the highest missing dimension (deterministic,
        # maximizes prefix reuse across siblings).
        missing = max(d for d in range(n) if not mask >> d & 1)
        parent_counts, parent_sums = array_for(mask | 1 << missing)
        # Axis of `missing` within the parent's retained dimensions.
        parent_dims = [d for d in range(n) if (mask | 1 << missing) >> d & 1]
        axis = parent_dims.index(missing)
        reduced = (
            parent_counts.sum(axis=axis),
            parent_sums.sum(axis=axis) if parent_sums is not None else None,
        )
        arrays[mask] = reduced
        return reduced

    for mask in sorted(lattice, key=lambda m: -m.bit_count()):
        counts_m, sums_m = array_for(mask)
        dims = lattice.dims_of(mask)
        nz = np.nonzero(np.atleast_1d(counts_m) >= min_support)
        counts_flat = np.atleast_1d(counts_m)[nz]
        sums_flat = np.atleast_1d(sums_m)[nz] if sums_m is not None else None
        for row_i in range(len(counts_flat)):
            cell = [None] * n
            for axis_i, d in enumerate(dims):
                cell[d] = int(nz[axis_i][row_i])
            count = int(counts_flat[row_i])
            state: tuple = (count,) if sums_flat is None else (count, float(sums_flat[row_i]))
            out[tuple(cell)] = state
    return MaterializedCube(n, agg, out)


def recommended_for(table: BaseTable, max_cells: int = DEFAULT_MAX_CELLS) -> bool:
    """Heuristic: is the table dense enough for array cubing to make sense?

    Uses the same dense extents (max code + 1) the array itself would
    allocate, so a "recommended" table never trips the space guard.
    """
    if table.n_rows == 0:
        return True
    space = 1
    for d in range(table.n_dims):
        space *= int(table.dim_codes[:, d].max()) + 1
    return space <= max_cells and table.n_rows / max(space, 1) >= 0.01


def _encode_rows(codes: np.ndarray, cards: Sequence[int]) -> np.ndarray:
    """Row-major linear index of each row (exposed for tests)."""
    indexes = np.zeros(codes.shape[0], dtype=np.int64)
    for d, card in enumerate(cards):
        indexes = indexes * card + codes[:, d]
    return indexes
