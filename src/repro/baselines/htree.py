"""The H-tree of Han, Pei, Dong & Wang (SIGMOD 2001).

An H-tree stores the base table as a prefix tree: level ``i`` of the tree
holds the values of dimension ``i`` (in the chosen dimension order), so a
tuple occupies one node per dimension along a root-to-leaf path, with
common prefixes shared.  Every distinct ``(dimension, value)`` pair has a
*header-table* entry that aggregates all its occurrences and heads a
*side-link* chain threading the nodes carrying that value; climbing from a
chain node to the root recovers the values of all smaller dimensions,
which is what H-Cubing's conditional traversals rely on.

Contrast with the range trie (paper Section 3): an H-tree node carries
exactly one dimension value, so its node count is ``O(T * D)`` in the
worst case versus the range trie's ``O(T)`` leaves plus ``T - 1`` interior
bound — the paper's *node ratio* metric measures exactly this gap (paper
Lemma 4 and Figure 3(d)).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


class HTreeNode:
    """One value of one dimension on one root-to-leaf path."""

    __slots__ = ("value", "children", "agg", "side", "parent")

    def __init__(self, value: int, agg, parent: "HTreeNode | None") -> None:
        self.value = value
        self.children: dict[int, HTreeNode] = {}
        self.agg = agg
        self.side: HTreeNode | None = None  # next node with the same (dim, value)
        self.parent = parent

    def ancestor_values(self) -> list[int]:
        """Dimension values above this node, root-most first."""
        values: list[int] = []
        node = self.parent
        while node is not None and node.parent is not None:
            values.append(node.value)
            node = node.parent
        values.reverse()
        return values


class HeaderEntry:
    """Header-table row: total aggregate plus the side-link chain ends."""

    __slots__ = ("agg", "head", "tail")

    def __init__(self, agg, node: HTreeNode) -> None:
        self.agg = agg
        self.head = node
        self.tail = node

    def chain(self) -> Iterator[HTreeNode]:
        node = self.head
        while node is not None:
            yield node
            node = node.side


class HTree:
    """A prefix tree over ``n_dims`` dimension levels with header tables."""

    def __init__(self, n_dims: int, aggregator: Aggregator) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = HTreeNode(-1, None, None)
        #: one header table per dimension level: value -> HeaderEntry
        self.headers: list[dict[int, HeaderEntry]] = [{} for _ in range(n_dims)]

    @classmethod
    def build(cls, table: BaseTable, aggregator: Aggregator | None = None) -> "HTree":
        """One scan over the table, inserting tuples in dimension order."""
        agg = aggregator or default_aggregator(table.n_measures)
        tree = cls(table.n_dims, agg)
        state_from_row = agg.state_from_row
        for row, measures in zip(table.dim_rows(), table.measure_rows()):
            tree.insert(row, state_from_row(measures))
        return tree

    def insert(self, values: Sequence[int], state) -> None:
        """Insert one (possibly pre-aggregated) path of dimension values.

        ``values`` has one entry per level; this is also how H-Cubing
        materializes its conditional trees, feeding paths weighted by the
        side-chain node aggregates.
        """
        merge = self.aggregator.merge
        node = self.root
        node.agg = state if node.agg is None else merge(node.agg, state)
        for dim, value in enumerate(values):
            child = node.children.get(value)
            if child is None:
                child = HTreeNode(value, state, node)
                node.children[value] = child
                entry = self.headers[dim].get(value)
                if entry is None:
                    self.headers[dim][value] = HeaderEntry(state, child)
                else:
                    entry.agg = merge(entry.agg, state)
                    entry.tail.side = child
                    entry.tail = child
            else:
                child.agg = merge(child.agg, state)
                entry = self.headers[dim][value]
                entry.agg = merge(entry.agg, state)
            node = child

    # ------------------------------------------------------------------

    @property
    def total_agg(self):
        return self.root.agg

    def n_nodes(self) -> int:
        """Node count excluding the root — the paper's H-tree size metric."""
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def check_invariants(self) -> None:
        """Structure checks used by the test suite."""
        count = self.aggregator.count

        def walk(node: HTreeNode, depth: int) -> None:
            assert depth <= self.n_dims, "path longer than dimension count"
            if depth == self.n_dims:
                assert not node.children, "leaf-level node with children"
            if node.children:
                total = None
                for value, child in node.children.items():
                    assert value == child.value, "children dict mis-keyed"
                    assert child.parent is node, "broken parent pointer"
                    total = child.agg if total is None else self.aggregator.merge(total, child.agg)
                    walk(child, depth + 1)
                assert count(total) == count(node.agg), "child counts do not add up"
            elif depth < self.n_dims:
                raise AssertionError(f"interior node at depth {depth} without children")

        if self.root.children:
            walk(self.root, 0)
        for dim, header in enumerate(self.headers):
            for value, entry in header.items():
                chain_total = None
                for node in entry.chain():
                    assert node.value == value, "side link crosses values"
                    chain_total = (
                        node.agg
                        if chain_total is None
                        else self.aggregator.merge(chain_total, node.agg)
                    )
                assert count(chain_total) == count(entry.agg), (
                    f"header aggregate mismatch at dim {dim} value {value}"
                )
