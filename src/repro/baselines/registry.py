"""A unified registry of every cube-computation algorithm in the repo.

Historically the harness, CLI and benchmarks each imported algorithms
ad-hoc and special-cased their signatures.  The registry gives them one
dispatch surface: a :class:`CubeAlgorithm` record per algorithm, all
driven through the same keyword-only tuning parameters (``aggregator``,
``dim_order``, ``min_support``) that the entrypoints themselves now share.

>>> from repro.baselines.registry import get_algorithm, available_algorithms
>>> algo = get_algorithm("range_cubing")          # or the "range" alias
>>> cube = algo.run(table, min_support=4)         # doctest: +SKIP

Every record also knows how to *expand* its result into a plain
``{cell: state}`` mapping so results can be cross-checked against
:func:`repro.cube.full_cube.compute_full_cube` — lossless algorithms
(``algo.lossless``) expand to the complete cube, condensed ones
(closed/quotient cubes) to a consistent subset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.buc import buc
from repro.baselines.c_cubing import closed_cubing
from repro.baselines.condensed import condensed_cube
from repro.baselines.dwarf import Dwarf
from repro.baselines.hcubing import h_cubing, h_cubing_detailed
from repro.baselines.multiway import multiway
from repro.baselines.quotient import quotient_cube
from repro.baselines.star_cubing import star_cubing
from repro.core.partitioned import (
    parallel_range_cubing,
    parallel_range_cubing_detailed,
)
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.table.base_table import BaseTable

#: "dim_order not given" marker: the registry forwards an *explicit*
#: ``dim_order=None`` (pinning the as-is order, since the range-cubing
#: family self-tunes when the argument is omitted) but keeps omitting
#: the keyword entirely when the caller did.
_UNSET = object()


@dataclass(frozen=True)
class CubeAlgorithm:
    """One registered algorithm: a runner plus its dispatch metadata.

    ``runner`` takes ``(table, *, aggregator=..., dim_order=...,
    min_support=..., **extra)`` — the unified signature — and whatever
    subset of those tuning parameters the algorithm supports
    (``supports_dim_order`` / ``supports_min_support`` declare which).
    ``order_policy`` is the dimension-order policy the paper's harness
    uses for the algorithm (``"desc"``, ``"asc"`` or None).
    ``expander`` turns the result into a ``{cell: state}`` dict;
    ``lossless`` says whether that expansion covers *every* non-empty
    cube cell or only a condensed subset.  ``detailed`` optionally
    returns ``(result, stats)`` with per-run statistics.
    """

    name: str
    runner: Callable[..., Any]
    description: str
    order_policy: str | None = None
    supports_dim_order: bool = True
    supports_min_support: bool = True
    lossless: bool = True
    expander: Callable[[Any], dict] | None = None
    detailed: Callable[..., tuple[Any, dict]] | None = None
    aliases: tuple[str, ...] = field(default=())

    def _kwargs(self, aggregator, dim_order, min_support) -> dict:
        kwargs: dict[str, Any] = {}
        if aggregator is not None:
            kwargs["aggregator"] = aggregator
        if dim_order is not _UNSET:
            # Explicit None is forwarded: for algorithms whose omitted
            # dim_order means "auto" (the range-cubing family) it pins
            # the as-is order, which omitting no longer does.
            if dim_order is not None and not self.supports_dim_order:
                raise ValueError(f"{self.name} does not take a dimension order")
            if self.supports_dim_order:
                kwargs["dim_order"] = dim_order
        if min_support != 1:
            if not self.supports_min_support:
                raise ValueError(f"{self.name} does not support iceberg thresholds")
            kwargs["min_support"] = min_support
        return kwargs

    def run(
        self,
        table: BaseTable,
        *,
        aggregator=None,
        dim_order=_UNSET,
        min_support: int = 1,
        **extra,
    ) -> Any:
        """Run the algorithm with the unified tuning parameters.

        ``extra`` passes backend-specific options through (e.g.
        ``executor=``/``n_partitions=`` for ``parallel_range_cubing``).
        """
        kwargs = self._kwargs(aggregator, dim_order, min_support)
        kwargs.update(extra)
        return self.runner(table, **kwargs)

    def run_detailed(
        self,
        table: BaseTable,
        *,
        aggregator=None,
        dim_order=_UNSET,
        min_support: int = 1,
        **extra,
    ) -> tuple[Any, dict]:
        """Run and return ``(result, stats)``.

        Algorithms without a native detailed runner get wall-clock-only
        stats (``total_seconds``), so the harness can time any of them
        uniformly.
        """
        kwargs = self._kwargs(aggregator, dim_order, min_support)
        kwargs.update(extra)
        if self.detailed is not None:
            return self.detailed(table, **kwargs)
        start = time.perf_counter()
        result = self.runner(table, **kwargs)
        return result, {"total_seconds": time.perf_counter() - start}

    def cells(self, result: Any) -> dict:
        """Expand a result into a plain ``{cell: aggregate state}`` dict."""
        if self.expander is None:
            raise ValueError(f"{self.name} has no cell expansion")
        return self.expander(result)


def _expand_range_cube(cube) -> dict:
    return dict(cube.expand())


def _expand_materialized(cube) -> dict:
    return cube.as_dict()


def _expand_condensed(cube) -> dict:
    return dict(cube.expand())


def _expand_quotient(cube) -> dict:
    # Class upper bounds are real (closed) cube cells; the other members
    # of each class share the state but are not enumerated here.
    return dict(cube.classes)


def _expand_dwarf(dwarf) -> dict:
    """Every cube cell stored in the dwarf, by walking the value/ALL DAG."""
    n = dwarf.n_dims
    out: dict = {}
    if dwarf.root is None:
        return out

    def walk(position, level: int, prefix: tuple) -> None:
        if level == n:
            if position is not None:
                out[prefix] = position
            return
        for value, below in position.cells.items():
            walk(below, level + 1, prefix + (value,))
        walk(position.all_cell, level + 1, prefix + (None,))

    walk(dwarf.root, 0, ())
    return out


_REGISTRY: dict[str, CubeAlgorithm] = {}
_ALIASES: dict[str, str] = {}


def register(algorithm: CubeAlgorithm) -> CubeAlgorithm:
    """Add an algorithm (and its aliases) to the registry."""
    key = algorithm.name
    if key in _REGISTRY or key in _ALIASES:
        raise ValueError(f"algorithm {key!r} is already registered")
    for alias in algorithm.aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"alias {alias!r} collides with an existing name")
    _REGISTRY[key] = algorithm
    for alias in algorithm.aliases:
        _ALIASES[alias] = key
    return algorithm


def available_algorithms() -> tuple[str, ...]:
    """Canonical names of every registered algorithm, in registration order."""
    return tuple(_REGISTRY)


def get_algorithm(name: str) -> CubeAlgorithm:
    """Look up an algorithm by canonical name or alias."""
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}"
        ) from None


register(
    CubeAlgorithm(
        name="range_cubing",
        runner=range_cubing,
        detailed=range_cubing_detailed,
        expander=_expand_range_cube,
        description="The paper's algorithm: range trie + successive reductions",
        order_policy="desc",
        aliases=("range",),
    )
)
register(
    CubeAlgorithm(
        name="parallel_range_cubing",
        runner=parallel_range_cubing,
        detailed=parallel_range_cubing_detailed,
        expander=_expand_range_cube,
        description="Range cubing over partition-parallel trie builds (repro.exec)",
        order_policy="desc",
        aliases=("parallel", "parallel_range"),
    )
)
register(
    CubeAlgorithm(
        name="buc",
        runner=buc,
        expander=_expand_materialized,
        description="Bottom-Up Computation (Beyer & Ramakrishnan, SIGMOD 1999)",
        order_policy="desc",
    )
)
register(
    CubeAlgorithm(
        name="star_cubing",
        runner=star_cubing,
        expander=_expand_materialized,
        description="Star-tree cubing (Xin, Han, Li & Wah, VLDB 2003)",
        order_policy="desc",
        aliases=("star",),
    )
)
register(
    CubeAlgorithm(
        name="multiway",
        runner=multiway,
        expander=_expand_materialized,
        description="MultiWay dense-array cubing (Zhao et al., SIGMOD 1997)",
        order_policy=None,
        supports_dim_order=False,
    )
)
register(
    CubeAlgorithm(
        name="hcubing",
        runner=h_cubing,
        detailed=h_cubing_detailed,
        expander=_expand_materialized,
        description="H-tree conditioning (Han, Pei, Dong & Wang, SIGMOD 2001)",
        order_policy="asc",
        aliases=("h_cubing",),
    )
)
register(
    CubeAlgorithm(
        name="c_cubing",
        runner=closed_cubing,
        expander=_expand_materialized,
        description="Closed cells only, via the closedness measure (C-Cubing)",
        supports_dim_order=False,
        lossless=False,
        aliases=("closed", "closed_cubing"),
    )
)
register(
    CubeAlgorithm(
        name="condensed",
        runner=condensed_cube,
        expander=_expand_condensed,
        description="BST-condensed cube (Wang, Feng, Lu & Yu, ICDE 2002)",
        # The entrypoint takes dim_order, but its entries stay in the
        # permuted order (no remapping) — so the registry, whose contract
        # is original-order results, does not forward one.
        supports_dim_order=False,
        supports_min_support=False,
        aliases=("condensed_cube",),
    )
)
register(
    CubeAlgorithm(
        name="quotient",
        runner=quotient_cube,
        expander=_expand_quotient,
        description="Quotient-cube classes (Lakshmanan, Pei & Han, VLDB 2002)",
        supports_dim_order=False,
        lossless=False,
        aliases=("quotient_cube",),
    )
)
register(
    CubeAlgorithm(
        name="dwarf",
        runner=lambda table, *, aggregator=None: Dwarf.build(table, aggregator),
        expander=_expand_dwarf,
        description="Dwarf prefix/suffix-coalesced cube store (SIGMOD 2002)",
        supports_dim_order=False,
        supports_min_support=False,
    )
)
