"""Shell-fragment cubing (Li, Han & Gonzalez, VLDB 2004).

For high-dimensional tables even a compressed full cube is untenable —
the cuboid count alone is ``2**n``.  The shell-fragment approach
materializes only tiny *vertical fragments*: the dimensions are split
into groups of ``fragment_size`` (typically 2–3), the full local cube of
each fragment is precomputed, and every local cell stores its **inverted
tid-list** — the ids of the tuples it covers.  An arbitrary cell over any
dimension combination is then answered online by intersecting the
tid-lists of its per-fragment projections and aggregating the measures of
the surviving tuples.

Storage is ``O(n / f * 2**f)`` local cuboids instead of ``2**n``, while
every cell of the full cube stays reachable — the trade the paper makes
is query-time work (sorted-array intersections) for precomputation space.

This rounds out the repository's coverage of the Range-CUBE paper's
design space: range cubes compress the *output* of full materialization;
shell fragments avoid full materialization altogether.  The two are
composable — each fragment's local cube could itself be a range cube —
but here fragments use plain dictionaries, as in the original.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cube.cell import Cell
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


class ShellFragmentCube:
    """Per-fragment local cubes with inverted tid-lists + online assembly."""

    def __init__(
        self,
        table: BaseTable,
        fragment_size: int = 3,
        aggregator: Aggregator | None = None,
    ) -> None:
        if fragment_size < 1:
            raise ValueError("fragment_size must be at least 1")
        self.table = table
        self.aggregator = aggregator or default_aggregator(table.n_measures)
        self.n_dims = table.n_dims
        self.fragments: tuple[tuple[int, ...], ...] = tuple(
            tuple(range(start, min(start + fragment_size, table.n_dims)))
            for start in range(0, table.n_dims, fragment_size)
        )
        self._states = [
            self.aggregator.state_from_row(m) for m in table.measure_rows()
        ]
        #: fragment index -> {local cell (full-arity, only fragment dims bound)
        #:                     -> sorted tid array}
        self._tidlists: list[dict[Cell, np.ndarray]] = []
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        rows = self.table.dim_rows()
        n = self.n_dims
        for dims in self.fragments:
            local: dict[Cell, list[int]] = {}
            # every subset of the fragment's dimensions is a local cuboid
            subsets = [
                [dims[i] for i in range(len(dims)) if subset >> i & 1]
                for subset in range(1, 1 << len(dims))
            ]
            for tid, row in enumerate(rows):
                for subset in subsets:
                    cell = tuple(
                        row[d] if d in subset else None for d in range(n)
                    )
                    local.setdefault(cell, []).append(tid)
            self._tidlists.append(
                {cell: np.asarray(tids, dtype=np.int64) for cell, tids in local.items()}
            )

    # ------------------------------------------------------------------

    @property
    def n_fragments(self) -> int:
        return len(self.fragments)

    def n_stored_cells(self) -> int:
        """Local cells materialized across all fragments."""
        return sum(len(local) for local in self._tidlists)

    def stored_tid_entries(self) -> int:
        """Total tid-list length — the inverted-index volume."""
        return sum(
            int(tids.size) for local in self._tidlists for tids in local.values()
        )

    # ------------------------------------------------------------------

    def tids_for(self, cell: Cell) -> np.ndarray | None:
        """Sorted tids of the tuples covered by ``cell`` (None if empty)."""
        if len(cell) != self.n_dims:
            raise ValueError(
                f"query cell has {len(cell)} dims, cube has {self.n_dims}"
            )
        pieces: list[np.ndarray] = []
        for dims, local in zip(self.fragments, self._tidlists):
            projected = tuple(
                cell[d] if d in dims and cell[d] is not None else None
                for d in range(self.n_dims)
            )
            if all(v is None for v in projected):
                continue  # fragment unconstrained
            tids = local.get(projected)
            if tids is None:
                return None
            pieces.append(tids)
        if not pieces:
            return np.arange(self.table.n_rows)
        result = pieces[0]
        for tids in pieces[1:]:
            result = np.intersect1d(result, tids, assume_unique=True)
            if result.size == 0:
                return None
        return result

    def lookup(self, cell: Cell) -> tuple | None:
        """Aggregate state of ``cell``, assembled online."""
        tids = self.tids_for(cell)
        if tids is None or tids.size == 0:
            return None
        merge = self.aggregator.merge
        it = iter(tids.tolist())
        total = self._states[next(it)]
        for tid in it:
            total = merge(total, self._states[tid])
        return total

    def value(self, cell: Cell) -> dict[str, float] | None:
        state = self.lookup(cell)
        return None if state is None else self.aggregator.finalize(state)

    def holistic(self, cell: Cell, fn, measure_index: int = 0) -> float | None:
        """Apply a *holistic* aggregate (median, mode, ...) to one cell.

        Holistic functions have no bounded merge state, so no
        precomputation-based cube (range cube included) can answer them —
        but the shell's tid-lists reach the base tuples, so ``fn`` runs
        over the cell's actual measure values.  ``fn`` receives a numpy
        array, e.g. ``np.median``.
        """
        tids = self.tids_for(cell)
        if tids is None or tids.size == 0:
            return None
        return float(fn(self.table.measures[tids, measure_index]))

    def compute_cuboid(self, dims: Sequence[int]) -> dict[Cell, tuple]:
        """Materialize one cuboid online (group-by over ``dims``)."""
        for d in dims:
            if not 0 <= d < self.n_dims:
                raise IndexError(f"dimension {d} out of range")
        groups: dict[Cell, list[int]] = {}
        for tid, row in enumerate(self.table.dim_rows()):
            cell = tuple(
                row[d] if d in dims else None for d in range(self.n_dims)
            )
            groups.setdefault(cell, []).append(tid)
        merge = self.aggregator.merge
        out: dict[Cell, tuple] = {}
        for cell, tids in groups.items():
            it = iter(tids)
            total = self._states[next(it)]
            for tid in it:
                total = merge(total, self._states[tid])
            out[cell] = total
        return out
