"""The quotient cube (Lakshmanan, Pei & Han, VLDB 2002).

The quotient cube partitions the cells of a cube into the *coarsest*
convex classes such that all cells of a class share one aggregate — for a
monotone aggregate these are exactly the classes of "same covering tuple
set", and each class has a unique *upper bound*: the most specific cell of
the class, obtained by closing a cell over every dimension value common to
all its covering tuples.  The number of classes is therefore the number of
*closed cells*, and it lower-bounds the size of any convex,
semantics-preserving cube compression — including the range cube, which
trades a little of this optimality for computation speed (paper Section 6:
"does not try to compress the cube optimally like Quotient-Cube ... it
still compresses the cube close to optimality").

Enumeration uses the standard closure-space depth-first search (the same
discipline as closed-itemset miners and the QC-DFS of Lakshmanan et al.):
extend the current closed cell on one free dimension at a time, jump to
the closure of the resulting tuple set, and keep only extensions whose
closure binds no dimension smaller than the extension dimension that the
parent left free — this first-parent canonicity rule visits every closed
cell exactly once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


class QuotientCube:
    """The set of class upper bounds (closed cells) with their aggregates."""

    def __init__(self, n_dims: int, aggregator: Aggregator, classes: dict[Cell, tuple]) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.classes = classes

    @property
    def n_classes(self) -> int:
        """Optimal convex-partition size — the compression lower bound."""
        return len(self.classes)

    def upper_bounds(self):
        return iter(self.classes)

    def value(self, upper_bound: Cell) -> dict[str, float]:
        return self.aggregator.finalize(self.classes[upper_bound])

    def class_of(self, cell: Cell) -> Cell | None:
        """The upper bound of the class containing ``cell`` (QC-tree query).

        A closed cell whose bound values extend ``cell``'s covers a subset
        of ``cell``'s covering tuples; the class upper bound is the one
        with the *same* cover, i.e. the extension with the largest count.
        Returns None for empty cells.  Linear scan over the classes — the
        role the QC-tree plays in Lakshmanan et al. is played here by
        :class:`~repro.core.range_index.RangeCubeIndex` on range cubes.
        """
        best: Cell | None = None
        best_count = -1
        for upper, state in self.classes.items():
            if all(v is None or upper[d] == v for d, v in enumerate(cell)):
                if state[0] > best_count:
                    best, best_count = upper, state[0]
        return best

    def lookup(self, cell: Cell) -> tuple | None:
        """Aggregate state of ``cell`` (compatible with the query layer)."""
        upper = self.class_of(cell)
        return None if upper is None else self.classes[upper]


@legacy_call_shim("aggregator", "min_support")
def quotient_cube(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    min_support: int = 1,
) -> QuotientCube:
    """Enumerate the quotient-cube classes of ``table``.

    ``min_support`` keeps only classes covering at least that many tuples
    (the iceberg quotient cube).
    """
    agg = aggregator or default_aggregator(table.n_measures)
    n = table.n_dims
    codes = table.dim_codes
    states = [agg.state_from_row(m) for m in table.measure_rows()]
    merge = agg.merge

    def aggregate(indexes: np.ndarray):
        it = iter(indexes.tolist())
        total = states[next(it)]
        for i in it:
            total = merge(total, states[i])
        return total

    def closure(indexes: np.ndarray) -> Cell:
        """The most specific cell matched by every row in ``indexes``."""
        sub = codes[indexes]
        first = sub[0]
        shared = (sub == first).all(axis=0)
        return tuple(int(first[d]) if shared[d] else None for d in range(n))

    classes: dict[Cell, tuple] = {}

    def dfs(cell: Cell, indexes: np.ndarray, first_dim: int) -> None:
        classes[cell] = aggregate(indexes)
        for d in range(first_dim, n):
            if cell[d] is not None:
                continue
            column = codes[indexes, d]
            sort = np.argsort(column, kind="stable")
            sorted_idx = indexes[sort]
            sorted_col = column[sort]
            boundaries = np.flatnonzero(np.diff(sorted_col)) + 1
            start = 0
            for end in [*boundaries.tolist(), len(sorted_col)]:
                part = sorted_idx[start:end]
                start = end
                if len(part) < min_support:
                    continue
                closed = closure(part)
                # First-parent canonicity: reject if the closure bound a
                # dimension before d that the parent cell left free.
                if any(closed[j] is not None and cell[j] is None for j in range(d)):
                    continue
                dfs(closed, part, d + 1)

    if table.n_rows >= max(min_support, 1):
        all_rows = np.arange(table.n_rows)
        dfs(closure(all_rows), all_rows, 0)
    return QuotientCube(n, agg, classes)


def quotient_class_count_bruteforce(table: BaseTable) -> int:
    """Reference class count: group all cube cells by covering tuple set.

    Exponential in every respect — test-sized inputs only.
    """
    from repro.cube.cell import project_row_mask
    from repro.cube.lattice import CuboidLattice

    rows = table.dim_rows()
    by_cell: dict[Cell, frozenset[int]] = {}
    for mask in CuboidLattice(table.n_dims):
        groups: dict[Cell, set[int]] = {}
        for i, row in enumerate(rows):
            groups.setdefault(project_row_mask(row, mask), set()).add(i)
        for cell, members in groups.items():
            by_cell[cell] = frozenset(members)
    return len(set(by_cell.values()))
