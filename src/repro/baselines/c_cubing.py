"""C-Cubing: closed cubes by aggregation-based checking (Xin et al., 2006).

The closed cube keeps only *closed* cells — cells to which no dimension
value can be added without shrinking their covering tuple set.  Those are
exactly the quotient-cube class upper bounds, so the closed cube is the
minimal lossless cube; the follow-up work to the papers surveyed in the
Range-CUBE related-work section computes it by fusing a cubing algorithm
with a **closedness measure**: an algebraic aggregate that, merged along
with COUNT/SUM, tells whether all tuples of a group share a value on each
dimension.  A cell is closed iff *no free dimension is all-same* — no
rescan of the group needed, just one extra mergeable state.

The closedness measure here is a per-dimension ``(value, all_same)``
vector: a single tuple starts all-same everywhere, and merging two states
keeps a dimension all-same only when both sides are and their values
agree.  The traversal is the star-cubing bind-or-collapse recursion from
:mod:`repro.baselines.star_cubing`, carrying the vector alongside the
ordinary aggregate; a cell that fails the check is simply not emitted (its
closure is emitted from the branch that binds the implied values).

The result is verified in the tests against the quotient cube's classes —
same upper bounds, same aggregates — while sharing no code with that
closure-search implementation.
"""

from __future__ import annotations

from typing import Sequence

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell, apex_cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable

#: Per-dimension closedness entry for "no tuples yet / not all same".
_DIFFER = None


class _CNode:
    """Star-tree node carrying (aggregate, closedness vector)."""

    __slots__ = ("value", "children", "agg", "same")

    def __init__(self, value: int, agg, same: tuple) -> None:
        self.value = value
        self.children: dict[int, _CNode] = {}
        self.agg = agg
        self.same = same


def _merge_same(a: tuple, b: tuple) -> tuple:
    """Combine two closedness vectors: keep only agreeing all-same dims."""
    return tuple(
        x if (x is not _DIFFER and x == y) else _DIFFER for x, y in zip(a, b)
    )


@legacy_call_shim("aggregator", "min_support")
def closed_cubing(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    min_support: int = 1,
) -> MaterializedCube:
    """Compute the closed (iceberg) cube of ``table``.

    Returns the closed cells only — the quotient-cube upper bounds — with
    their aggregates.  ``min_support`` keeps closed cells covering at
    least that many tuples.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    n = table.n_dims

    # Build the augmented star tree.
    root = _CNode(-2, None, (_DIFFER,) * n)
    merge = agg.merge
    state_from_row = agg.state_from_row
    for row, measures in zip(table.dim_rows(), table.measure_rows()):
        state = state_from_row(measures)
        same = tuple(row)
        node = root
        if node.agg is None:
            node.agg, node.same = state, same
        else:
            node.agg = merge(node.agg, state)
            node.same = _merge_same(node.same, same)
        for value in row:
            child = node.children.get(value)
            if child is None:
                child = _CNode(value, state, same)
                node.children[value] = child
            else:
                child.agg = merge(child.agg, state)
                child.same = _merge_same(child.same, same)
            node = child

    out: dict[Cell, tuple] = {}
    count = agg.count

    def emit(bindings: dict[int, int], node: _CNode) -> None:
        if count(node.agg) < min_support:
            return
        # Closed iff every free dimension takes more than one value.
        for dim in range(n):
            if dim not in bindings and node.same[dim] is not _DIFFER:
                return
        out[tuple(bindings.get(i) for i in range(n))] = node.agg

    def traverse(node: _CNode, dims: Sequence[int], bindings: dict[int, int]) -> None:
        d = dims[0]
        rest = dims[1:]
        for value, child in node.children.items():
            if count(child.agg) < min_support:
                continue
            child_bindings = dict(bindings)
            child_bindings[d] = value
            emit(child_bindings, child)
            if rest:
                traverse(child, rest, child_bindings)
        if rest:
            traverse(_collapse(node, merge), rest, bindings)

    if root.agg is not None:
        emit({}, root)  # the apex, when it happens to be closed
        if n:
            traverse(root, list(range(n)), {})
    return MaterializedCube(n, agg, out)


def _collapse(node: _CNode, merge) -> _CNode:
    """Drop the children's dimension, merging sibling subtrees."""
    merged = _CNode(-2, node.agg, node.same)
    children = list(node.children.values())
    if len(children) == 1:
        merged.children = children[0].children
        return merged
    for child in children:
        for value, grandchild in child.children.items():
            present = merged.children.get(value)
            if present is None:
                merged.children[value] = grandchild
            else:
                merged.children[value] = _merge_subtrees(present, grandchild, merge)
    return merged


def _merge_subtrees(a: _CNode, b: _CNode, merge) -> _CNode:
    result = _CNode(a.value, merge(a.agg, b.agg), _merge_same(a.same, b.same))
    result.children = dict(a.children)
    for value, child in b.children.items():
        present = result.children.get(value)
        result.children[value] = (
            child if present is None else _merge_subtrees(present, child, merge)
        )
    return result
