"""BUC — Bottom-Up Computation (Beyer & Ramakrishnan, SIGMOD 1999).

BUC computes the cube from the apex downwards: it recursively partitions
the input on one dimension at a time (dimensions taken in increasing
order), outputs the aggregate of each partition, and recurses into the
partition for the remaining dimensions.  A partition smaller than the
iceberg threshold is dropped together with its whole sub-lattice — the
Apriori pruning that made BUC the standard for sparse iceberg cubes.

The partitioning here uses a stable numpy argsort per (partition,
dimension), the moral equivalent of the original's counting sort; the
per-cell cost profile (re-touching each tuple once per enclosing
partition) is the one the Range-CUBE paper contrasts with tree-based
methods on skewed data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compat import legacy_call_shim
from repro.cube.cell import Cell, apex_cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


@legacy_call_shim("aggregator", "dim_order", "min_support")
def buc(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> MaterializedCube:
    """Compute the (iceberg) cube of ``table`` bottom-up.

    Cells come back in the table's original dimension order regardless of
    the internal ``dim_order`` used for partitioning.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    order = dim_order
    working = table if order is None else table.reordered(order)
    n = working.n_dims
    codes = working.dim_codes
    states = [agg.state_from_row(m) for m in working.measure_rows()]
    merge = agg.merge

    def aggregate(indexes: np.ndarray):
        it = iter(indexes.tolist())
        total = states[next(it)]
        for i in it:
            total = merge(total, states[i])
        return total

    out: dict[Cell, tuple] = {}
    bindings: dict[int, int] = {}

    def recurse(indexes: np.ndarray, first_dim: int) -> None:
        for d in range(first_dim, n):
            column = codes[indexes, d]
            sort = np.argsort(column, kind="stable")
            sorted_idx = indexes[sort]
            sorted_col = column[sort]
            boundaries = np.flatnonzero(np.diff(sorted_col)) + 1
            start = 0
            for end in [*boundaries.tolist(), len(sorted_col)]:
                part = sorted_idx[start:end]
                value = int(sorted_col[start])
                start = end
                if len(part) < min_support:
                    continue
                bindings[d] = value
                cell = tuple(bindings.get(i) for i in range(n))
                out[cell] = aggregate(part)
                recurse(part, d + 1)
                del bindings[d]

    all_rows = np.arange(working.n_rows)
    if working.n_rows >= min_support and working.n_rows:
        out[apex_cell(n)] = aggregate(all_rows)
        recurse(all_rows, 0)

    if order is not None:
        remapped: dict[Cell, tuple] = {}
        for cell, state in out.items():
            mapped = [None] * n
            for new_dim, old_dim in enumerate(order):
                mapped[old_dim] = cell[new_dim]
            remapped[tuple(mapped)] = state
        out = remapped
    return MaterializedCube(table.n_dims, agg, out)
