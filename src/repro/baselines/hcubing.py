"""H-Cubing (Han, Pei, Dong & Wang, SIGMOD 2001) — bottom-up, H-tree based.

H-Cubing computes an (iceberg or full) cube by conditioning: for every
value ``v`` of a dimension ``d`` (taken from a header table), it outputs
the cell binding ``d = v`` in the current conditioning context, then walks
``v``'s side-link chain, climbs each chained node to the root to recover
the smaller-dimension values above it, and assembles those weighted paths
into a *conditional* H-tree over dimensions ``0 .. d-1`` on which it
recurses.  Dimensions are always conditioned in decreasing index order, so
every cell is produced exactly once.

This is the "materialize the conditional structure" rendition of the
algorithm (the original alternates between rebuilding header tables and
re-linking in place; the work performed per cell — one side-chain walk
plus one ancestor climb per chained node — is the same, and it is this
per-cell tree-walking cost, growing with cardinality and dimension count,
that the Range-CUBE paper's experiments characterize).

Iceberg pruning is the original's: a header entry whose count misses the
threshold cannot produce any qualifying conditioned cell, so its branch is
skipped before the conditional tree is ever built.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.baselines.htree import HTree
from repro.compat import legacy_call_shim
from repro.cube.cell import Cell, apex_cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


@legacy_call_shim("aggregator", "dim_order", "min_support")
def h_cubing(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> MaterializedCube:
    """Compute the (iceberg) cube of ``table`` with H-Cubing.

    Cells are returned in the table's original dimension order even when
    ``dim_order`` permutes the order the H-tree uses internally.
    """
    cube, _ = h_cubing_detailed(
        table, aggregator=aggregator, dim_order=dim_order, min_support=min_support
    )
    return cube


@legacy_call_shim("aggregator", "dim_order", "min_support")
def h_cubing_detailed(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> tuple[MaterializedCube, dict[str, float]]:
    """Like :func:`h_cubing` but also returns harness statistics
    (H-tree node count — the denominator of the paper's node ratio — and
    the build/traversal time split)."""
    agg = aggregator or default_aggregator(table.n_measures)
    order = dim_order
    working = table if order is None else table.reordered(order)
    n = working.n_dims

    t0 = time.perf_counter()
    tree = HTree.build(working, agg)
    t1 = time.perf_counter()

    out: dict[Cell, tuple] = {}
    if tree.root.agg is not None and agg.count(tree.root.agg) >= min_support:
        out[apex_cell(n)] = tree.root.agg
    _compute(tree, {}, out, n, agg, min_support)
    t2 = time.perf_counter()

    if order is not None:
        out = {_remap_cell(c, order, n): s for c, s in out.items()}
    stats = {
        "htree_nodes": tree.n_nodes(),
        "build_seconds": t1 - t0,
        "traverse_seconds": t2 - t1,
        "total_seconds": t2 - t0,
    }
    return MaterializedCube(table.n_dims, agg, out), stats


def _compute(
    tree: HTree,
    fixed: dict[int, int],
    out: dict[Cell, tuple],
    n_total: int,
    agg: Aggregator,
    min_support: int,
) -> None:
    """Condition on every value of every dimension of ``tree``, recursively.

    ``tree`` spans dimensions ``0 .. tree.n_dims - 1``; ``fixed`` holds the
    already-conditioned larger dimensions (global indexes).
    """
    count = agg.count
    for d in range(tree.n_dims - 1, -1, -1):
        for value, entry in tree.headers[d].items():
            if count(entry.agg) < min_support:
                continue
            bindings = dict(fixed)
            bindings[d] = value
            cell = tuple(bindings.get(i) for i in range(n_total))
            out[cell] = entry.agg
            if d == 0:
                continue
            # Build the conditional H-tree over dimensions 0..d-1 from the
            # ancestor paths of v's side-link chain, weighted by subtree
            # aggregates.
            conditional = HTree(d, agg)
            for node in entry.chain():
                conditional.insert(node.ancestor_values(), node.agg)
            _compute(conditional, bindings, out, n_total, agg, min_support)


def _remap_cell(cell: Cell, order: Sequence[int], n: int) -> Cell:
    mapped = [None] * n
    for new_dim, old_dim in enumerate(order):
        mapped[old_dim] = cell[new_dim]
    return tuple(mapped)
