"""Uniform and Zipf synthetic tables (paper Section 6.1).

"We used uniform and Zipf distributions for generating the synthetic
data.  These are standard datasets most often used to test the
performance of cube algorithms."

Each dimension draws independently from its own distribution over
``[0, cardinality)``.  For the Zipf distribution the probability of the
value of rank ``r`` (1-based) is proportional to ``1 / r**theta``; the
paper varies ``theta`` (the *Zipf factor*) from 0.0 — uniform — up to 3.0
(highly skewed) and fixes it at 1.5 for the non-skew experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.table.base_table import BaseTable
from repro.table.schema import Schema


def _schema(n_dims: int, n_measures: int, cardinalities: Sequence[int]) -> Schema:
    names = [f"d{i}" for i in range(n_dims)]
    measures = [f"m{i}" for i in range(n_measures)]
    schema = Schema.from_names(names, measures)
    dims = tuple(d.with_cardinality(int(c)) for d, c in zip(schema.dimensions, cardinalities))
    return Schema(dims, schema.measures)


def _cardinality_list(cardinality: int | Sequence[int], n_dims: int) -> list[int]:
    if isinstance(cardinality, int):
        return [cardinality] * n_dims
    cards = list(cardinality)
    if len(cards) != n_dims:
        raise ValueError(f"{len(cards)} cardinalities for {n_dims} dimensions")
    return cards


def _measures(n_rows: int, n_measures: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(1.0, 100.0, size=(n_rows, n_measures)).round(2)


def uniform_table(
    n_rows: int,
    n_dims: int,
    cardinality: int | Sequence[int],
    n_measures: int = 1,
    seed: int | None = 0,
) -> BaseTable:
    """A table whose dimension values are i.i.d. uniform over each domain."""
    rng = np.random.default_rng(seed)
    cards = _cardinality_list(cardinality, n_dims)
    codes = np.empty((n_rows, n_dims), dtype=np.int64)
    for d, card in enumerate(cards):
        codes[:, d] = rng.integers(0, card, size=n_rows)
    return BaseTable(
        _schema(n_dims, n_measures, cards), codes, _measures(n_rows, n_measures, rng)
    )


def zipf_probabilities(cardinality: int, theta: float) -> np.ndarray:
    """Rank probabilities ``p(r) ∝ 1 / r**theta`` over ``cardinality`` values.

    ``theta = 0`` degenerates to the uniform distribution, matching the
    paper's skew sweep that starts at Zipf factor 0.0.
    """
    if cardinality < 1:
        raise ValueError("cardinality must be positive")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    return weights / weights.sum()


def zipf_table(
    n_rows: int,
    n_dims: int,
    cardinality: int | Sequence[int],
    theta: float = 1.5,
    n_measures: int = 1,
    seed: int | None = 0,
) -> BaseTable:
    """A table whose dimension values are i.i.d. Zipf(theta) over each domain.

    Value code ``r`` has rank ``r + 1``: code 0 is the most frequent value
    of every dimension.
    """
    rng = np.random.default_rng(seed)
    cards = _cardinality_list(cardinality, n_dims)
    codes = np.empty((n_rows, n_dims), dtype=np.int64)
    for d, card in enumerate(cards):
        probs = zipf_probabilities(card, theta)
        codes[:, d] = rng.choice(card, size=n_rows, p=probs)
    return BaseTable(
        _schema(n_dims, n_measures, cards), codes, _measures(n_rows, n_measures, rng)
    )
