"""Simulated weather dataset (paper Section 6.2).

The paper's real-data experiment uses the September-1985 surface synoptic
cloud reports of Hahn, Warren & London — 1,015,367 tuples of weather
conditions at land stations, with attribute cardinalities ``station-id
(7,037), longitude (352), solar-altitude (179), latitude (152),
present-weather (101), day (30), weather-change-code (10), hour (8),
brightness (2)``.  That file is not redistributable here, so this module
*simulates* it (see DESIGN.md, Substitutions): same schema, the published
domain sizes, and — crucially — the same correlation structure the paper
calls out: "the Station Id will always determine the value of Longitude
and Latitude".

Scaling: when generating fewer rows than the original, only the *entity*
count scales — the number of stations shrinks so that reports-per-station
stays at the original's ~144 — while physical domains (days of the month,
hours, weather codes, coordinate grids) keep their published sizes; their
*observed* cardinalities then shrink naturally, exactly as a random sample
of the real file would behave.

Beyond the hard station -> (longitude, latitude) functional dependency,
the generator skews station activity (a few stations report far more
often), ties solar altitude to the hour of day and latitude band, and
derives brightness (day/night) from solar altitude — soft correlations of
the kind the real reports exhibit.  The range-trie mechanism responds only
to value implication and sparsity, both faithfully reproduced, so the
paper's qualitative result (range cubing a large factor faster than
H-Cubing, range cube an order of magnitude smaller than the full cube) is
exercised by the same code path.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import zipf_probabilities
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

#: (attribute name, cardinality in the 1985 dataset) in the paper's listing
#: order — descending cardinality, the favoured dimension order.
WEATHER_ATTRIBUTES: tuple[tuple[str, int], ...] = (
    ("station_id", 7037),
    ("longitude", 352),
    ("solar_altitude", 179),
    ("latitude", 152),
    ("present_weather", 101),
    ("day", 30),
    ("weather_change_code", 10),
    ("hour", 8),
    ("brightness", 2),
)

#: Rows and stations of the original file; their ratio (~144 reports per
#: station) is preserved when scaling down.
ORIGINAL_ROWS = 1_015_367
ORIGINAL_STATIONS = 7037


def weather_table(
    n_rows: int = 20_000,
    n_stations: int | None = None,
    station_skew: float = 1.2,
    seed: int | None = 0,
) -> BaseTable:
    """Generate a simulated weather table.

    ``n_stations`` defaults to keeping the original reports-per-station
    ratio; ``station_skew`` is the Zipf factor of station activity.
    """
    rng = np.random.default_rng(seed)
    cards = dict(WEATHER_ATTRIBUTES)
    if n_stations is None:
        n_stations = max(2, round(ORIGINAL_STATIONS * n_rows / ORIGINAL_ROWS))

    # Station activity is Zipf-skewed: some stations file many reports.
    station = rng.choice(
        n_stations, size=n_rows, p=zipf_probabilities(n_stations, station_skew)
    )

    # Hard FD: every station has one fixed location on the published grids.
    station_longitude = rng.integers(0, cards["longitude"], size=n_stations)
    station_latitude = rng.integers(0, cards["latitude"], size=n_stations)
    longitude = station_longitude[station]
    latitude = station_latitude[station]

    day = rng.integers(0, cards["day"], size=n_rows)
    hour = rng.integers(0, cards["hour"], size=n_rows)

    # Solar altitude depends on the hour plus the latitude band, with a
    # little day-to-day drift: a soft correlation — frequent (hour,
    # latitude) pairs repeat altitudes.
    altitude_card = cards["solar_altitude"]
    band = latitude % 8
    base_altitude = (hour * altitude_card) // cards["hour"]
    drift = day % 4
    solar_altitude = (base_altitude + band * 2 + drift) % altitude_card

    # Brightness is day/night — determined by solar altitude.
    brightness = (solar_altitude >= altitude_card // 2).astype(np.int64)

    present_weather = rng.choice(
        cards["present_weather"],
        size=n_rows,
        p=zipf_probabilities(cards["present_weather"], 0.8),
    )
    change_code = rng.choice(
        cards["weather_change_code"],
        size=n_rows,
        p=zipf_probabilities(cards["weather_change_code"], 0.8),
    )

    columns = {
        "station_id": station,
        "longitude": longitude,
        "solar_altitude": solar_altitude,
        "latitude": latitude,
        "present_weather": present_weather,
        "day": day,
        "weather_change_code": change_code,
        "hour": hour,
        "brightness": brightness,
    }
    names = [name for name, _ in WEATHER_ATTRIBUTES]
    codes = np.column_stack([columns[name].astype(np.int64) for name in names])
    schema = Schema.from_names(names, ["temperature"])
    dims = tuple(
        d.with_cardinality(int(codes[:, i].max()) + 1)
        for i, d in enumerate(schema.dimensions)
    )
    measures = rng.uniform(-40.0, 45.0, size=(n_rows, 1)).round(1)
    return BaseTable(Schema(dims, schema.measures), codes, measures)
