"""A realistic retail fact-table generator (star-schema flavour).

The paper's introduction motivates cubes with exactly this workload: a
sales warehouse whose schema carries real-world correlation ("Store
Starbucks always makes Product Coffee").  This generator produces a
five-dimension fact table

    (store, region, product, category, day)  +  (quantity, revenue)

with the entity correlations wired in — ``store -> region`` and
``product -> category`` are hard functional dependencies — plus the usual
skews: a few products dominate sales (Zipf), stores differ in traffic,
and weekends are busier.  A calendar hierarchy (day -> month -> year) is
attached to the day dimension, ready for
:func:`repro.cube.hierarchy.roll_up_dimension`.

Used by the examples and by tests that need a dataset whose compression
behaviour is predictable from its construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cube.hierarchy import Hierarchy
from repro.data.synthetic import zipf_probabilities
from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Measure, Schema

STORE, REGION, PRODUCT, CATEGORY, DAY = range(5)
DIM_NAMES = ("store", "region", "product", "category", "day")


@dataclass
class RetailDataset:
    """The fact table plus its attached dimension hierarchies."""

    table: BaseTable
    hierarchies: dict[int, Hierarchy] = field(default_factory=dict)

    @property
    def day_hierarchy(self) -> Hierarchy:
        return self.hierarchies[DAY]


def retail_dataset(
    n_rows: int = 5000,
    n_stores: int = 40,
    n_regions: int = 6,
    n_products: int = 120,
    n_categories: int = 10,
    n_days: int = 360,
    product_skew: float = 1.2,
    seed: int | None = 0,
) -> RetailDataset:
    """Generate a sales history with built-in correlation and skew."""
    rng = np.random.default_rng(seed)

    # Entity attributes: every store sits in one region, every product in
    # one category — the correlations the range trie factors out.
    store_region = rng.integers(0, n_regions, size=n_stores)
    product_category = rng.integers(0, n_categories, size=n_products)

    # Store traffic and product popularity are skewed.
    store = rng.choice(n_stores, size=n_rows, p=zipf_probabilities(n_stores, 0.8))
    product = rng.choice(
        n_products, size=n_rows, p=zipf_probabilities(n_products, product_skew)
    )

    # Weekends (2 of every 7 days) see ~2x the traffic.
    day_weights = np.ones(n_days)
    day_weights[np.arange(n_days) % 7 >= 5] = 2.0
    day = rng.choice(n_days, size=n_rows, p=day_weights / day_weights.sum())

    region = store_region[store]
    category = product_category[product]

    # Measures: per-product unit price, small quantities.
    unit_price = rng.uniform(2.0, 200.0, size=n_products).round(2)
    quantity = rng.integers(1, 6, size=n_rows)
    revenue = (quantity * unit_price[product]).round(2)

    codes = np.column_stack([store, region, product, category, day]).astype(np.int64)
    dims = tuple(
        Dimension(name, int(codes[:, i].max()) + 1)
        for i, name in enumerate(DIM_NAMES)
    )
    schema = Schema(dims, (Measure("quantity"), Measure("revenue")))
    measures = np.column_stack([quantity.astype(np.float64), revenue])
    table = BaseTable(schema, codes, measures)
    return RetailDataset(table, {DAY: Hierarchy.calendar(n_days)})
