"""Correlated tables: functional-dependency injection.

The paper's motivation (Section 1): "real world datasets tend to be
correlated, that is, dimension values are usually dependent on each other.
For example, Store Starbucks always makes Product Coffee ... the Station
Id will always determine the value of Longitude and Latitude."

A :class:`FunctionalDependency` makes a set of *target* dimensions a pure
function of a set of *source* dimensions: after the independent base
columns are drawn, each target column is overwritten with a deterministic
pseudo-random mapping of the source value combination.  Every injected
dependency shows up in the range trie as non-start key values (implied
values, paper Lemma 2) and directly increases range-cube compression —
which the correlation ablation tests and benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.synthetic import uniform_table, zipf_table
from repro.table.base_table import BaseTable


@dataclass(frozen=True)
class FunctionalDependency:
    """``source_dims`` jointly determine each dimension in ``target_dims``."""

    source_dims: tuple[int, ...]
    target_dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.source_dims or not self.target_dims:
            raise ValueError("source and target dimension sets must be non-empty")
        if set(self.source_dims) & set(self.target_dims):
            raise ValueError("a dimension cannot determine itself")


def apply_dependency(
    codes: np.ndarray,
    cardinalities: Sequence[int],
    fd: FunctionalDependency,
    seed: int,
) -> None:
    """Overwrite the target columns with functions of the source columns.

    The mapping is a deterministic hash of the source combination, reduced
    modulo the target cardinality, so equal sources always produce equal
    targets while distinct sources spread over the full target domain.
    """
    rng = np.random.default_rng(seed)
    # Fold the source columns into one key per row.
    key = codes[:, fd.source_dims[0]].astype(np.int64).copy()
    for d in fd.source_dims[1:]:
        key = key * np.int64(1_000_003) + codes[:, d]
    for t, target in enumerate(fd.target_dims):
        card = int(cardinalities[target])
        mix = np.int64(rng.integers(1, 2**31 - 1)) | np.int64(1)
        hashed = (key * mix + np.int64(rng.integers(0, 2**31 - 1))) % np.int64(2**61 - 1)
        codes[:, target] = (hashed % card).astype(np.int64)


def correlated_table(
    n_rows: int,
    n_dims: int,
    cardinality: int | Sequence[int],
    dependencies: Sequence[FunctionalDependency],
    theta: float | None = None,
    n_measures: int = 1,
    seed: int | None = 0,
) -> BaseTable:
    """A uniform (or Zipf, when ``theta`` is given) table with injected FDs.

    Dependencies are applied in order, so chains like ``A -> B`` then
    ``B -> C`` compose transitively.
    """
    base = (
        uniform_table(n_rows, n_dims, cardinality, n_measures, seed)
        if theta is None
        else zipf_table(n_rows, n_dims, cardinality, theta, n_measures, seed)
    )
    codes = base.dim_codes.copy()
    for k, fd in enumerate(dependencies):
        for d in (*fd.source_dims, *fd.target_dims):
            if not 0 <= d < n_dims:
                raise IndexError(f"dependency dimension {d} out of range")
        apply_dependency(codes, base.cardinalities, fd, (seed or 0) * 1000 + k + 1)
    return BaseTable(base.schema, codes, base.measures)


def verify_dependency(table: BaseTable, fd: FunctionalDependency) -> bool:
    """True when the table actually satisfies the functional dependency."""
    seen: dict[tuple, tuple] = {}
    for row in table.dim_rows():
        source = tuple(row[d] for d in fd.source_dims)
        target = tuple(row[d] for d in fd.target_dims)
        if seen.setdefault(source, target) != target:
            return False
    return True
