"""CSV import/export for base tables and range cubes.

The range-cube file format follows the paper's *format-preserving* claim:
one line per range tuple, with the same arity as a base tuple.  Marked
coordinates are suffixed with ``'`` (the paper's notation), free
coordinates are ``*``, and the aggregate results follow.  Such a file can
be consumed by tools that expect plain cube tuples — they simply read the
marked values as bound — and round-trips losslessly through
:func:`read_range_cube_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.range_cube import Range, RangeCube
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema


def write_table_csv(table: BaseTable, path: str | Path) -> None:
    """Write a base table with a header line of dimension+measure names."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(table.schema.dimension_names) + list(table.schema.measure_names))
        for codes, measures in zip(table.dim_codes.tolist(), table.measures.tolist()):
            if table.encoder is not None:
                row = list(table.encoder.decode_row(codes))
            else:
                row = list(codes)
            writer.writerow(row + list(measures))


def read_table_csv(
    path: str | Path,
    n_measures: int = 0,
    schema: Schema | None = None,
) -> BaseTable:
    """Read a header-first CSV into an (encoded) base table.

    The last ``n_measures`` columns are parsed as floats; everything else
    is dictionary-encoded as a dimension, whatever its spelling.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [tuple(r) for r in reader]
    n_dims = len(header) - n_measures
    if schema is None:
        schema = Schema.from_names(header[:n_dims], header[n_dims:])
    dim_rows = [r[:n_dims] for r in rows]
    measures = [[float(v) for v in r[n_dims:]] for r in rows] if n_measures else None
    return BaseTable.from_rows(schema, dim_rows, measures)


def write_range_cube_csv(
    cube: RangeCube,
    path: str | Path,
    dim_names: Sequence[str] | None = None,
) -> None:
    """Write one range tuple per line: coordinates then aggregate results.

    Coordinates are the encoded integer codes (``v``/``v'``/``*``); decode
    before writing if raw values are wanted — codes keep the file exact.
    """
    names = list(dim_names) if dim_names else [f"d{i}" for i in range(cube.n_dims)]
    result_names = list(cube.aggregator.result_names())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names + result_names)
        for r in cube.ranges:
            coords = []
            for i, v in enumerate(r.specific):
                if v is None:
                    coords.append("*")
                elif r.mask >> i & 1:
                    coords.append(f"{v}'")
                else:
                    coords.append(str(v))
            finalized = cube.aggregator.finalize(r.state)
            writer.writerow(coords + [finalized[k] for k in result_names])


def read_range_cube_csv(
    path: str | Path,
    aggregator: Aggregator | None = None,
) -> RangeCube:
    """Round-trip a COUNT/COUNT+SUM range-cube file back into a RangeCube.

    Only the default aggregators are reconstructible from their finalized
    values (count, count+sum); richer aggregates need their own readers.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        lines = list(reader)
    result_names = [h for h in header if h in ("count", "sum")]
    n_dims = len(header) - len(result_names)
    agg = aggregator or default_aggregator(1 if "sum" in result_names else 0)
    ranges = []
    for line in lines:
        specific: list[int | None] = []
        mask = 0
        for i, token in enumerate(line[:n_dims]):
            if token == "*":
                specific.append(None)
            elif token.endswith("'"):
                specific.append(int(token[:-1]))
                mask |= 1 << i
            else:
                specific.append(int(token))
        values = [float(v) for v in line[n_dims:]]
        state = (int(values[0]),) if len(values) == 1 else (int(values[0]), values[1])
        ranges.append(Range(tuple(specific), mask, state))
    return RangeCube(n_dims, agg, ranges)


def table_from_arrays(
    dim_codes: np.ndarray,
    measures: np.ndarray | None = None,
    dim_names: Sequence[str] | None = None,
) -> BaseTable:
    """Convenience wrapper: build an encoded table from plain arrays."""
    n_dims = dim_codes.shape[1]
    n_measures = 0 if measures is None else (1 if measures.ndim == 1 else measures.shape[1])
    names = list(dim_names) if dim_names else [f"d{i}" for i in range(n_dims)]
    schema = Schema.from_names(names, [f"m{i}" for i in range(n_measures)])
    return BaseTable.from_encoded(schema, dim_codes, measures)
