"""Dataset generators and IO used by the paper's evaluation (Section 6).

* :mod:`repro.data.synthetic` — uniform and Zipf-distributed tables, the
  standard cube-benchmark datasets;
* :mod:`repro.data.correlated` — functional-dependency injection, the
  correlation structure the range trie exploits;
* :mod:`repro.data.weather` — a simulation of the September-1985 weather
  land-station dataset used in Section 6.2 (see DESIGN.md, Substitutions);
* :mod:`repro.data.io` — CSV import/export of tables and range cubes.
"""

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.io import (
    read_table_csv,
    write_range_cube_csv,
    write_table_csv,
)
from repro.data.retail import RetailDataset, retail_dataset
from repro.data.synthetic import uniform_table, zipf_probabilities, zipf_table
from repro.data.weather import WEATHER_ATTRIBUTES, weather_table

__all__ = [
    "FunctionalDependency",
    "RetailDataset",
    "WEATHER_ATTRIBUTES",
    "correlated_table",
    "read_table_csv",
    "retail_dataset",
    "uniform_table",
    "weather_table",
    "write_range_cube_csv",
    "write_table_csv",
    "zipf_probabilities",
    "zipf_table",
]
