"""The lattice of cuboids (paper Figure 2(b)).

A cuboid is identified by the bitmask of dimensions it groups by; the
``n``-dimensional cube has ``2**n`` cuboids ordered by set inclusion.  In
the paper's drawing the apex cuboid ``(*, *, ..., *)`` sits at the top and
the base cuboid (all dimensions bound) at the bottom; rolling up moves
toward the apex.
"""

from __future__ import annotations

from typing import Iterator


class CuboidLattice:
    """Navigation helpers over the ``2**n`` cuboids of an ``n``-dim cube."""

    def __init__(self, n_dims: int) -> None:
        if n_dims < 0:
            raise ValueError("n_dims must be non-negative")
        if n_dims > 30:
            raise ValueError(f"{n_dims} dimensions means 2^{n_dims} cuboids; refusing")
        self.n_dims = n_dims

    # -- identities -----------------------------------------------------

    @property
    def n_cuboids(self) -> int:
        return 1 << self.n_dims

    @property
    def apex(self) -> int:
        return 0

    @property
    def base(self) -> int:
        return (1 << self.n_dims) - 1

    def dims_of(self, mask: int) -> tuple[int, ...]:
        return tuple(i for i in range(self.n_dims) if mask >> i & 1)

    def mask_of(self, dims) -> int:
        mask = 0
        for d in dims:
            if not 0 <= d < self.n_dims:
                raise IndexError(f"dimension {d} out of range")
            mask |= 1 << d
        return mask

    def name(self, mask: int, dim_names=None) -> str:
        """E.g. ``(store, *, product, *)`` for mask 0b0101."""
        parts = []
        for i in range(self.n_dims):
            if mask >> i & 1:
                parts.append(dim_names[i] if dim_names else f"d{i}")
            else:
                parts.append("*")
        return "(" + ", ".join(parts) + ")"

    # -- traversal ------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_cuboids))

    def by_level(self) -> Iterator[list[int]]:
        """Cuboids grouped by number of group-by dimensions, apex first."""
        levels: list[list[int]] = [[] for _ in range(self.n_dims + 1)]
        for mask in self:
            levels[mask.bit_count()].append(mask)
        yield from levels

    def level(self, mask: int) -> int:
        return mask.bit_count()

    def drill_downs(self, mask: int) -> Iterator[int]:
        """Cuboids one dimension more specific (one more bound dimension)."""
        for i in range(self.n_dims):
            if not mask >> i & 1:
                yield mask | 1 << i

    def roll_ups(self, mask: int) -> Iterator[int]:
        """Cuboids one dimension more general (one fewer bound dimension)."""
        for i in range(self.n_dims):
            if mask >> i & 1:
                yield mask & ~(1 << i)

    def is_roll_up_of(self, general: int, specific: int) -> bool:
        """True when ``general``'s dimensions are a subset of ``specific``'s."""
        return general & specific == general

    def to_networkx(self, dim_names=None):
        """The lattice as a ``networkx`` DiGraph (edges point toward the apex).

        Imported lazily so the core library never requires networkx.
        """
        import networkx as nx

        g = nx.DiGraph()
        for mask in self:
            g.add_node(mask, label=self.name(mask, dim_names), level=self.level(mask))
        for mask in self:
            for up in self.roll_ups(mask):
                g.add_edge(mask, up)
        return g
