"""Greedy materialized-view selection (Harinarayan, Rajaraman & Ullman,
SIGMOD 1996) over the cuboid lattice.

When even a compressed full cube is too much, warehouses materialize a
*subset* of cuboids and answer the rest from the smallest materialized
ancestor.  The classic HRU greedy algorithm picks, ``k`` times, the
cuboid whose materialization most reduces the total answering cost

    cost(S) = sum over every cuboid w of min{ size(u) : u in S, u ⊇ w }

starting from S = {base cuboid}; it is guaranteed to reach at least
63% (1 - 1/e) of the optimal benefit.  Cuboid sizes come exact from
:func:`repro.cube.full_cube.cuboid_cell_counts` for small tables or
estimated by sampling via :mod:`repro.cube.estimate` — the planner is
the natural consumer of the GEE estimator.

:class:`ViewStore` makes a selection actionable: it materializes the
chosen cuboids (with any of this library's aggregators) and answers
point queries and whole cuboids from the cheapest containing view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cube.cell import Cell, cuboid_of, project_row_mask
from repro.cube.lattice import CuboidLattice
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


@dataclass(frozen=True)
class ViewSelection:
    """Outcome of the greedy planner."""

    selected: tuple[int, ...]  # cuboid masks, base first, greedy order after
    sizes: dict[int, float]  # size used for every cuboid
    total_cost: float  # sum over cuboids of cheapest-ancestor size
    benefits: tuple[float, ...]  # benefit credited to each non-base pick


def cuboid_sizes_for_planning(
    table: BaseTable,
    exact_threshold: int = 4096,
    sample_size: int = 2000,
    seed: int | None = 0,
) -> dict[int, float]:
    """Per-cuboid sizes: exact for small tables, GEE-estimated otherwise."""
    from repro.cube.estimate import estimate_cuboid_size
    from repro.cube.full_cube import cuboid_cell_counts

    if table.n_rows <= exact_threshold:
        return {m: float(c) for m, c in cuboid_cell_counts(table).items()}
    lattice = CuboidLattice(table.n_dims)
    return {
        mask: estimate_cuboid_size(table, lattice.dims_of(mask), sample_size, seed)
        for mask in lattice
    }


def _total_cost(sizes: dict[int, float], selected: set[int], n_dims: int) -> float:
    lattice = CuboidLattice(n_dims)
    total = 0.0
    for w in lattice:
        total += min(sizes[u] for u in selected if u & w == w)
    return total


def greedy_view_selection(
    sizes: dict[int, float],
    k: int,
    n_dims: int,
) -> ViewSelection:
    """Pick ``k`` cuboids (beyond the base) by the HRU greedy benefit."""
    lattice = CuboidLattice(n_dims)
    base = lattice.base
    if set(sizes) != set(lattice):
        raise ValueError("sizes must cover every cuboid mask")
    selected: set[int] = {base}
    # cheapest materialized ancestor size per cuboid
    cheapest = {w: sizes[base] for w in lattice}
    order = [base]
    benefits = []
    for _ in range(k):
        best_view, best_benefit = None, 0.0
        for v in lattice:
            if v in selected:
                continue
            benefit = 0.0
            size_v = sizes[v]
            for w in lattice:
                if v & w == w and cheapest[w] > size_v:
                    benefit += cheapest[w] - size_v
            if benefit > best_benefit:
                best_view, best_benefit = v, benefit
        if best_view is None:
            break  # nothing improves anything
        selected.add(best_view)
        order.append(best_view)
        benefits.append(best_benefit)
        size_v = sizes[best_view]
        for w in lattice:
            if best_view & w == w and cheapest[w] > size_v:
                cheapest[w] = size_v
    return ViewSelection(
        tuple(order),
        dict(sizes),
        sum(cheapest.values()),
        tuple(benefits),
    )


def plan_views(
    table: BaseTable,
    k: int,
    sample_size: int = 2000,
    seed: int | None = 0,
) -> ViewSelection:
    """Size the lattice (exactly or by sampling) and run the greedy planner."""
    sizes = cuboid_sizes_for_planning(table, sample_size=sample_size, seed=seed)
    return greedy_view_selection(sizes, k, table.n_dims)


class ViewStore:
    """Materialized cuboids + cheapest-ancestor query answering."""

    def __init__(
        self,
        table: BaseTable,
        masks: tuple[int, ...] | list[int],
        aggregator: Aggregator | None = None,
    ) -> None:
        self.n_dims = table.n_dims
        self.aggregator = aggregator or default_aggregator(table.n_measures)
        base = (1 << table.n_dims) - 1
        self.masks = tuple(dict.fromkeys([*masks, base]))  # ensure base, dedupe
        self._views: dict[int, dict[Cell, tuple]] = {}
        rows = table.dim_rows()
        states = [self.aggregator.state_from_row(m) for m in table.measure_rows()]
        merge = self.aggregator.merge
        for mask in self.masks:
            view: dict[Cell, tuple] = {}
            for row, state in zip(rows, states):
                cell = project_row_mask(row, mask)
                present = view.get(cell)
                view[cell] = state if present is None else merge(present, state)
            self._views[mask] = view

    def view_for(self, mask: int) -> int:
        """The smallest materialized cuboid able to answer ``mask``."""
        candidates = [m for m in self.masks if m & mask == mask]
        if not candidates:
            raise ValueError(f"no materialized view covers cuboid {mask:b}")
        return min(candidates, key=lambda m: len(self._views[m]))

    def lookup(self, cell: Cell) -> tuple | None:
        """Aggregate ``cell`` from the cheapest covering view."""
        mask = cuboid_of(cell)
        source = self.view_for(mask)
        if source == mask:
            return self._views[source].get(cell)
        merge = self.aggregator.merge
        total = None
        for view_cell, state in self._views[source].items():
            if all(c is None or c == v for c, v in zip(cell, view_cell)):
                total = state if total is None else merge(total, state)
        return total

    def answer_cuboid(self, mask: int) -> dict[Cell, tuple]:
        """Materialize one cuboid on demand from its cheapest ancestor."""
        source = self.view_for(mask)
        if source == mask:
            return dict(self._views[source])
        merge = self.aggregator.merge
        out: dict[Cell, tuple] = {}
        for view_cell, state in self._views[source].items():
            cell = tuple(
                v if mask >> i & 1 else None for i, v in enumerate(view_cell)
            )
            present = out.get(cell)
            out[cell] = state if present is None else merge(present, state)
        return out

    def stored_cells(self) -> int:
        return sum(len(v) for v in self._views.values())
