"""Cells and the roll-up partial order (paper Section 2).

A *cell* of an ``n``-dimensional cube is represented as a length-``n``
tuple whose entries are either an integer dimension code or ``None`` —
``None`` plays the role of the paper's ``*`` ("all") value.  A cell with
exactly ``m`` non-``None`` entries is an *m-dimensional cell* and belongs
to the cuboid that groups by those ``m`` dimensions.

The partial order (paper Definition 1): cell ``a`` *specializes* cell ``b``
(equivalently, ``a`` can roll up to ``b``) when every dimension bound in
``b`` is bound to the same value in ``a``.  The tuples aggregated by ``a``
are then a subset of those aggregated by ``b``.  Under this vocabulary a
paper range ``[b, a]`` runs from a *general* end ``b`` up to a *specific*
end ``a`` with ``a`` specializing ``b``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

#: The "all" value. ``STAR is None`` — exported for readability at call sites.
STAR = None

Cell = tuple  # tuple[int | None, ...]; a type alias kept light on purpose.


def make_cell(n_dims: int, bindings: Mapping[int, int] | None = None) -> Cell:
    """Build a cell with the given ``{dimension index: value}`` bindings."""
    cell = [None] * n_dims
    for dim, value in (bindings or {}).items():
        if not 0 <= dim < n_dims:
            raise IndexError(f"dimension {dim} out of range for {n_dims}-dim cell")
        cell[dim] = value
    return tuple(cell)


def apex_cell(n_dims: int) -> Cell:
    """The all-``*`` cell ``(*, *, ..., *)`` summarizing the entire table."""
    return (None,) * n_dims


def bound_dims(cell: Cell) -> tuple[int, ...]:
    """Indexes of the dimensions the cell binds (its group-by dimensions)."""
    return tuple(i for i, v in enumerate(cell) if v is not None)


def n_bound(cell: Cell) -> int:
    """The ``m`` in "m-dimensional cell"."""
    return sum(1 for v in cell if v is not None)


def cuboid_of(cell: Cell) -> int:
    """Bitmask of bound dimensions; identifies the cuboid the cell lives in."""
    mask = 0
    for i, v in enumerate(cell):
        if v is not None:
            mask |= 1 << i
    return mask


def specializes(a: Cell, b: Cell) -> bool:
    """True when ``a`` specializes (can roll up to) ``b``.

    Reflexive: every cell specializes itself.
    """
    return all(bv is None or av == bv for av, bv in zip(a, b))


def roll_up(cell: Cell, dim: int) -> Cell:
    """Generalize ``cell`` by un-binding dimension ``dim`` (set it to ``*``)."""
    if cell[dim] is None:
        raise ValueError(f"dimension {dim} is already * in {cell}")
    return cell[:dim] + (None,) + cell[dim + 1 :]


def drill_down(cell: Cell, dim: int, value: int) -> Cell:
    """Specialize ``cell`` by binding dimension ``dim`` to ``value``."""
    if cell[dim] is not None:
        raise ValueError(f"dimension {dim} is already bound in {cell}")
    return cell[:dim] + (value,) + cell[dim + 1 :]


def project_row(row: Sequence[int], dims: Iterable[int], n_dims: int) -> Cell:
    """The cell obtained by keeping ``row``'s values on ``dims`` only."""
    cell = [None] * n_dims
    for d in dims:
        cell[d] = row[d]
    return tuple(cell)


def project_row_mask(row: Sequence[int], mask: int) -> Cell:
    """Like :func:`project_row` but with the cuboid given as a bitmask."""
    return tuple(v if mask >> i & 1 else None for i, v in enumerate(row))


def matches_row(cell: Cell, row: Sequence[int]) -> bool:
    """True when ``row`` belongs to the group-by group ``cell`` summarizes."""
    return all(cv is None or cv == rv for cv, rv in zip(cell, row))


def cell_str(cell: Cell, decode=None) -> str:
    """Human-readable form, e.g. ``(S1, *, P1, *)``.

    ``decode`` may be a callable ``(dim, code) -> value`` or a
    :class:`~repro.table.encoding.TableEncoder`.
    """
    parts = []
    for i, v in enumerate(cell):
        if v is None:
            parts.append("*")
        elif decode is None:
            parts.append(str(v))
        elif hasattr(decode, "encoders"):
            parts.append(str(decode.encoders[i].decode(v)))
        else:
            parts.append(str(decode(i, v)))
    return "(" + ", ".join(parts) + ")"
