"""Dimension hierarchies: multi-level roll-ups (day -> month -> year).

The paper treats each dimension as flat; real warehouses attach concept
hierarchies to dimensions and ask for cubes at any level combination.
Because range cubing (like every algorithm here) works on encoded integer
columns, a hierarchy is just a chain of code mappings, and cubing at a
coarser level is cubing a *recoded* table — so the whole library, range
compression included, lifts to hierarchical dimensions for free.
Notably, recoding to a coarser level only ever merges values, which adds
correlation, so range cubes get (weakly) more compressed as levels rise —
an effect the tests pin down.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Schema


class Hierarchy:
    """A chain of levels for one dimension, finest first.

    ``mappings[i]`` maps level-``i`` codes to level-``i+1`` codes (as an
    integer array indexed by code).  ``levels`` names the levels, e.g.
    ``["day", "month", "year"]``.
    """

    def __init__(self, levels: Sequence[str], mappings: Sequence[Sequence[int]]) -> None:
        if len(mappings) != len(levels) - 1:
            raise ValueError(
                f"{len(levels)} levels need {len(levels) - 1} mappings, "
                f"got {len(mappings)}"
            )
        self.levels = tuple(levels)
        self.mappings = tuple(np.asarray(m, dtype=np.int64) for m in mappings)
        for i, mapping in enumerate(self.mappings):
            if mapping.ndim != 1:
                raise ValueError(f"mapping {i} must be one-dimensional")
            if mapping.size and mapping.min() < 0:
                raise ValueError(f"mapping {i} contains negative codes")

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def level_index(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise KeyError(f"no level named {level!r}; have {self.levels}") from None

    def roll(self, codes: np.ndarray, to_level: str | int) -> np.ndarray:
        """Map finest-level codes up to ``to_level``."""
        target = to_level if isinstance(to_level, int) else self.level_index(to_level)
        if not 0 <= target < self.n_levels:
            raise IndexError(f"level {to_level!r} out of range")
        rolled = np.asarray(codes, dtype=np.int64)
        for mapping in self.mappings[:target]:
            if rolled.size and rolled.max() >= mapping.size:
                raise ValueError("code outside the hierarchy mapping's domain")
            rolled = mapping[rolled]
        return rolled

    def cardinality_at(self, level: str | int) -> int:
        """Number of distinct codes the hierarchy can produce at a level."""
        target = level if isinstance(level, int) else self.level_index(level)
        if target == 0:
            return int(self.mappings[0].size) if self.mappings else 0
        return int(self.mappings[target - 1].max()) + 1 if self.mappings[target - 1].size else 0

    @classmethod
    def calendar(cls, n_days: int, days_per_month: int = 30, months_per_year: int = 12) -> "Hierarchy":
        """A day -> month -> year toy calendar over ``n_days`` day codes."""
        day_to_month = np.arange(n_days) // days_per_month
        n_months = int(day_to_month.max()) + 1 if n_days else 0
        month_to_year = np.arange(n_months) // months_per_year
        return cls(["day", "month", "year"], [day_to_month, month_to_year])


def roll_up_dimension(
    table: BaseTable,
    dim: int,
    hierarchy: Hierarchy,
    level: str | int,
) -> BaseTable:
    """Recode one dimension of ``table`` at a coarser hierarchy level."""
    codes = table.dim_codes.copy()
    codes[:, dim] = hierarchy.roll(codes[:, dim], level)
    level_name = (
        hierarchy.levels[level] if isinstance(level, int) else level
    )
    old = table.schema.dimensions[dim]
    new_card = int(codes[:, dim].max()) + 1 if table.n_rows else 0
    base_name = old.name.split("@")[0]
    renamed = Dimension(f"{base_name}@{level_name}", new_card)
    dims = list(table.schema.dimensions)
    dims[dim] = renamed
    return BaseTable(Schema(tuple(dims), table.schema.measures), codes, table.measures)


def roll_up_to_levels(
    table: BaseTable,
    hierarchies: Mapping[int, Hierarchy],
    levels: Mapping[int, str | int],
) -> BaseTable:
    """Recode several dimensions at once; dims absent from ``levels`` stay."""
    out = table
    for dim, level in levels.items():
        if dim not in hierarchies:
            raise KeyError(f"dimension {dim} has no hierarchy attached")
        out = roll_up_dimension(out, dim, hierarchies[dim], level)
    return out
