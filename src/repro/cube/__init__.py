"""The data-cube model: cells, the roll-up partial order, cuboids, queries.

This package is the substrate shared by the paper's contribution
(:mod:`repro.core`) and every baseline (:mod:`repro.baselines`): it defines
what a *cell* is, the partial order ``a`` rolls-up-to ``b`` from the paper's
Section 2, the lattice of cuboids, a naive full-cube materializer used as
the correctness oracle, and a query layer that works over any materialized
cube representation.
"""

from repro.cube.cell import (
    STAR,
    apex_cell,
    bound_dims,
    cell_str,
    cuboid_of,
    drill_down,
    make_cell,
    n_bound,
    project_row,
    roll_up,
    specializes,
)
from repro.cube.estimate import (
    StrategyAdvice,
    estimate_cuboid_size,
    estimate_full_cube_size,
    recommend_strategy,
)
from repro.cube.full_cube import MaterializedCube, compute_full_cube, full_cube_size
from repro.cube.hierarchy import Hierarchy, roll_up_dimension, roll_up_to_levels
from repro.cube.lattice import CuboidLattice
from repro.cube.view_selection import ViewSelection, ViewStore, greedy_view_selection, plan_views
from repro.cube.query import CubeQuery

__all__ = [
    "STAR",
    "CubeQuery",
    "CuboidLattice",
    "Hierarchy",
    "MaterializedCube",
    "StrategyAdvice",
    "ViewSelection",
    "ViewStore",
    "apex_cell",
    "bound_dims",
    "cell_str",
    "compute_full_cube",
    "cuboid_of",
    "drill_down",
    "full_cube_size",
    "estimate_cuboid_size",
    "estimate_full_cube_size",
    "make_cell",
    "n_bound",
    "project_row",
    "greedy_view_selection",
    "plan_views",
    "recommend_strategy",
    "roll_up",
    "roll_up_dimension",
    "roll_up_to_levels",
    "specializes",
]
