"""Cube-size estimation by sampling, and a materialization advisor.

Whether to materialize a full cube, an iceberg, or nothing at all depends
on how many cells the cube would have — which is itself expensive to
compute exactly.  This module estimates it from a row sample using the
Guaranteed-Error Estimator (GEE) of Charikar et al. for per-group-by
distinct counts:

    D_hat = sqrt(N / n) * f1 + sum_{j >= 2} f_j

where ``n`` of ``N`` rows were sampled, ``f1`` is the number of groups
seen exactly once in the sample and ``f_j`` the number seen ``j`` times.
Summing the estimate over every cuboid gives the cube size; doing it for
a single dimension subset prices one cuboid.

``recommend_strategy`` turns the estimate into advice, applying the
regime analysis this repository's benchmarks back: dense low-dimension
data favours the array method, correlated/sparse data favours range
cubing, and very high dimensionality favours shell fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.lattice import CuboidLattice
from repro.table.base_table import BaseTable


def gee_distinct_estimate(sample_groups: np.ndarray, n_total: int) -> float:
    """GEE estimate of the distinct count from sampled group labels.

    ``sample_groups`` holds one (hashable-encoded) group id per sampled
    row; ``n_total`` is the full table's row count.
    """
    n_sample = len(sample_groups)
    if n_sample == 0:
        return 0.0
    _, counts = np.unique(sample_groups, return_counts=True)
    f1 = int((counts == 1).sum())
    rest = int((counts > 1).sum())
    scale = np.sqrt(n_total / n_sample)
    return min(float(n_total), scale * f1 + rest)


def _row_keys(codes: np.ndarray, dims: list[int]) -> np.ndarray:
    """Collapse the selected columns into one int64 key per row."""
    keys = np.zeros(codes.shape[0], dtype=np.int64)
    for d in dims:
        keys = keys * np.int64(1_000_003) + codes[:, d]
    return keys


def estimate_cuboid_size(
    table: BaseTable,
    dims: list[int] | tuple[int, ...],
    sample_size: int = 2000,
    seed: int | None = 0,
) -> float:
    """Estimated distinct-group count of one cuboid."""
    if not dims:
        return 1.0 if table.n_rows else 0.0
    if table.n_rows <= sample_size:
        return float(np.unique(table.dim_codes[:, list(dims)], axis=0).shape[0])
    rng = np.random.default_rng(seed)
    rows = rng.choice(table.n_rows, size=sample_size, replace=False)
    keys = _row_keys(table.dim_codes[rows], list(dims))
    return gee_distinct_estimate(keys, table.n_rows)


def estimate_full_cube_size(
    table: BaseTable,
    sample_size: int = 2000,
    seed: int | None = 0,
) -> float:
    """Estimated total cell count over all ``2**n`` cuboids.

    One shared sample serves every cuboid, so the cost is
    ``O(2**n * sample_size)`` — seconds where the exact count would need
    a full scan per cuboid.
    """
    n = table.n_dims
    if table.n_rows == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    if table.n_rows <= sample_size:
        sampled = table.dim_codes
        exact = True
    else:
        rows = rng.choice(table.n_rows, size=sample_size, replace=False)
        sampled = table.dim_codes[rows]
        exact = False
    total = 0.0
    for mask in CuboidLattice(n):
        if mask == 0:
            total += 1.0
            continue
        dims = [i for i in range(n) if mask >> i & 1]
        keys = _row_keys(sampled, dims)
        if exact:
            total += float(np.unique(keys).size)
        else:
            total += gee_distinct_estimate(keys, table.n_rows)
    return total


@dataclass(frozen=True)
class StrategyAdvice:
    """Outcome of :func:`recommend_strategy`."""

    strategy: str  # "multiway" | "range" | "shell-fragments"
    estimated_cells: float
    density: float
    reason: str


def recommend_strategy(
    table: BaseTable,
    sample_size: int = 2000,
    max_dims_for_full: int = 16,
    seed: int | None = 0,
) -> StrategyAdvice:
    """Advise which computation strategy fits the table's regime."""
    from repro.baselines.multiway import recommended_for

    n = table.n_dims
    if n > max_dims_for_full:
        return StrategyAdvice(
            "shell-fragments",
            float("nan"),
            float("nan"),
            f"{n} dimensions means 2**{n} cuboids; avoid full materialization",
        )
    estimated = estimate_full_cube_size(table, sample_size, seed)
    space = 1.0
    for d in range(n):
        space *= max(1, int(table.dim_codes[:, d].max()) + 1 if table.n_rows else 1)
    density = table.n_rows / space if space else 0.0
    if recommended_for(table):
        return StrategyAdvice(
            "multiway",
            estimated,
            density,
            "dense, low-cardinality space: array cubing touches each cell once",
        )
    return StrategyAdvice(
        "range",
        estimated,
        density,
        "sparse or correlated data: the range trie compresses input and output",
    )
