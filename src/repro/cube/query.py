"""OLAP-style queries over any materialized cube representation.

``CubeQuery`` works against any object exposing ``lookup(cell) -> state``
plus an aggregator — both :class:`~repro.cube.full_cube.MaterializedCube`
and :class:`~repro.core.range_cube.RangeCube` qualify.  This demonstrates
the paper's *format-preserving* claim: because a range cube answers the
same cell lookups as a plain cube, existing query layers sit on top of it
unchanged.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cell import Cell, bound_dims, drill_down, make_cell, roll_up
from repro.table.base_table import BaseTable
from repro.table.schema import Schema


class CubeQuery:
    """Name-based point queries, roll-up and drill-down over a cube.

    ``schema`` supplies dimension names; ``table`` (optional) supplies the
    dictionary encoder for raw-value queries and the candidate values for
    drill-downs.
    """

    def __init__(self, cube, schema: Schema, table: BaseTable | None = None) -> None:
        self.cube = cube
        self.schema = schema
        self.table = table

    # ------------------------------------------------------------------

    def _encode(self, dim: int, value: Hashable) -> int:
        if isinstance(value, int) and (self.table is None or self.table.encoder is None):
            return value
        if self.table is None or self.table.encoder is None:
            raise ValueError("raw-value queries need a table with an encoder")
        return self.table.encoder.encoders[dim].encode_existing(value)

    def _lookup_states(self, cells: list[Cell]) -> list:
        """States for many cells at once, batched when the cube supports it."""
        batch = getattr(self.cube, "lookup_batch", None)
        if batch is not None:
            return batch(cells)
        return [self.cube.lookup(cell) for cell in cells]

    def _columnar_store(self):
        """The cube's columnar store when one is (worth) having, else None."""
        getter = getattr(self.cube, "columnar_if_worthwhile", None)
        return getter() if getter is not None else None

    def cell_for(self, bindings: Mapping[str, Hashable]) -> Cell:
        """Build the query cell for ``{dimension name: value}`` bindings."""
        encoded: dict[int, int] = {}
        for name, value in bindings.items():
            dim = self.schema.dimension_index(name)
            encoded[dim] = self._encode(dim, value)
        return make_cell(self.schema.n_dims, encoded)

    # ------------------------------------------------------------------

    def point(self, **bindings: Hashable) -> dict[str, float] | None:
        """Aggregates for one cell, e.g. ``q.point(store="S1", product="P1")``.

        Returns ``None`` when no base tuple matches (an empty cell).
        """
        try:
            cell = self.cell_for(bindings)
        except KeyError:
            return None  # a binding value never occurs in the data
        state = self.cube.lookup(cell)
        if state is None:
            return None
        return self.cube.aggregator.finalize(state)

    def roll_up(self, cell: Cell, dim_name: str) -> tuple[Cell, dict[str, float] | None]:
        """Generalize ``cell`` along one dimension and return the new cell+value."""
        dim = self.schema.dimension_index(dim_name)
        up = roll_up(cell, dim)
        state = self.cube.lookup(up)
        return up, None if state is None else self.cube.aggregator.finalize(state)

    def drill_down(self, cell: Cell, dim_name: str) -> list[tuple[Cell, dict[str, float]]]:
        """All non-empty specializations of ``cell`` along one dimension.

        Candidate values come from the base table when available (exact),
        otherwise from the dimension's cardinality (dense code range).
        """
        dim = self.schema.dimension_index(dim_name)
        if cell[dim] is not None:
            raise ValueError(f"dimension {dim_name!r} is already bound in the query cell")
        candidates: Iterable[int]
        if self.table is not None:
            candidates = sorted(set(self.table.dim_column(dim).tolist()))
        else:
            card = self.schema.dimensions[dim].cardinality
            if card is None:
                raise ValueError("drill-down needs either a table or known cardinality")
            candidates = range(card)
        children = [drill_down(cell, dim, value) for value in candidates]
        return [
            (child, self.cube.aggregator.finalize(state))
            for child, state in zip(children, self._lookup_states(children))
            if state is not None
        ]

    def dice(
        self,
        predicates: Mapping[str, Iterable[Hashable]],
        base_cell: Cell | None = None,
    ) -> dict[str, float] | None:
        """Aggregate over a sub-cube: each dimension restricted to a value set.

        ``q.dice({"store": ["S1", "S2"], "date": ["D2"]})`` sums the
        aggregates of every non-empty cell combination — sound for the
        distributive/algebraic aggregators this library uses, because the
        diced cells partition the matching tuples.  Returns None when no
        combination is non-empty.

        Over a range cube with a columnar store, the whole dice is one
        mask-filtered column selection plus one vectorized state merge
        (:meth:`~repro.core.columnar.ColumnarRangeStore.dice_ids`) —
        the value-combination cross product is never enumerated.
        """
        dims: list[int] = []
        value_lists: list[list[int]] = []
        for name, values in predicates.items():
            dim = self.schema.dimension_index(name)
            if base_cell is not None and base_cell[dim] is not None:
                raise ValueError(f"dimension {name!r} already bound in base_cell")
            dims.append(dim)
            encoded = []
            for value in values:
                try:
                    encoded.append(self._encode(dim, value))
                except KeyError:
                    continue  # value never occurs: contributes nothing
            # Dedupe: predicates are value *sets*, and a repeated value
            # must not double-count its cells on any path.
            value_lists.append(list(dict.fromkeys(encoded)))
        cell = list(base_cell if base_cell is not None else [None] * self.schema.n_dims)
        store = self._columnar_store()
        if store is not None:
            base = {d: v for d, v in enumerate(cell) if v is not None}
            value_sets = {d: set(vs) for d, vs in zip(dims, value_lists)}
            total = store.merge_states(store.dice_ids(value_sets, base))
            return None if total is None else self.cube.aggregator.finalize(total)
        total = None
        merge = self.cube.aggregator.merge

        def walk(index: int) -> None:
            nonlocal total
            if index == len(dims):
                state = self.cube.lookup(tuple(cell))
                if state is not None:
                    total = state if total is None else merge(total, state)
                return
            for value in value_lists[index]:
                cell[dims[index]] = value
                walk(index + 1)
            cell[dims[index]] = None

        walk(0)
        return None if total is None else self.cube.aggregator.finalize(total)

    def slice(self, cell: Cell) -> list[tuple[Cell, dict[str, float]]]:
        """One-level drill-down along every free dimension of ``cell``."""
        out = []
        bound = set(bound_dims(cell))
        for dim, dimension in enumerate(self.schema.dimensions):
            if dim in bound:
                continue
            out.extend(self.drill_down(cell, dimension.name))
        return out

    def decode(self, cell: Cell) -> tuple[Hashable | None, ...]:
        if self.table is not None and self.table.encoder is not None:
            return self.table.encoder.decode_cell(cell)
        return tuple(cell)
