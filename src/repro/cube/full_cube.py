"""Naive full-cube materialization — the correctness oracle.

``compute_full_cube`` enumerates all ``2**n`` cuboids and aggregates every
group-by with plain dictionaries.  It is deliberately simple: every other
algorithm in this repository (range cubing, H-Cubing, BUC, star-cubing) is
tested cell-for-cell against it.

``full_cube_size`` counts the cells of the full cube without materializing
aggregates — it vectorizes the per-cuboid distinct count with numpy so the
benchmark harness can compute the paper's *tuple ratio* metric at scale.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cube.cell import Cell, apex_cell, cuboid_of, n_bound, project_row_mask
from repro.cube.lattice import CuboidLattice
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


class MaterializedCube:
    """A fully enumerated cube: a mapping from cell to aggregate state."""

    def __init__(self, n_dims: int, aggregator: Aggregator, cells: dict[Cell, tuple]) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self._cells = cells

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._cells

    def lookup(self, cell: Cell) -> tuple | None:
        """The aggregate state of ``cell``, or None for an empty cell."""
        return self._cells.get(cell)

    def value(self, cell: Cell) -> dict[str, float] | None:
        state = self.lookup(cell)
        return None if state is None else self.aggregator.finalize(state)

    def cells(self) -> Iterator[tuple[Cell, tuple]]:
        return iter(self._cells.items())

    def iter_cells(self) -> Iterator[Cell]:
        return iter(self._cells)

    def cuboid(self, mask: int) -> dict[Cell, tuple]:
        """All cells of one cuboid, identified by its dimension bitmask."""
        return {c: s for c, s in self._cells.items() if cuboid_of(c) == mask}

    def cuboid_sizes(self) -> dict[int, int]:
        sizes: dict[int, int] = {}
        for cell in self._cells:
            mask = cuboid_of(cell)
            sizes[mask] = sizes.get(mask, 0) + 1
        return sizes

    def as_dict(self) -> dict[Cell, tuple]:
        return dict(self._cells)


def compute_full_cube(
    table: BaseTable,
    aggregator: Aggregator | None = None,
    min_support: int = 1,
) -> MaterializedCube:
    """Aggregate every group-by of every cuboid, one dict pass per cuboid.

    With ``min_support > 1`` this materializes the *iceberg* cube: only
    cells whose tuple count reaches the threshold are kept (the apex cell
    included, if it qualifies).
    """
    agg = aggregator or default_aggregator(table.n_measures)
    n = table.n_dims
    lattice = CuboidLattice(n)
    rows = table.dim_rows()
    states = [agg.state_from_row(m) for m in table.measure_rows()]

    out: dict[Cell, tuple] = {}
    merge = agg.merge
    for mask in lattice:
        if mask == 0:
            if rows:
                total = states[0]
                for s in states[1:]:
                    total = merge(total, s)
                out[apex_cell(n)] = total
            continue
        groups: dict[Cell, tuple] = {}
        for row, state in zip(rows, states):
            cell = project_row_mask(row, mask)
            prev = groups.get(cell)
            groups[cell] = state if prev is None else merge(prev, state)
        out.update(groups)
    if min_support > 1:
        out = {c: s for c, s in out.items() if agg.count(s) >= min_support}
    return MaterializedCube(n, agg, out)


def full_cube_size(table: BaseTable, min_support: int = 1) -> int:
    """Number of cells in the full cube (all cuboids, apex included).

    Counts distinct projected rows per cuboid with numpy.  For
    ``min_support > 1`` it counts iceberg cells instead.
    """
    n = table.n_dims
    if table.n_rows == 0:
        return 0
    total = 0
    codes = table.dim_codes
    for mask in CuboidLattice(n):
        if mask == 0:
            total += 1 if table.n_rows >= min_support else 0
            continue
        dims = [i for i in range(n) if mask >> i & 1]
        sub = codes[:, dims]
        if min_support <= 1:
            total += int(np.unique(sub, axis=0).shape[0])
        else:
            _, counts = np.unique(sub, axis=0, return_counts=True)
            total += int((counts >= min_support).sum())
    return total


def cuboid_cell_counts(table: BaseTable) -> dict[int, int]:
    """Distinct-group count per cuboid mask (apex has exactly one cell)."""
    n = table.n_dims
    out: dict[int, int] = {}
    for mask in CuboidLattice(n):
        if mask == 0:
            out[mask] = 1 if table.n_rows else 0
            continue
        dims = [i for i in range(n) if mask >> i & 1]
        out[mask] = int(np.unique(table.dim_codes[:, dims], axis=0).shape[0])
    return out
