"""Trie reduction: reorganizing an n-dim range trie into an (n-1)-dim one.

This is the transformation of paper Section 5.1 (Figure 6(d)): after the
traversal of a trie over dimensions ``(A1, ..., An)`` has produced every
range binding ``A1``, the trie is reorganized into one over
``(A2, ..., An)``:

1. every root child drops its ``A1`` value (set to ``*``);
2. a child whose remaining key does not expose the new start dimension
   ``A2`` pushes its key values down (either wrapping its children or
   appending to their keys) so its children surface;
3. surfaced siblings that now share the same ``A2`` value are merged,
   re-extracting the dimension values they have in common.

Everything here is **non-destructive**: reorganization allocates fresh
nodes and shares untouched sub-tries, because the recursive step of range
cubing (Algorithm 2) walks into children of the *original* trie after the
parent level has conceptually moved on.

``rebuild_reduced`` is the slow reference implementation — it projects the
trie's leaf assignments onto the remaining dimensions and rebuilds with
Algorithm 1.  The range trie is canonical (insertion-order invariant), so
the property test ``merge reduction == rebuild`` pins the fast path down.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.range_trie import RangeTrie, RangeTrieNode, merge_key
from repro.table.aggregates import Aggregator


def _surface_candidates(
    residual: Sequence[tuple[int, int]],
    children: dict,
    agg,
) -> list[RangeTrieNode]:
    """Nodes exposing the subtree ``residual + children`` at its start dim.

    ``residual`` holds (dim, value) pairs that used to sit *above*
    ``children``.  The returned nodes all have keys beginning at the true
    start dimension of the combined subtree:

    * no residual: the children already surface it;
    * no children: the residual becomes a leaf;
    * residual starts below the children's start dimension: wrap;
    * otherwise: append the residual to every child's key (fresh nodes,
      grandchildren shared).
    """
    if not residual:
        return list(children.values())
    if not children:
        return [RangeTrieNode(tuple(residual), {}, agg)]
    child_start = next(iter(children.values())).key[0][0]
    if residual[0][0] < child_start:
        return [RangeTrieNode(tuple(residual), children, agg)]
    return [
        RangeTrieNode(merge_key(child.key, residual), child.children, child.agg)
        for child in children.values()
    ]


def merge_nodes(a: RangeTrieNode, b: RangeTrieNode, merge_agg: Callable) -> RangeTrieNode:
    """Merge two range-trie nodes that share their start (dim, value) pair.

    The merged node keeps exactly the (dim, value) pairs common to both
    keys — the values still shared by *all* tuples underneath — and the
    leftovers of each side are surfaced and merged recursively.  This is
    the same "find the common dimension values" step Algorithm 1 performs
    during insertion, applied trie-to-trie.
    """
    b_key_set = set(b.key)
    common = tuple(p for p in a.key if p in b_key_set)
    common_set = set(common)
    a_res = [p for p in a.key if p not in common_set]
    b_res = [p for p in b.key if p not in common_set]
    candidates = _surface_candidates(a_res, a.children, a.agg)
    candidates += _surface_candidates(b_res, b.children, b.agg)
    children: dict[int, RangeTrieNode] = {}
    get = children.get
    for cand in candidates:
        value = cand.key[0][1]
        present = get(value)
        children[value] = cand if present is None else merge_nodes(present, cand, merge_agg)
    return RangeTrieNode(common, children, merge_agg(a.agg, b.agg))


def reduce_trie(root: RangeTrieNode, merge_agg: Callable) -> RangeTrieNode:
    """Drop the start dimension of ``root``'s children; return a new root.

    The new root's children form the range trie of the same tuples
    projected onto the remaining dimensions.  ``root`` and its descendants
    are never modified.
    """
    candidates: list[RangeTrieNode] = []
    for child in root.children.values():
        stripped = list(child.key[1:])
        candidates.extend(_surface_candidates(stripped, child.children, child.agg))
    children: dict[int, RangeTrieNode] = {}
    get = children.get
    for cand in candidates:
        value = cand.key[0][1]
        present = get(value)
        children[value] = cand if present is None else merge_nodes(present, cand, merge_agg)
    return RangeTrieNode((), children, root.agg)


def rebuild_reduced(trie: RangeTrie, drop_dim: int, aggregator: Aggregator) -> RangeTrie:
    """Reference reduction: project leaves onto the remaining dims, rebuild.

    Only used for testing the fast merge-based :func:`reduce_trie`; it is
    quadratically slower but unarguably correct.
    """
    reduced = RangeTrie(trie.n_dims, aggregator)
    for assignment, agg in trie.leaf_assignments():
        pairs = sorted((d, v) for d, v in assignment.items() if d != drop_dim)
        reduced.insert_assignment(pairs, agg)
    return reduced
