"""The range cube: a convex, semantics-preserving partition of all cells.

A *range* ``[general, specific]`` (paper Definition 2) stands for every
cell ``c`` with ``general ⪯ c ⪯ specific``; all of them share one
aggregation value (paper Lemma 3), so one *range tuple* (Definition 6)
represents them losslessly.  A coordinate of a range tuple is

* ``v``  — fixed: bound to ``v`` in both endpoints;
* ``v'`` — marked: ``*`` in the general endpoint, ``v`` in the specific
  one, i.e. the represented cells may bind it or not;
* ``*``  — free in both endpoints.

We store a range as its *specific* endpoint plus a bitmask of marked
dimensions; the general endpoint is derived.  A range with ``m`` marked
dimensions covers ``2**m`` cells.

A :class:`RangeCube` is a list of pairwise-disjoint ranges covering every
cell of the full cube exactly once — a *convex partition* in the sense of
Lakshmanan et al., which is what preserves roll-up/drill-down semantics
(paper Theorem 1).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.cube.cell import Cell
from repro.cube.full_cube import MaterializedCube
from repro.table.aggregates import Aggregator


class Range:
    """One range: specific endpoint, marked-dimension mask, aggregate state."""

    __slots__ = ("specific", "mask", "state")

    def __init__(self, specific: Cell, mask: int, state) -> None:
        self.specific = specific
        self.mask = mask
        self.state = state

    @property
    def general(self) -> Cell:
        """The general endpoint: marked dimensions relaxed to ``*``."""
        return tuple(
            None if self.mask >> i & 1 else v for i, v in enumerate(self.specific)
        )

    @property
    def n_marked(self) -> int:
        return self.mask.bit_count()

    @property
    def n_cells(self) -> int:
        """Number of cells this range represents (``2**marked``)."""
        return 1 << self.mask.bit_count()

    def contains(self, cell: Cell) -> bool:
        """Membership test ``general ⪯ cell ⪯ specific``."""
        for i, v in enumerate(self.specific):
            c = cell[i]
            if self.mask >> i & 1:
                if c is not None and c != v:
                    return False
            elif c != v:
                return False
        return True

    def cells(self) -> Iterator[Cell]:
        """Every represented cell, by expanding subsets of the marked dims."""
        marked = [i for i in range(len(self.specific)) if self.mask >> i & 1]
        base = list(self.general)
        for subset in range(1 << len(marked)):
            cell = base[:]
            for j, dim in enumerate(marked):
                if subset >> j & 1:
                    cell[dim] = self.specific[dim]
            yield tuple(cell)

    def to_string(self, decode=None) -> str:
        """The paper's range-tuple notation, e.g. ``(S1, C1', *, D1)``."""
        parts = []
        for i, v in enumerate(self.specific):
            if v is None:
                parts.append("*")
                continue
            text = str(v)
            if decode is not None and hasattr(decode, "encoders"):
                text = str(decode.encoders[i].decode(v))
            parts.append(text + "'" if self.mask >> i & 1 else text)
        return "(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:
        return f"Range{self.to_string()}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Range)
            and self.specific == other.specific
            and self.mask == other.mask
            and self.state == other.state
        )

    def __hash__(self) -> int:
        return hash((self.specific, self.mask))


class RangeCube:
    """The output of range cubing: disjoint ranges partitioning the cube."""

    def __init__(self, n_dims: int, aggregator: Aggregator, ranges: list[Range]) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.ranges = ranges
        self._index = None
        self._columnar = None
        # Reentrant: building the index under the lock may itself call
        # to_columnar() (the columnar strategy shares the store).
        self._index_lock = threading.RLock()

    def __getstate__(self) -> dict:
        # The lock is not picklable and the derived read structures are
        # cheaper to rebuild than to ship; drop them.
        state = self.__dict__.copy()
        state["_index"] = None
        state["_columnar"] = None
        del state["_index_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_columnar", None)
        self._index_lock = threading.RLock()

    # -- size ------------------------------------------------------------

    @property
    def n_ranges(self) -> int:
        """The paper's "number of tuples in the range cube"."""
        return len(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    @property
    def n_cells(self) -> int:
        """Number of cells represented — the full cube's size when complete.

        Valid because the ranges are disjoint: the sizes simply add up.
        """
        return sum(1 << r.mask.bit_count() for r in self.ranges)

    def tuple_ratio(self, full_cube_cells: int | None = None) -> float:
        """Range-cube tuples over full-cube cells (paper's space metric)."""
        total = full_cube_cells if full_cube_cells is not None else self.n_cells
        return self.n_ranges / total if total else 1.0

    # -- access ----------------------------------------------------------

    def __iter__(self) -> Iterator[Range]:
        return iter(self.ranges)

    def expand(self) -> Iterator[tuple[Cell, tuple]]:
        """Every (cell, aggregate state) pair — the uncompressed cube."""
        for r in self.ranges:
            for cell in r.cells():
                yield cell, r.state

    def cuboid(self, mask: int) -> dict[Cell, tuple]:
        """All cells of one cuboid (dimension bitmask), without full expansion.

        A range contributes to cuboid ``mask`` exactly when its fixed
        dimensions are all in ``mask`` and ``mask`` is covered by fixed
        plus marked dimensions — in that case it contributes the single
        cell that binds ``mask``'s dimensions to the specific endpoint.
        Cost is one pass over the ranges, independent of cube size —
        and for cubes past the columnar threshold, one memoized
        mask-filtered column selection (see
        :class:`~repro.core.columnar.ColumnarRangeStore`).
        """
        columnar = self.columnar_if_worthwhile()
        if columnar is not None:
            return columnar.cuboid(mask)
        out: dict[Cell, tuple] = {}
        n = self.n_dims
        for r in self.ranges:
            fixed = 0
            bound = 0
            for i, v in enumerate(r.specific):
                if v is not None:
                    bound |= 1 << i
                    if not r.mask >> i & 1:
                        fixed |= 1 << i
            if fixed & ~mask or mask & ~bound:
                continue
            cell = tuple(
                r.specific[i] if mask >> i & 1 else None for i in range(n)
            )
            out[cell] = r.state
        return out

    def cuboid_sizes(self) -> dict[int, int]:
        """Cells per cuboid mask, computed range-by-range (no expansion).

        Large cubes answer from the columnar store's memoized census
        (one ``np.unique`` over the mask columns), so repeated calls are
        free after the first.
        """
        columnar = self.columnar_if_worthwhile()
        if columnar is not None:
            return columnar.cuboid_sizes()
        sizes: dict[int, int] = {}
        for r in self.ranges:
            fixed = 0
            marked_dims = []
            for i, v in enumerate(r.specific):
                if v is None:
                    continue
                if r.mask >> i & 1:
                    marked_dims.append(i)
                else:
                    fixed |= 1 << i
            for subset in range(1 << len(marked_dims)):
                mask = fixed
                for j, dim in enumerate(marked_dims):
                    if subset >> j & 1:
                        mask |= 1 << dim
                sizes[mask] = sizes.get(mask, 0) + 1
        return sizes

    def to_materialized(self) -> MaterializedCube:
        """Expand into a plain cell dictionary (for tests and small cubes)."""
        return MaterializedCube(self.n_dims, self.aggregator, dict(self.expand()))

    def to_columnar(self):
        """The frozen columnar read layout, built once and cached.

        See :class:`~repro.core.columnar.ColumnarRangeStore`: numpy
        specific/mask columns plus per-dimension inverted postings,
        which back :meth:`lookup_batch`, the large-cube :meth:`cuboid`
        path and the point-query index above its size threshold.
        Double-checked under the index lock for the same reason as
        :meth:`_ensure_index`.
        """
        store = self._columnar
        if store is None:
            with self._index_lock:
                store = self._columnar
                if store is None:
                    from repro.core.columnar import ColumnarRangeStore

                    store = ColumnarRangeStore(self)
                    self._columnar = store
        return store

    def columnar_if_worthwhile(self):
        """The columnar store when built already or worth building."""
        store = self._columnar
        if store is not None:
            return store
        from repro.core.columnar import prefers_columnar

        return self.to_columnar() if prefers_columnar(self) else None

    def _ensure_index(self):
        """The point-query index, built on first use.

        Double-checked under a lock: the serving layer issues first
        lookups from many threads at once, and an unguarded lazy build
        would construct the index twice (or let a reader observe a
        half-initialized attribute).  The fast path stays a single
        attribute read.
        """
        index = self._index
        if index is None:
            with self._index_lock:
                index = self._index
                if index is None:
                    from repro.core.range_index import RangeCubeIndex

                    index = RangeCubeIndex(self)
                    self._index = index
        return index

    def lookup(self, cell: Cell):
        """Aggregate state of ``cell``, or None if the cell is empty.

        Delegates to a lazily built :class:`~repro.core.range_index.RangeCubeIndex`.
        """
        found = self._ensure_index().find(cell)
        return None if found is None else found.state

    def lookup_batch(self, cells) -> list:
        """Aggregate states for a whole batch of cells (None marks empties).

        Resolves the batch in one :meth:`RangeCubeIndex.find_batch` call
        — above the columnar threshold that is a grouped postings /
        cuboid-map resolution instead of per-cell hash probing.
        """
        found = self._ensure_index().find_batch(cells)
        return [None if r is None else r.state for r in found]

    def range_of(self, cell: Cell):
        """The unique range containing ``cell`` (None if the cell is empty)."""
        return self._ensure_index().find(cell)

    def value(self, cell: Cell) -> dict[str, float] | None:
        state = self.lookup(cell)
        return None if state is None else self.aggregator.finalize(state)

    # -- presentation ----------------------------------------------------

    def sorted_strings(self, decode=None, limit: int | None = None) -> list[str]:
        lines = sorted(r.to_string(decode) for r in self.ranges)
        return lines if limit is None else lines[:limit]

    def __repr__(self) -> str:
        return f"RangeCube({self.n_ranges} ranges over {self.n_dims} dims)"
