"""Point-query index over a range cube.

The paper notes (Section 4) that a range cube preserves the native tuple
format of a data cube, so index structures apply to it naturally; the
related quotient-cube work indexes cell classes with a QC-tree.  Here we
provide the analogous capability for ranges: finding, for an arbitrary
query cell, the unique range that contains it.

A cell ``q`` belongs to range ``r`` exactly when ``q`` is obtained from
``r``'s general endpoint by binding some subset of ``r``'s *marked*
dimensions — equivalently, ``r``'s general endpoint is ``q`` with some
subset of ``q``'s bound dimensions relaxed to ``*``.  The index therefore
hashes ranges by their general endpoint and probes the ``2**m`` candidate
generalizations of an ``m``-dimensional query cell, verifying each hit
against the specific endpoint.  Typical analytical queries bind few
dimensions, so the probe count stays small; wide query cells degrade
gracefully to a linear scan of the ranges (which both paths answer
identically) instead of enumerating an exponential probe set.
"""

from __future__ import annotations

from repro.core.range_cube import Range, RangeCube
from repro.cube.cell import Cell, bound_dims

#: Never probe more than 2**MAX_PROBE_DIMS generalizations per lookup;
#: wider cells always take the linear-scan path.
MAX_PROBE_DIMS = 24

#: Prefer the scan once the probe count exceeds this multiple of the
#: range count — hash probes are cheaper per step than ``Range.contains``,
#: but not by more than this factor.
_SCAN_COST_FACTOR = 4


class RangeCubeIndex:
    """Hash index from general endpoints to ranges.

    ``scan_fallbacks`` counts the lookups answered by the linear scan
    (wide cells, or probe sets larger than the cube itself) — useful for
    spotting workloads that defeat the hash index.
    """

    def __init__(self, cube: RangeCube) -> None:
        self.cube = cube
        self.scan_fallbacks = 0
        self._by_general: dict[Cell, list[Range]] = {}
        for r in cube.ranges:
            self._by_general.setdefault(r.general, []).append(r)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_general.values())

    def _scan(self, cell: Cell) -> Range | None:
        self.scan_fallbacks += 1
        for r in self.cube.ranges:
            if r.contains(cell):
                return r
        return None

    def find(self, cell: Cell) -> Range | None:
        """The unique range containing ``cell`` (None if the cell is empty)."""
        if len(cell) != self.cube.n_dims:
            raise ValueError(
                f"query cell has {len(cell)} dims, cube has {self.cube.n_dims}"
            )
        bound = bound_dims(cell)
        if len(bound) > MAX_PROBE_DIMS or (
            1 << len(bound)
        ) > _SCAN_COST_FACTOR * len(self.cube.ranges):
            return self._scan(cell)
        base = list(cell)
        for subset in range(1 << len(bound)):
            candidate = base[:]
            for j, dim in enumerate(bound):
                if subset >> j & 1:
                    candidate[dim] = None
            for r in self._by_general.get(tuple(candidate), ()):
                if r.contains(cell):
                    return r
        return None
