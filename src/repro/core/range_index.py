"""Point-query index over a range cube.

The paper notes (Section 4) that a range cube preserves the native tuple
format of a data cube, so index structures apply to it naturally; the
related quotient-cube work indexes cell classes with a QC-tree.  Here we
provide the analogous capability for ranges: finding, for an arbitrary
query cell, the unique range that contains it.

A cell ``q`` belongs to range ``r`` exactly when ``q`` is obtained from
``r``'s general endpoint by binding some subset of ``r``'s *marked*
dimensions — equivalently, ``r``'s general endpoint is ``q`` with some
subset of ``q``'s bound dimensions relaxed to ``*``.  Two strategies
answer that membership question:

* ``"hash"`` — hash ranges by their general endpoint and probe the
  ``2**m`` candidate generalizations of an ``m``-dimensional query cell,
  verifying each hit against the specific endpoint.  Typical analytical
  queries bind few dimensions, so the probe count stays small; wide
  query cells degrade gracefully to a linear scan of the ranges (which
  both paths answer identically) instead of enumerating an exponential
  probe set.
* ``"columnar"`` — delegate to the cube's frozen
  :class:`~repro.core.columnar.ColumnarRangeStore`: inverted-postings
  intersection with one vectorized containment check per lookup, and
  memoized cuboid maps for :meth:`RangeCubeIndex.find_batch`.

The default (``"auto"``) picks columnar once the cube passes
:data:`~repro.core.columnar.COLUMNAR_THRESHOLD` ranges and hash below
it, where building numpy columns costs more than it saves.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.columnar import prefers_columnar
from repro.core.range_cube import Range, RangeCube
from repro.cube.cell import Cell, bound_dims
from repro.obs import get_registry

#: Never probe more than 2**MAX_PROBE_DIMS generalizations per lookup;
#: wider cells always take the linear-scan path.
MAX_PROBE_DIMS = 24

#: Prefer the scan once the probe count exceeds this multiple of the
#: range count — hash probes are cheaper per step than ``Range.contains``,
#: but not by more than this factor.
_SCAN_COST_FACTOR = 4

_SCAN_FALLBACKS = get_registry().counter(
    "repro_query_scan_fallbacks_total",
    "Point lookups answered by a linear scan over all ranges.",
)


class RangeCubeIndex:
    """Point-query index: hash probing or columnar postings, per ``strategy``.

    ``scan_fallbacks`` counts the lookups answered by the linear scan
    (wide cells, or probe sets larger than the cube itself) — useful for
    spotting workloads that defeat the hash index; each one also lands
    in the ``repro_query_scan_fallbacks_total`` counter.
    """

    def __init__(self, cube: RangeCube, strategy: str = "auto") -> None:
        if strategy not in ("auto", "hash", "columnar"):
            raise ValueError(
                f"unknown strategy {strategy!r}; use 'auto', 'hash' or 'columnar'"
            )
        self.cube = cube
        self.scan_fallbacks = 0
        self._n_ranges = len(cube.ranges)
        if strategy == "auto":
            strategy = "columnar" if prefers_columnar(cube) else "hash"
        self.strategy = strategy
        self._store = cube.to_columnar() if strategy == "columnar" else None
        # The general-endpoint hash map only exists on the hash path;
        # building it for a columnar cube would double the index memory
        # for a structure no lookup touches.
        self._by_general: dict[Cell, list[Range]] = {}
        if self._store is None:
            for r in cube.ranges:
                self._by_general.setdefault(r.general, []).append(r)

    def __len__(self) -> int:
        return self._n_ranges

    def _scan(self, cell: Cell) -> Range | None:
        self.scan_fallbacks += 1
        _SCAN_FALLBACKS.inc()
        for r in self.cube.ranges:
            if r.contains(cell):
                return r
        return None

    def _check_arity(self, cell: Cell) -> None:
        if len(cell) != self.cube.n_dims:
            raise ValueError(
                f"query cell has {len(cell)} dims, cube has {self.cube.n_dims}"
            )

    def find(self, cell: Cell) -> Range | None:
        """The unique range containing ``cell`` (None if the cell is empty)."""
        self._check_arity(cell)
        if self._store is not None:
            return self._store.find(cell)
        bound = bound_dims(cell)
        if len(bound) > MAX_PROBE_DIMS or (
            1 << len(bound)
        ) > _SCAN_COST_FACTOR * self._n_ranges:
            return self._scan(cell)
        base = list(cell)
        for subset in range(1 << len(bound)):
            candidate = base[:]
            for j, dim in enumerate(bound):
                if subset >> j & 1:
                    candidate[dim] = None
            for r in self._by_general.get(tuple(candidate), ()):
                if r.contains(cell):
                    return r
        return None

    def find_batch(self, cells: Sequence[Cell]) -> list[Range | None]:
        """The containing range per query cell (None marks empty cells).

        On the columnar path the batch is grouped by bound-dimension
        mask and resolved through memoized cuboid maps — the amortized
        cost is one dict probe per cell.  The hash path simply loops
        :meth:`find`, so both strategies answer identically.
        """
        for cell in cells:
            self._check_arity(cell)
        if self._store is not None:
            return self._store.find_batch(cells)
        return [self.find(cell) for cell in cells]
