"""Partitioned range cubing: build per partition in parallel, tree-merge.

The range trie is canonical — the same tuple multiset always yields the
same trie — and :func:`repro.core.reduction.merge_nodes` knows how to
fuse two tries over the same dimensions while re-extracting shared
values.  Together these give a divide-and-conquer loading path: split the
fact table into partitions, build a trie per partition (independently, on
separate cores), and merge.  The merged trie is *identical* to a
monolithic load, so everything downstream (range cubing, incremental
maintenance, persistence) is unaffected; the property tests assert the
structural equality outright.

:func:`parallel_range_cubing` is the full pipeline, parameterized by a
pluggable executor (:mod:`repro.exec`):

1. **partition** — slice the table's encoded numpy code/measure arrays
   row-wise (no Python-tuple conversion: partitions ship to workers as
   arrays and decode there);
2. **build** — construct one range trie per partition in the executor's
   workers via the vectorized sort-based bulk builder
   (:meth:`~repro.core.range_trie.RangeTrie.bulk_build_arrays`;
   :func:`build_trie_partition` is a module-level function so it
   pickles by reference for :class:`~repro.exec.ProcessExecutor`);
3. **merge** — fuse the per-partition tries with a log-depth pairwise
   tree reduction (balanced merges keep intermediate tries small,
   unlike a left fold whose accumulator grows monotonically);
4. **cube** — run the range-cubing traversal (Algorithm 2) once on the
   merged trie.

Per-stage wall-clock and counters flow through
:class:`repro.metrics.StageTimings` so the harness and
``benchmarks/bench_partitioned.py`` can report the breakdown.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.range_cube import RangeCube
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import merge_nodes
from repro.exec.executors import Executor, resolve_executor
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.timing import StageTimings
from repro.obs import get_registry, get_tracer
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable

_TRACER = get_tracer()
_REGISTRY = get_registry()
_PARTITIONS = _REGISTRY.counter(
    "repro_partitions_built_total",
    "Per-partition trie builds completed by the parallel engine.",
)
_PARTITION_SECONDS = _REGISTRY.histogram(
    "repro_partition_build_seconds",
    "Per-partition trie build wall-clock seconds (folded from workers).",
    ("executor",),
)


def merge_tries(tries: Sequence[RangeTrie]) -> RangeTrie:
    """Fuse tries over the same dimensions into one canonical trie.

    Aggregates are merged with the first trie's aggregator.  The merge
    itself never modifies the inputs (it allocates fresh nodes where keys
    change), but the result *shares* untouched sub-tries with them — so
    treat the inputs as consumed if the merged trie will absorb further
    insertions (Algorithm 1 mutates nodes in place).
    """
    if not tries:
        raise ValueError("need at least one trie to merge")
    dims = {t.n_dims for t in tries}
    if len(dims) > 1:
        raise ValueError(f"tries disagree on dimensionality: {sorted(dims)}")
    base = tries[0]
    merged = RangeTrie(base.n_dims, base.aggregator)
    merge_agg = base.aggregator.merge
    children: dict[int, RangeTrieNode] = {}
    total = None
    for trie in tries:
        if trie.root.agg is None:
            continue
        total = trie.root.agg if total is None else merge_agg(total, trie.root.agg)
        for value, child in trie.root.children.items():
            present = children.get(value)
            children[value] = (
                child if present is None else merge_nodes(present, child, merge_agg)
            )
    merged.root = RangeTrieNode((), children, total)
    return merged


def tree_merge_tries(tries: Sequence[RangeTrie]) -> RangeTrie:
    """Merge tries pairwise, log-depth, instead of a left fold.

    A left fold re-walks the ever-growing accumulator once per input; the
    balanced tree merges tries of comparable size at every level, so the
    total restructuring work is spread evenly and the intermediate tries
    stay as small as the data allows.  The result is identical either way
    (the trie is canonical).
    """
    if not tries:
        raise ValueError("need at least one trie to merge")
    level = list(tries)
    while len(level) > 1:
        merged = [
            merge_tries(level[i : i + 2]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def chunked(table: BaseTable, n_chunks: int) -> Iterable[BaseTable]:
    """Split a table row-wise into up to ``n_chunks`` non-empty chunks."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be at least 1")
    size = max(1, -(-table.n_rows // n_chunks))  # ceil division
    for start in range(0, table.n_rows, size):
        yield BaseTable(
            table.schema,
            table.dim_codes[start : start + size],
            table.measures[start : start + size],
        )


def partition_payloads(
    table: BaseTable, n_partitions: int, aggregator: Aggregator
) -> list[tuple[np.ndarray, np.ndarray, Aggregator]]:
    """Slice the table into pickle-cheap worker payloads.

    Each payload is ``(dim_codes, measures, aggregator)`` — contiguous
    numpy slices, *not* decoded Python rows, so shipping a partition to a
    :class:`~repro.exec.ProcessExecutor` worker costs one array pickle.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be at least 1")
    size = max(1, -(-table.n_rows // n_partitions))  # ceil division
    return [
        (
            table.dim_codes[start : start + size],
            table.measures[start : start + size],
            aggregator,
        )
        for start in range(0, table.n_rows, size)
    ]


def shard_partition_payloads(
    table: BaseTable, n_shards: int, shard_dim: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Value-routed shard slices: row ``r`` goes to ``r[shard_dim] % n_shards``.

    Unlike :func:`partition_payloads` (contiguous row ranges, good for a
    build that merges everything back together), this split is *routable*:
    a query that binds ``shard_dim`` to code ``v`` can only be answered by
    shard ``v % n_shards``, so the shard router sends it to exactly one
    worker instead of fanning out.  Every shard gets a payload (possibly
    empty) so shard ids and residue classes stay aligned.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if not 0 <= shard_dim < table.n_dims:
        raise ValueError(f"shard_dim {shard_dim} out of range for {table.n_dims} dims")
    routes = table.dim_codes[:, shard_dim] % n_shards
    return [
        (
            np.ascontiguousarray(table.dim_codes[routes == shard]),
            np.ascontiguousarray(table.measures[routes == shard]),
        )
        for shard in range(n_shards)
    ]


def build_trie_partition(
    payload: tuple[np.ndarray, np.ndarray, Aggregator],
) -> RangeTrie:
    """Worker task: build the range trie of one partition.

    Module-level so it pickles by reference; the partition's raw numpy
    slices feed the vectorized bulk builder directly *inside* the worker,
    keeping the cross-process traffic to the bare arrays.
    """
    dim_codes, measures, aggregator = payload
    return RangeTrie.bulk_build_arrays(
        dim_codes.shape[1], dim_codes, measures, aggregator
    )


def build_trie_partition_timed(
    payload: tuple[np.ndarray, np.ndarray, Aggregator],
) -> tuple[RangeTrie, dict]:
    """Worker task: build one partition's trie *and* report its timing.

    Span objects never cross the pickle boundary — the worker measures
    wall-clock start and duration (plus a one-sample latency histogram in
    :meth:`LatencyHistogram.to_dict` form) and ships a plain dict; the
    parent synthesizes a child span per partition and folds the
    histograms into the ``repro_partition_build_seconds`` metric via
    histogram ``merge``.  Timing the build inside the worker keeps
    executor queueing/pickling overhead out of the reported number.
    """
    import time

    start_wall = time.time()
    start = time.perf_counter()
    trie = build_trie_partition(payload)
    duration = time.perf_counter() - start
    histogram = LatencyHistogram()
    histogram.record(duration)
    return trie, {
        "start_wall": start_wall,
        "duration": duration,
        "rows": int(payload[0].shape[0]),
        "trie_nodes": trie.n_nodes(),
        "histogram": histogram.to_dict(),
    }


def build_partitioned(
    table: BaseTable,
    n_chunks: int = 4,
    aggregator: Aggregator | None = None,
    executor: str | Executor | None = None,
) -> RangeTrie:
    """Build the range trie of ``table`` chunk-by-chunk and merge.

    Produces a trie structurally identical to ``RangeTrie.build(table)``.
    With an ``executor`` (name or instance, see :mod:`repro.exec`) the
    chunk builds run in parallel workers.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    if table.n_rows == 0:
        return RangeTrie(table.n_dims, agg)
    exec_obj, owned = resolve_executor(executor)
    try:
        tries = exec_obj.map(
            build_trie_partition, partition_payloads(table, n_chunks, agg)
        )
    finally:
        if owned:
            exec_obj.close()
    return tree_merge_tries(tries)


def parallel_range_cubing(
    table: BaseTable,
    *,
    executor: str | Executor | None = None,
    n_partitions: int | None = None,
    workers: int | None = None,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | str | None = "auto",
    min_support: int = 1,
) -> RangeCube:
    """Compute the range cube via the parallel partitioned pipeline.

    Equivalent to :func:`repro.core.range_cubing.range_cubing` — the
    merged trie is canonical, so the resulting cube is identical — but the
    per-partition trie builds run on ``executor`` (an executor name from
    :func:`repro.exec.available_executors`, an :class:`~repro.exec.Executor`
    instance, or None for serial).  ``n_partitions`` defaults to the
    executor's worker count.  ``dim_order`` accepts the same spellings as
    the serial path (``"auto"``, ``None``, a sequence or a
    :class:`~repro.tune.TuningPlan`); with ``"auto"`` the plan is computed
    once on the coordinator and the already-transformed partitions are
    shipped to the workers.
    """
    cube, _ = parallel_range_cubing_detailed(
        table,
        executor=executor,
        n_partitions=n_partitions,
        workers=workers,
        aggregator=aggregator,
        dim_order=dim_order,
        min_support=min_support,
    )
    return cube


def parallel_range_cubing_detailed(
    table: BaseTable,
    *,
    executor: str | Executor | None = None,
    n_partitions: int | None = None,
    workers: int | None = None,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | str | None = "auto",
    min_support: int = 1,
) -> tuple[RangeCube, dict[str, float]]:
    """Like :func:`parallel_range_cubing`, plus per-stage statistics.

    The stats dict reports the stage breakdown (``partition_s``,
    ``build_s``, ``merge_s``, ``cube_s``, ``total_seconds``) along with
    ``n_partitions``, ``tries_merged``, ``trie_nodes`` and the executor
    configuration — the numbers ``bench_partitioned.py`` and the harness
    print.
    """
    # Imported here (not at module top) to avoid a cycle: range_cubing is
    # the serial facade and sits above the trie machinery this module and
    # it both use.
    from repro.core.range_cubing import _remap_ranges, _traverse
    from repro.tune import resolve_plan

    agg = aggregator or default_aggregator(table.n_measures)
    exec_obj, owned = resolve_executor(executor, workers)
    parts = n_partitions if n_partitions is not None else max(1, exec_obj.workers)
    if parts < 1:
        raise ValueError("n_partitions must be at least 1")
    # Plan once on the coordinator; workers receive partitions of the
    # already-transformed table, so they need no tuning logic at all.
    plan, order = resolve_plan(table, dim_order)
    if plan is not None:
        working = plan.transform_table(table)
    else:
        working = table if order is None else table.reordered(order)

    timings = StageTimings()
    try:
        with _TRACER.span(
            "parallel_range_cubing",
            rows=table.n_rows,
            dims=table.n_dims,
            executor=exec_obj.name,
            workers=exec_obj.workers,
            n_partitions=parts,
        ):
            with timings.stage("partition"), _TRACER.span("partition"):
                payloads = partition_payloads(working, parts, agg)
            with timings.stage("build"), _TRACER.span("build") as build_span:
                results = exec_obj.map(build_trie_partition_timed, payloads)
                tries = [trie for trie, _ in results]
            for index, (_, info) in enumerate(results):
                _TRACER.record_span(
                    "partition_build",
                    start_wall=info["start_wall"],
                    duration=info["duration"],
                    parent=build_span,
                    attributes={
                        "partition": index,
                        "rows": info["rows"],
                        "trie_nodes": info["trie_nodes"],
                    },
                )
                _PARTITION_SECONDS.merge(
                    LatencyHistogram.from_dict(info["histogram"]),
                    executor=exec_obj.name,
                )
            _PARTITIONS.inc(len(results))
            with timings.stage("merge"), _TRACER.span("merge"):
                trie = (
                    tree_merge_tries(tries)
                    if tries
                    else RangeTrie(working.n_dims, agg)
                )
            with timings.stage("cube"), _TRACER.span("cube"):
                ranges = _traverse(trie, agg, min_support)
    finally:
        if owned:
            exec_obj.close()

    if plan is not None and not plan.is_identity:
        ranges = plan.restore_ranges(ranges)
    elif order is not None:
        ranges = _remap_ranges(ranges, order)
    timings.count("n_partitions", len(payloads))
    timings.count("tries_merged", len(tries))
    timings.count("trie_nodes", trie.n_nodes())
    stats = timings.as_stats()
    stats["executor"] = exec_obj.name
    stats["workers"] = exec_obj.workers
    stats["total_seconds"] = timings.total_seconds
    if plan is not None:
        stats["tuning"] = plan.to_json()
    return RangeCube(table.n_dims, agg, ranges), stats
