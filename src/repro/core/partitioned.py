"""Partitioned range-trie construction: build per chunk, merge tries.

The range trie is canonical — the same tuple multiset always yields the
same trie — and :func:`repro.core.reduction.merge_nodes` knows how to
fuse two tries over the same dimensions while re-extracting shared
values.  Together these give a divide-and-conquer loading path: split the
fact table into chunks, build a trie per chunk (independently — e.g. on
separate cores or machines), and merge.  The merged trie is *identical*
to a monolithic load, so everything downstream (range cubing, incremental
maintenance, persistence) is unaffected; the property tests assert the
structural equality outright.

This is the data-partitioned parallelism classic cube papers (BUC,
MultiWay) describe for their own structures, realized here for the range
trie; the merge itself is sequential, but chunk builds — the dominant
cost — are embarrassingly parallel.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import merge_nodes
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


def merge_tries(tries: Sequence[RangeTrie]) -> RangeTrie:
    """Fuse tries over the same dimensions into one canonical trie.

    Aggregates are merged with the first trie's aggregator.  The merge
    itself never modifies the inputs (it allocates fresh nodes where keys
    change), but the result *shares* untouched sub-tries with them — so
    treat the inputs as consumed if the merged trie will absorb further
    insertions (Algorithm 1 mutates nodes in place).
    """
    if not tries:
        raise ValueError("need at least one trie to merge")
    dims = {t.n_dims for t in tries}
    if len(dims) > 1:
        raise ValueError(f"tries disagree on dimensionality: {sorted(dims)}")
    base = tries[0]
    merged = RangeTrie(base.n_dims, base.aggregator)
    merge_agg = base.aggregator.merge
    children: dict[int, RangeTrieNode] = {}
    total = None
    for trie in tries:
        if trie.root.agg is None:
            continue
        total = trie.root.agg if total is None else merge_agg(total, trie.root.agg)
        for value, child in trie.root.children.items():
            present = children.get(value)
            children[value] = (
                child if present is None else merge_nodes(present, child, merge_agg)
            )
    merged.root = RangeTrieNode((), children, total)
    return merged


def chunked(table: BaseTable, n_chunks: int) -> Iterable[BaseTable]:
    """Split a table row-wise into up to ``n_chunks`` non-empty chunks."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be at least 1")
    size = max(1, -(-table.n_rows // n_chunks))  # ceil division
    for start in range(0, table.n_rows, size):
        yield BaseTable(
            table.schema,
            table.dim_codes[start : start + size],
            table.measures[start : start + size],
        )


def build_partitioned(
    table: BaseTable,
    n_chunks: int = 4,
    aggregator: Aggregator | None = None,
) -> RangeTrie:
    """Build the range trie of ``table`` chunk-by-chunk and merge.

    Produces a trie structurally identical to ``RangeTrie.build(table)``.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    if table.n_rows == 0:
        return RangeTrie(table.n_dims, agg)
    tries = [RangeTrie.build(chunk, agg) for chunk in chunked(table, n_chunks)]
    return merge_tries(tries)
