"""Columnar read path for range cubes: frozen arrays + inverted postings.

The paper's Section 4 argument is that a range cube keeps the native
tuple format of a data cube, so ordinary index structures apply to it
unchanged.  :class:`ColumnarRangeStore` takes that literally: it freezes
a :class:`~repro.core.range_cube.RangeCube` into a handful of numpy
columns — in the spirit of Szépkúti's compressed multidimensional
layouts — so whole *batches* of queries resolve inside vectorized
kernels instead of one Python object walk per cell.

The layout, for a cube of ``R`` ranges over ``n`` dimensions:

* ``specific`` — ``(R, n)`` int32 matrix of specific-endpoint codes,
  with :data:`STAR_CODE` (-1) as the sentinel for ``*``;
* ``marked_mask`` / ``bound_mask`` / ``fixed_mask`` — int64 per-range
  bitmasks of the marked dimensions, the dimensions bound in the
  specific endpoint, and their difference (``bound & ~marked``), which
  is everything the general endpoint still binds;
* ``accept_words`` — the general-endpoint mask as a packed uint64
  bitset, one word-row per dimension: bit ``r`` of ``accept_words[d]``
  says range ``r`` accepts ``*`` on dimension ``d`` (the dimension is
  marked or free), so an all-``*`` probe is a bitwise AND across rows;
* ``counts`` plus per-measure state columns — the aggregate states
  unpacked column-wise (COUNT always; SUM/MIN/MAX/AVG components when
  the aggregator uses the stock algebra), which lets ``merge_states``
  combine thousands of ranges with a few array reductions;
* per-dimension *inverted postings* — ``value -> sorted range-id
  array`` for every code a dimension binds, with a dedicated ``*``
  posting for the ranges that leave it free.

Query answering:

* :meth:`find_id` intersects the bound dimensions' postings
  (sorted-merge via ``np.intersect1d``) and applies one vectorized
  containment check (``fixed_mask & ~query_mask == 0``) in place of the
  hash index's ``2**m`` probe loop;
* :meth:`find_batch` groups a batch of cells by bound-dimension mask
  and answers each group from a memoized *cuboid map* (projected
  specific endpoint -> range id), so steady-state batched lookups cost
  one dict probe per cell;
* :meth:`cuboid` / :meth:`cuboid_sizes` / :meth:`merge_states` answer
  slice/dice-style questions by mask-filtered column selection, reusing
  the same memoized per-mask range-id lists.

Everything is read-only after construction; the serving layer freezes
one store per immutable cube version.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import reduce
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.cube.cell import Cell
from repro.obs import OBS_STATE, get_registry, get_tracer
from repro.table.aggregates import Aggregator, CountAggregator, SumCountAggregator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.range_cube import Range, RangeCube

#: Sentinel code standing for ``*`` (``None``) in the specific matrix.
STAR_CODE = -1

#: Bitmask columns are int64, so the columnar path covers up to 62 dims.
MAX_COLUMNAR_DIMS = 62

#: Cubes with at least this many ranges answer reads through the
#: columnar store; below it, the per-cell hash index wins (array setup
#: costs more than it saves on a handful of ranges).
COLUMNAR_THRESHOLD = 512


def prefers_columnar(cube: "RangeCube") -> bool:
    """Whether reads over ``cube`` should go through the columnar store."""
    return len(cube.ranges) >= COLUMNAR_THRESHOLD and cube.n_dims <= MAX_COLUMNAR_DIMS

#: ``find_batch`` builds a memoized cuboid map for a mask only when the
#: group asking for it is large enough relative to the candidate count;
#: below that, per-cell postings intersection is cheaper than the map.
_MAP_BUILD_FACTOR = 64

_TRACER = get_tracer()
_REGISTRY = get_registry()
_POSTINGS_HITS = _REGISTRY.counter(
    "repro_query_postings_hits_total",
    "Point lookups resolved by inverted-postings intersection.",
)
_CUBOID_MAP_HITS = _REGISTRY.counter(
    "repro_query_cuboid_map_hits_total",
    "Batched point lookups resolved through a memoized cuboid map.",
)
_FIND_BATCH_SIZE = _REGISTRY.histogram(
    "repro_query_batch_size", "Cells per columnar find_batch call."
)


def _cuboid_map_nbytes(entries: int, n_dims: int) -> int:
    """Approximate heap footprint of a cuboid map (dict slot + cell tuple)."""
    return entries * (120 + 16 * n_dims)


# ----------------------------------------------------------------------
# query EXPLAIN collection
# ----------------------------------------------------------------------

_EXPLAIN_LOCAL = threading.local()


class ExplainCollector:
    """One query's cost account, accumulated across the read path.

    The serving layer installs a collector (thread-local) around an
    ``explain=true`` request; the columnar kernels, the snapshot tier
    policy and the mapped-column readers each drop their counts in as
    they run.  When no collector is installed — every ordinary request —
    the hook is one ``getattr`` returning ``None``, so the hot path
    stays inside the obs-overhead budget.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: dict = {}

    def add(self, key: str, amount: int = 1) -> None:
        self.data[key] = self.data.get(key, 0) + amount

    def put(self, key: str, value: object) -> None:
        self.data[key] = value


def explain_collector() -> ExplainCollector | None:
    """The collector installed on this thread, if any (hot-path hook)."""
    return getattr(_EXPLAIN_LOCAL, "collector", None)


@contextmanager
def collect_explain():
    """Install a fresh :class:`ExplainCollector` for the enclosed query."""
    collector = ExplainCollector()
    previous = getattr(_EXPLAIN_LOCAL, "collector", None)
    _EXPLAIN_LOCAL.collector = collector
    try:
        yield collector
    finally:
        _EXPLAIN_LOCAL.collector = previous


def _pack_bits(flags: np.ndarray) -> np.ndarray:
    """A boolean vector packed little-endian into uint64 words."""
    n_words = (len(flags) + 63) // 64 or 1
    padded = np.zeros(n_words * 64, dtype=bool)
    padded[: len(flags)] = flags
    bits = np.packbits(padded.reshape(n_words, 64), axis=1, bitorder="little")
    return bits.view(np.uint64).reshape(n_words)


class _FastStateColumns:
    """Aggregate states unpacked into per-measure numpy columns.

    Only the stock algebra qualifies (COUNT plus SUM/MIN/MAX/AVG specs
    on an :class:`~repro.table.aggregates.Aggregator` whose scalar
    ``state_from_row``/``merge`` are not overridden): then a state is
    ``(count, c1, c2, ...)`` with each component a float or an
    ``(sum, count)`` pair, and merging a range-id selection reduces to
    one array reduction per column.
    """

    _REDUCERS = {"sum": np.add.reduce, "min": np.minimum.reduce, "max": np.maximum.reduce}

    def __init__(self, kinds: list[str], columns: list) -> None:
        self.kinds = kinds  # per spec: "sum" | "min" | "max" | "avg"
        self.columns = columns  # per spec: ndarray, or (sums, counts) for avg

    @classmethod
    def build(cls, aggregator: Aggregator, states: Sequence[tuple]) -> "_FastStateColumns | None":
        # The stock subclasses override the scalar algebra purely as a
        # speedup — their state layout still follows the specs, so the
        # columnar reductions stay exact.  Any other override may change
        # the layout; fall back to pairwise merging for those.
        if type(aggregator) not in (
            Aggregator,
            CountAggregator,
            SumCountAggregator,
        ) and aggregator._scalar_algebra_overridden():
            return None
        kinds: list[str] = []
        columns: list = []
        for j, (fn, _) in enumerate(aggregator.specs):
            component = [s[j + 1] for s in states]
            if fn.name in cls._REDUCERS:
                kinds.append(fn.name)
                columns.append(np.asarray(component, dtype=np.float64))
            elif fn.name == "avg":
                kinds.append("avg")
                sums = np.asarray([c[0] for c in component], dtype=np.float64)
                counts = np.asarray([c[1] for c in component], dtype=np.int64)
                columns.append((sums, counts))
            else:  # an aggregate without a columnar reduction
                return None
        return cls(kinds, columns)

    def merge(self, count: int, ids: np.ndarray) -> tuple:
        state: list = [count]
        for kind, column in zip(self.kinds, self.columns):
            if kind == "avg":
                sums, counts = column
                state.append((float(np.add.reduce(sums[ids])), int(np.add.reduce(counts[ids]))))
            else:
                state.append(float(self._REDUCERS[kind](column[ids])))
        return tuple(state)


class ColumnarRangeStore:
    """A range cube frozen into numpy columns plus inverted postings."""

    def __init__(self, cube: "RangeCube") -> None:
        if cube.n_dims > MAX_COLUMNAR_DIMS:
            raise ValueError(
                f"columnar store supports up to {MAX_COLUMNAR_DIMS} dims, "
                f"cube has {cube.n_dims}"
            )
        self.cube = cube
        self.aggregator = cube.aggregator
        self.n_dims = cube.n_dims
        self.ranges = cube.ranges
        n = cube.n_dims
        rows = [
            [STAR_CODE if v is None else v for v in r.specific] for r in self.ranges
        ]
        self.specific = (
            np.asarray(rows, dtype=np.int32)
            if rows
            else np.empty((0, n), dtype=np.int32)
        )
        self.marked_mask = np.fromiter(
            (r.mask for r in self.ranges), dtype=np.int64, count=len(self.ranges)
        )
        bound = self.specific != STAR_CODE
        powers = np.int64(1) << np.arange(n, dtype=np.int64)
        self.bound_mask = bound @ powers if n else np.zeros(len(rows), dtype=np.int64)
        self.marked_mask &= self.bound_mask  # a marked dim is always bound
        self.fixed_mask = self.bound_mask & ~self.marked_mask
        # Packed acceptance bitsets: accept_words[d] bit r <=> range r
        # accepts * on dim d (marked or free there).
        accepts = ~bound | (self.marked_mask[:, None] >> np.arange(n) & 1).astype(bool)
        self.accept_words = np.stack(
            [_pack_bits(accepts[:, d]) for d in range(n)]
        ) if n else np.zeros((0, 1), dtype=np.uint64)
        self.states: list[tuple] = [r.state for r in self.ranges]
        self.counts = np.fromiter(
            (s[0] for s in self.states), dtype=np.int64, count=len(self.states)
        )
        self._fast_columns = _FastStateColumns.build(cube.aggregator, self.states)
        self.postings: list[dict[int, np.ndarray]] = [
            self._build_postings(d) for d in range(n)
        ]
        self._apex_id = self._resolve_apex()
        self._memo_lock = threading.Lock()
        self._cuboid_ids: dict[int, np.ndarray] = {}
        self._cuboid_maps: dict[int, dict[Cell, int]] = {}
        self._cuboid_sizes: dict[int, int] | None = None
        self._memo_policy = None

    # -- memoization policy ----------------------------------------------

    def set_memo_policy(self, policy) -> None:
        """Install an admission policy over the per-mask memo caches.

        ``None`` (the default) memoizes everything — the resident store's
        historical behaviour.  A policy object mediates the hot/cold
        split for out-of-core stores (see :class:`repro.store.TierPolicy`):

        * ``should_map(mask, group_size)`` — consulted by
          :meth:`find_batch_ids` before a group uses (or builds) a cuboid
          map; ``False`` sends the group down the per-cell postings path,
          which never materializes per-mask state.
        * ``admit(kind, mask, nbytes)`` — consulted before a freshly
          built structure (``kind`` ``"ids"`` or ``"map"``) is memoized;
          ``False`` serves it transiently.  The policy may evict other
          masks through :meth:`evict_memo` to make room.
        """
        self._memo_policy = policy

    def evict_memo(self, kind: str, mask: int) -> None:
        """Drop one memoized per-mask structure (policy eviction callback)."""
        memo = self._cuboid_ids if kind == "ids" else self._cuboid_maps
        with self._memo_lock:
            memo.pop(mask, None)

    # -- construction helpers -------------------------------------------

    def _build_postings(self, dim: int) -> dict[int, np.ndarray]:
        """``value -> sorted range ids`` for one dimension (−1 = the ``*`` posting)."""
        column = self.specific[:, dim]
        order = np.argsort(column, kind="stable")  # stable: ids ascend per value
        sorted_vals = column[order]
        boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
        starts = np.concatenate(([0], boundaries, [len(sorted_vals)]))
        ids32 = order.astype(np.int32)
        return {
            int(sorted_vals[lo]): ids32[lo:hi]
            for lo, hi in zip(starts[:-1], starts[1:])
            if hi > lo
        }

    def _resolve_apex(self) -> int:
        """The id of the range containing the all-``*`` cell (−1 if none).

        One bitwise AND across the packed acceptance words — the only
        lookup where every dimension is free, answered entirely in the
        bitset layout.
        """
        if not len(self.ranges):
            return -1
        if not self.n_dims:
            return 0
        words = np.bitwise_and.reduce(self.accept_words, axis=0)
        hits = np.flatnonzero(words)
        if not hits.size:
            return -1
        word = int(words[hits[0]])
        return int(hits[0]) * 64 + (word & -word).bit_length() - 1

    # -- point lookups ---------------------------------------------------

    def star_ids(self, dim: int) -> np.ndarray:
        """Sorted ids of the ranges leaving ``dim`` free (the ``*`` posting)."""
        return self.postings[dim].get(STAR_CODE, np.empty(0, dtype=np.int32))

    def find_id(self, cell: Cell) -> int:
        """The id of the unique range containing ``cell`` (−1 when empty).

        Postings intersection over the bound dimensions, then one
        vectorized containment check: a surviving candidate contains the
        cell iff its fixed dimensions are all bound by the cell
        (``fixed_mask & ~query_mask == 0``) — the marked/free dimensions
        accept ``*`` by construction of the postings.
        """
        qmask = 0
        posts = []
        for d, v in enumerate(cell):
            if v is None:
                continue
            qmask |= 1 << d
            p = self.postings[d].get(v)
            if p is None:
                return -1
            posts.append(p)
        acc = explain_collector()
        if not posts:
            return self._apex_id
        posts.sort(key=len)
        ids = posts[0]
        for p in posts[1:]:
            ids = np.intersect1d(ids, p, assume_unique=True)
            if not ids.size:
                if acc is not None:
                    acc.add("postings_intersected", len(posts))
                return -1
        if acc is not None:
            acc.add("postings_intersected", len(posts))
            acc.add("cells_scanned", int(ids.size))
        ok = ids[(self.fixed_mask[ids] & ~qmask) == 0]
        if not ok.size:
            return -1
        if OBS_STATE.enabled:
            _POSTINGS_HITS.inc()
        return int(ok[0])

    def find(self, cell: Cell) -> "Range | None":
        """The unique range containing ``cell`` (None when the cell is empty)."""
        rid = self.find_id(cell)
        return None if rid < 0 else self.ranges[rid]

    def find_batch_ids(self, cells: Sequence[Cell]) -> list[int]:
        """Range ids for a whole batch of cells (−1 marks empty cells).

        Cells are grouped by bound-dimension mask; each group resolves
        against that mask's memoized cuboid map (one dict probe per
        cell).  A mask whose candidate list dwarfs its group falls back
        to per-cell postings intersection instead of paying the map
        build.
        """
        if not OBS_STATE.enabled:
            return self._find_batch_ids(cells)[0]
        with _TRACER.span("query.find_batch", cells=len(cells)) as span:
            out, n_masks, postings_resolved, map_resolved = self._find_batch_ids(cells)
            span.set_attribute("masks", n_masks)
            span.set_attribute("postings_resolved", postings_resolved)
        _FIND_BATCH_SIZE.observe(len(cells))
        if map_resolved:
            _CUBOID_MAP_HITS.inc(map_resolved)
        return out

    def _find_batch_ids(self, cells: Sequence[Cell]) -> tuple[list[int], int, int, int]:
        out = [-1] * len(cells)
        groups: dict[int, list[int]] = {}
        for pos, cell in enumerate(cells):
            qmask = 0
            for d, v in enumerate(cell):
                if v is not None:
                    qmask |= 1 << d
            groups.setdefault(qmask, []).append(pos)
        postings_resolved = 0
        map_resolved = 0
        for qmask, positions in groups.items():
            cmap = self._cuboid_maps.get(qmask)
            if cmap is None:
                policy = self._memo_policy
                if policy is not None and not policy.should_map(qmask, len(positions)):
                    for pos in positions:
                        out[pos] = self.find_id(cells[pos])
                    postings_resolved += len(positions)
                    continue
                candidates = self.cuboid_ids(qmask)
                if candidates.size > _MAP_BUILD_FACTOR * len(positions):
                    for pos in positions:
                        out[pos] = self.find_id(cells[pos])
                    postings_resolved += len(positions)
                    continue
                cmap = self.cuboid_map(qmask)
            for pos in positions:
                out[pos] = cmap.get(tuple(cells[pos]), -1)
            map_resolved += len(positions)
        acc = explain_collector()
        if acc is not None:
            acc.add("batch_masks", len(groups))
            acc.add("postings_resolved", postings_resolved)
            acc.add("cuboid_map_hits", map_resolved)
        return out, len(groups), postings_resolved, map_resolved

    def find_batch(self, cells: Sequence[Cell]) -> list["Range | None"]:
        """The containing range per cell, batched (None marks empty cells)."""
        ranges = self.ranges
        return [
            None if rid < 0 else ranges[rid] for rid in self.find_batch_ids(cells)
        ]

    # -- cuboids and slice/dice ------------------------------------------

    def cuboid_ids(self, mask: int) -> np.ndarray:
        """Ids of the ranges contributing a cell to cuboid ``mask`` (memoized).

        A range contributes exactly when its fixed dimensions are inside
        ``mask`` and ``mask`` is covered by its bound dimensions — two
        vectorized bitmask comparisons over the whole store.
        """
        ids = self._cuboid_ids.get(mask)
        if ids is None:
            ids = np.flatnonzero(
                ((self.fixed_mask & ~mask) == 0) & ((mask & ~self.bound_mask) == 0)
            ).astype(np.int32)
            acc = explain_collector()
            if acc is not None:
                acc.add("cuboid_ids_built")
                acc.add("cells_scanned", len(self))
            policy = self._memo_policy
            if policy is None or policy.admit("ids", mask, ids.nbytes):
                with self._memo_lock:
                    self._cuboid_ids.setdefault(mask, ids)
        return ids

    def _project(self, rid_rows: np.ndarray, dims: list[int]) -> Iterable[Cell]:
        """Full-width cells binding ``dims`` to each row's specific codes."""
        template: list = [None] * self.n_dims
        for row in rid_rows.tolist():
            for d, v in zip(dims, row):
                template[d] = v
            yield tuple(template)

    def cuboid_map(self, mask: int) -> dict[Cell, int]:
        """``cell -> range id`` for one cuboid (memoized).

        The ranges are disjoint and cover every cell, so each cell of
        the cuboid appears exactly once — the map is the cuboid's
        point-query index, built once per mask.
        """
        cmap = self._cuboid_maps.get(mask)
        if cmap is None:
            ids = self.cuboid_ids(mask)
            dims = [d for d in range(self.n_dims) if mask >> d & 1]
            sub = self.specific[ids][:, dims] if len(dims) else self.specific[ids][:, :0]
            cmap = dict(zip(self._project(sub, dims), ids.tolist()))
            acc = explain_collector()
            if acc is not None:
                acc.add("cuboid_maps_built")
            policy = self._memo_policy
            if policy is None or policy.admit(
                "map", mask, _cuboid_map_nbytes(len(cmap), self.n_dims)
            ):
                with self._memo_lock:
                    self._cuboid_maps.setdefault(mask, cmap)
        return cmap

    def base_cell_ids(self) -> np.ndarray:
        """Ids of the finest cuboid's ranges (every dimension bound).

        Each such range contributes exactly one all-dims-bound cell —
        its specific endpoint — so ``specific[ids]`` / ``counts[ids]``
        enumerate the cube's base cells with their weights.  This is the
        sampling population for :class:`repro.approx.CubeSketch`.
        """
        full_mask = (1 << self.n_dims) - 1 if self.n_dims else 0
        return self.cuboid_ids(full_mask)

    def cuboid(self, mask: int) -> dict[Cell, tuple]:
        """All cells of one cuboid with their aggregate states.

        Same contract as :meth:`RangeCube.cuboid`, answered by the
        memoized mask-filtered selection instead of a Python pass over
        every range.
        """
        states = self.states
        return {cell: states[rid] for cell, rid in self.cuboid_map(mask).items()}

    def cuboid_sizes(self) -> dict[int, int]:
        """Cells per cuboid mask, from the unique (fixed, marked) pairs.

        A range contributes one cell to every mask between its fixed and
        its bound set, so the census only depends on the (fixed, marked)
        bitmask pair — ``np.unique`` collapses the store to those pairs
        and the subset enumeration runs once per distinct pair instead
        of once per range.
        """
        if self._cuboid_sizes is None:
            sizes: dict[int, int] = {}
            if len(self.ranges):
                pairs = np.column_stack((self.fixed_mask, self.marked_mask))
                unique, counts = np.unique(pairs, axis=0, return_counts=True)
                for (fixed, marked), count in zip(unique.tolist(), counts.tolist()):
                    marked_dims = [d for d in range(self.n_dims) if marked >> d & 1]
                    for subset in range(1 << len(marked_dims)):
                        mask = fixed
                        for j, dim in enumerate(marked_dims):
                            if subset >> j & 1:
                                mask |= 1 << dim
                        sizes[mask] = sizes.get(mask, 0) + count
            with self._memo_lock:
                if self._cuboid_sizes is None:
                    self._cuboid_sizes = sizes
        return dict(self._cuboid_sizes)

    def merge_states(self, ids: np.ndarray) -> tuple | None:
        """One aggregate state merged across a range-id selection.

        Vectorized per-measure column reductions when the aggregator
        uses the stock algebra; exact pairwise merging otherwise.  This
        is the dice/slice kernel: select ids by mask filters, merge once.
        """
        ids = np.asarray(ids)
        if not ids.size:
            return None
        acc = explain_collector()
        if acc is not None:
            acc.add("ranges_merged", int(ids.size))
        if self._fast_columns is not None:
            return self._fast_columns.merge(int(np.add.reduce(self.counts[ids])), ids)
        states = self.states
        return reduce(self.aggregator.merge, (states[i] for i in ids.tolist()))

    def dice_ids(
        self,
        value_sets: dict[int, set],
        base: dict[int, int] | None = None,
    ) -> np.ndarray:
        """Ids of the ranges whose cuboid cell matches a dice predicate.

        ``value_sets`` maps a dimension to its admitted codes; ``base``
        pins dimensions to single values.  The candidate list is the
        memoized cuboid selection for the combined mask, narrowed by
        vectorized membership tests on the specific columns.
        """
        base = base or {}
        mask = 0
        for d in (*value_sets, *base):
            mask |= 1 << d
        ids = self.cuboid_ids(mask)
        acc = explain_collector()
        if acc is not None:
            acc.add("cells_scanned", int(ids.size))
        for d, v in base.items():
            ids = ids[self.specific[ids, d] == v]
        for d, values in value_sets.items():
            if not ids.size:
                break
            ids = ids[np.isin(self.specific[ids, d], np.fromiter(values, dtype=np.int64))]
        return ids

    # -- introspection ---------------------------------------------------

    def memo_stats(self) -> dict:
        """Sizes of the memoized per-mask structures (for tests/stats)."""
        return {
            "cuboid_id_masks": len(self._cuboid_ids),
            "cuboid_map_masks": len(self._cuboid_maps),
            "cuboid_map_cells": sum(len(m) for m in self._cuboid_maps.values()),
            "sizes_cached": self._cuboid_sizes is not None,
        }

    def nbytes(self) -> int:
        """Approximate footprint of the frozen columns (postings included)."""
        total = (
            self.specific.nbytes
            + self.marked_mask.nbytes
            + self.bound_mask.nbytes
            + self.fixed_mask.nbytes
            + self.accept_words.nbytes
            + self.counts.nbytes
        )
        for postings in self.postings:
            total += sum(p.nbytes for p in postings.values())
        return total

    def __len__(self) -> int:
        return len(self.ranges)

    def __repr__(self) -> str:
        return (
            f"ColumnarRangeStore({len(self.ranges)} ranges x {self.n_dims} dims, "
            f"{self.nbytes() / 1024:.0f} KiB)"
        )
