"""The paper's contribution: range trie, range cubing, range cube.

* :mod:`repro.core.range_trie` — the compressed trie of Section 3 and its
  construction algorithm (paper Algorithm 1);
* :mod:`repro.core.reduction` — the n-dim -> (n-1)-dim trie reorganization
  of Section 5.1;
* :mod:`repro.core.range_cubing` — the cube computation of Section 5
  (paper Algorithm 2), full and iceberg variants;
* :mod:`repro.core.range_cube` — the compressed, semantics-preserving cube
  of Section 4 (ranges, range tuples, expansion);
* :mod:`repro.core.range_index` — a point-query index over a range cube;
* :mod:`repro.core.columnar` — the cube frozen into numpy columns and
  inverted postings, backing batched lookups and slice/dice selection;
* :mod:`repro.core.semantics` — the roll-up order between ranges
  (Theorem 1's semantics preservation, Figure 5's structure);
* :mod:`repro.core.incremental` — resident-trie incremental maintenance;
* :mod:`repro.core.display` — Figure 3-style trie rendering;
* :mod:`repro.core.complex_measures` — AVG-iceberg cubes via the top-k
  antimonotone surrogate (the H-Cubing paper's complex measures, on the
  range trie);
* :mod:`repro.core.serialize` — JSON persistence for tries and cubers.
"""

from repro.core.columnar import ColumnarRangeStore
from repro.core.complex_measures import TopKAvgAggregator, avg_iceberg_range_cubing
from repro.core.display import print_trie, trie_to_dot, trie_to_lines
from repro.core.incremental import IncrementalRangeCuber, range_cubing_from_trie
from repro.core.range_cube import Range, RangeCube
from repro.core.range_cubing import range_cubing
from repro.core.partitioned import build_partitioned, merge_tries
from repro.core.range_index import RangeCubeIndex
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import reduce_trie
from repro.core.serialize import load_cuber, load_trie, save_cuber, save_trie
from repro.core.semantics import (
    check_weak_congruence,
    drill_down_neighbors,
    range_order_edges,
    range_rolls_up_to,
    roll_up_neighbors,
)

__all__ = [
    "ColumnarRangeStore",
    "IncrementalRangeCuber",
    "TopKAvgAggregator",
    "avg_iceberg_range_cubing",
    "build_partitioned",
    "merge_tries",
    "load_cuber",
    "load_trie",
    "save_cuber",
    "save_trie",
    "Range",
    "RangeCube",
    "RangeCubeIndex",
    "RangeTrie",
    "RangeTrieNode",
    "check_weak_congruence",
    "drill_down_neighbors",
    "print_trie",
    "range_cubing",
    "range_cubing_from_trie",
    "range_order_edges",
    "range_rolls_up_to",
    "reduce_trie",
    "roll_up_neighbors",
    "trie_to_dot",
    "trie_to_lines",
]
