"""Semantics preservation: the partial order between ranges (paper §4).

Theorem 1 states that a range cube preserves the roll-up/drill-down
semantics of the data cube: because the partition is *convex*, the cell
partial order induces a well-defined order between the parts themselves
(Lakshmanan et al.'s weak-congruence argument).  Figure 5 draws exactly
this: the five ranges with Store = S1 arranged by roll-up edges.

This module materializes that structure:

* :func:`range_rolls_up_to` — the induced relation between two ranges
  (some cell of the first rolls up to some cell of the second);
* :func:`range_order_edges` — the covering edges among a cube's ranges,
  i.e. Figure 5 as a graph;
* :func:`roll_up_neighbors` / :func:`drill_down_neighbors` — one-step
  navigation from a range, the range-level analogue of cube browsing;
* :func:`check_weak_congruence` — the property behind Theorem 1, used by
  the test suite: whenever a cell of range A rolls up to a cell of range
  B, *every* cell of A must roll up to some cell of B (and into B only).

All of this works on the expanded cell sets, so it is meant for
interactive navigation and verification, not for bulk computation.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.range_cube import Range, RangeCube
from repro.cube.cell import Cell, bound_dims, roll_up, specializes


def range_rolls_up_to(a: Range, b: Range) -> bool:
    """True when some cell of ``a`` specializes some cell of ``b``.

    For convex parts this is equivalent to ``a``'s most specific cell
    specializing ``b``'s most general cell on ``b``'s fixed dimensions —
    checked directly on the endpoints, no expansion needed.
    """
    return specializes(a.specific, b.general)


def range_order_edges(cube: RangeCube) -> list[tuple[int, int]]:
    """Direct (one-cell-step) roll-up edges between ranges, by index.

    Edge ``(i, j)`` means: some cell of range ``i``, generalized on one
    dimension, lands in range ``j``.  This is the granularity Figure 5
    draws.  Cost is O(ranges x cells-per-range x dims); intended for
    small-to-medium cubes.
    """
    owner: dict[Cell, int] = {}
    for index, r in enumerate(cube.ranges):
        for cell in r.cells():
            owner[cell] = index
    edges: set[tuple[int, int]] = set()
    for cell, index in owner.items():
        for dim in bound_dims(cell):
            parent = roll_up(cell, dim)
            parent_index = owner.get(parent)
            if parent_index is not None and parent_index != index:
                edges.add((index, parent_index))
    return sorted(edges)


def roll_up_neighbors(cube: RangeCube, r: Range) -> list[Range]:
    """Ranges reachable by generalizing one dimension of one cell of ``r``."""
    neighbors: list[Range] = []
    seen = {id(r)}
    for cell in r.cells():
        for dim in bound_dims(cell):
            found = cube.range_of(roll_up(cell, dim))
            if found is not None and id(found) not in seen:
                seen.add(id(found))
                neighbors.append(found)
    return neighbors


def drill_down_neighbors(cube: RangeCube, r: Range) -> list[Range]:
    """Ranges whose cells specialize a cell of ``r`` by one dimension.

    Implemented by scanning the cube's ranges once (the inverse relation
    has no endpoint shortcut without an index over free dimensions).
    """
    neighbors: list[Range] = []
    for other in cube.ranges:
        if other is r:
            continue
        if range_rolls_up_to(other, r) and _one_step_apart(other, r):
            neighbors.append(other)
    return neighbors


def _one_step_apart(lower: Range, upper: Range) -> bool:
    """True when some cell of ``lower`` is one roll-up from a cell of ``upper``."""
    upper_cells = set(upper.cells())
    for cell in lower.cells():
        for dim in bound_dims(cell):
            if roll_up(cell, dim) in upper_cells:
                return True
    return False


def check_weak_congruence(cube: RangeCube) -> None:
    """Verify the Theorem 1 property on an expanded cube.

    For every cell ``c`` and every one-step roll-up ``c'`` of it: the part
    containing ``c'`` must be the same for all cells of ``c``'s part that
    admit the same generalization pattern... in weak-congruence terms it
    suffices that the partition is convex: if ``a ⪯ c ⪯ b`` with ``a, b``
    in one part then ``c`` is in that part too.  Raises AssertionError on
    the first violation.
    """
    owner: dict[Cell, int] = {}
    for index, r in enumerate(cube.ranges):
        for cell in r.cells():
            assert cell not in owner, f"cell {cell} in two ranges"
            owner[cell] = index
    for index, r in enumerate(cube.ranges):
        for cell in _between(r.general, r.specific):
            assert owner.get(cell) == index, (
                f"convexity violated: {cell} lies between the endpoints of "
                f"range {index} but belongs to {owner.get(cell)}"
            )


def _between(general: Cell, specific: Cell) -> Iterator[Cell]:
    """All cells c with general ⪯ c ⪯ specific."""
    free = [
        i
        for i, (g, s) in enumerate(zip(general, specific))
        if g is None and s is not None
    ]
    base = list(general)
    for subset in range(1 << len(free)):
        cell = base[:]
        for j, dim in enumerate(free):
            if subset >> j & 1:
                cell[dim] = specific[dim]
        yield tuple(cell)
