"""Range cubing (paper Section 5, Algorithm 2).

The algorithm walks a range trie depth-first, emitting one range per node,
then reorganizes the trie from ``n`` dimensions to ``n-1`` and repeats —
at every level of the recursion.  For a node whose key is
``(a_i1, a_i2, ..., a_ik)`` with start value ``a_i1``:

* the *general* endpoint binds the start values of the node and its
  ancestors (within the current trie context);
* the *specific* endpoint additionally binds every non-start key value —
  the values *implied* by the start values (paper Lemma 2);

so the emitted range covers exactly the cells of paper Lemma 3, all with
the node's aggregate.  Each node is aggregated once during construction or
reduction and never re-aggregated — the paper's simultaneous-aggregation
argument — and a node whose tuple count misses an iceberg threshold prunes
its whole branch (Apriori pruning), while still participating in trie
reductions, whose merged nodes can only have larger counts.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.compat import legacy_call_shim
from repro.core.range_cube import Range, RangeCube
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import reduce_trie
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


@legacy_call_shim("aggregator", "dim_order", "min_support")
def range_cubing(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> RangeCube:
    """Compute the range cube of ``table``.

    ``dim_order`` optionally permutes the dimension order used by the trie
    (e.g. ``table.schema.cardinality_descending_order()``, the paper's
    preferred order); the returned ranges are always expressed in the
    table's *original* dimension order.  ``min_support`` > 1 computes the
    iceberg range cube: only ranges whose count reaches the threshold.
    """
    cube, _ = range_cubing_detailed(
        table, aggregator=aggregator, dim_order=dim_order, min_support=min_support
    )
    return cube


@legacy_call_shim("aggregator", "dim_order", "min_support")
def range_cubing_detailed(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | None = None,
    min_support: int = 1,
) -> tuple[RangeCube, dict[str, float]]:
    """Like :func:`range_cubing` but also returns harness statistics.

    The stats dict carries the initial trie's node counts (the paper's
    node-ratio ingredient) and the build/traversal split of the run time.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    order = dim_order
    working = table if order is None else table.reordered(order)

    t0 = time.perf_counter()
    trie = RangeTrie.build(working, agg)
    t1 = time.perf_counter()
    ranges = _traverse(trie, agg, min_support)
    t2 = time.perf_counter()

    if order is not None:
        ranges = [_remap_range(r, order) for r in ranges]
    stats = {
        "trie_nodes": trie.n_nodes(),
        "trie_interior": trie.n_interior(),
        "trie_leaves": trie.n_leaves(),
        "build_seconds": t1 - t0,
        "traverse_seconds": t2 - t1,
        "total_seconds": t2 - t0,
    }
    return RangeCube(table.n_dims, agg, ranges), stats


def _traverse(trie: RangeTrie, agg: Aggregator, min_support: int) -> list[Range]:
    """Algorithm 2: emit one range per node over successive trie reductions."""
    n = trie.n_dims
    ranges: list[Range] = []
    if trie.root.agg is not None and agg.count(trie.root.agg) >= min_support:
        # The apex cell (*, ..., *) is its own single-cell range.
        ranges.append(Range((None,) * n, 0, trie.root.agg))
    if trie.root.children:
        _cube(trie.root, [None] * n, 0, ranges, agg, min_support)
    return ranges


def _cube(
    node: RangeTrieNode,
    specific: list,
    mask: int,
    out: list[Range],
    agg: Aggregator,
    min_support: int,
) -> None:
    """Process the trie rooted at ``node`` within the given cell context.

    ``specific``/``mask`` carry the ancestor context: the key values bound
    so far and which of them are marked (non-start, i.e. implied).  The
    while loop is the per-level dimension iteration of Algorithm 2: emit
    ranges for the current start dimension, then reduce the trie and move
    to the next one.
    """
    count = agg.count
    merge = agg.merge
    while node.children:
        for child in node.children.values():
            if min_support > 1 and count(child.agg) < min_support:
                continue  # Apriori pruning; the child still merges into reductions
            key = child.key
            child_specific = specific.copy()
            child_mask = mask
            child_specific[key[0][0]] = key[0][1]
            for dim, value in key[1:]:
                child_specific[dim] = value
                child_mask |= 1 << dim
            out.append(Range(tuple(child_specific), child_mask, child.agg))
            if child.children:
                _cube(child, child_specific, child_mask, out, agg, min_support)
        node = reduce_trie(node, merge)


def _remap_range(r: Range, order: Sequence[int]) -> Range:
    """Translate a range from permuted dimension space back to the original."""
    n = len(r.specific)
    specific = [None] * n
    mask = 0
    for new_dim, old_dim in enumerate(order):
        specific[old_dim] = r.specific[new_dim]
        if r.mask >> new_dim & 1:
            mask |= 1 << old_dim
    return Range(tuple(specific), mask, r.state)
