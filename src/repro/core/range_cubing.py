"""Range cubing (paper Section 5, Algorithm 2).

The algorithm walks a range trie depth-first, emitting one range per node,
then reorganizes the trie from ``n`` dimensions to ``n-1`` and repeats —
at every level of the recursion.  For a node whose key is
``(a_i1, a_i2, ..., a_ik)`` with start value ``a_i1``:

* the *general* endpoint binds the start values of the node and its
  ancestors (within the current trie context);
* the *specific* endpoint additionally binds every non-start key value —
  the values *implied* by the start values (paper Lemma 2);

so the emitted range covers exactly the cells of paper Lemma 3, all with
the node's aggregate.  Each node is aggregated once during construction or
reduction and never re-aggregated — the paper's simultaneous-aggregation
argument — and a node whose tuple count misses an iceberg threshold prunes
its whole branch (Apriori pruning), while still participating in trie
reductions, whose merged nodes can only have larger counts.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.compat import legacy_call_shim
from repro.core.range_cube import Range, RangeCube
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import reduce_trie
from repro.obs import get_registry, get_tracer
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.tune import TuningPlan, resolve_plan


#: Trie construction strategies accepted by ``build_strategy=``.
BUILD_STRATEGIES = ("bulk", "tuple")

_TRACER = get_tracer()
_REGISTRY = get_registry()
_BUILDS = _REGISTRY.counter(
    "repro_builds_total", "Cube builds completed, by trie construction strategy.",
    ("strategy",),
)
_BUILD_ROWS = _REGISTRY.counter(
    "repro_build_rows_total", "Base-table rows consumed by cube builds."
)
_PHASE_SECONDS = _REGISTRY.histogram(
    "repro_build_phase_seconds",
    "Wall-clock seconds per cube-build phase (build/traverse and the bulk "
    "builder's sort/group/aggregate split).",
    ("phase",),
)


def _record_bulk_phases(phases: dict, build_start_wall: float, parent) -> None:
    """Synthesize sort/group/aggregate child spans from the phase seconds.

    The bulk builder runs its phases back to back, so laying them out
    sequentially from the build span's start reconstructs the timeline
    without threading span objects into the vectorized kernels.
    """
    offset = build_start_wall
    for phase in ("sort", "group", "aggregate"):
        seconds = phases.get(f"{phase}_seconds")
        if seconds is None:
            continue
        _TRACER.record_span(
            phase, start_wall=offset, duration=seconds, parent=parent
        )
        _PHASE_SECONDS.observe(seconds, phase=phase)
        offset += seconds


@legacy_call_shim("aggregator", "dim_order", "min_support")
def range_cubing(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | str | TuningPlan | None = "auto",
    min_support: int = 1,
    build_strategy: str = "bulk",
) -> RangeCube:
    """Compute the range cube of ``table``.

    ``dim_order`` controls the dimension order used by the trie: the
    default ``"auto"`` runs the sampling planner (:mod:`repro.tune`) and
    builds in whichever candidate order its cost model scores cheapest;
    ``None`` keeps the table's as-is order; an explicit sequence (e.g.
    ``table.schema.cardinality_descending_order()``, the paper's
    preferred order) pins a static order; and a prepared
    :class:`~repro.tune.TuningPlan` reuses an existing plan (value
    permutations included).  Whatever the order, the returned ranges are
    always expressed in the table's *original* dimension order and value
    coding — the choice affects build cost only, never answers.
    ``min_support`` > 1 computes the iceberg range cube: only ranges
    whose count reaches the threshold.  ``build_strategy`` selects the
    trie construction: ``"bulk"`` (the default,
    :meth:`RangeTrie.bulk_build`'s vectorized sort-based path) or
    ``"tuple"`` (Algorithm 1's tuple-at-a-time insertion) — the trie is
    canonical, so both produce the same cube.
    """
    cube, _ = range_cubing_detailed(
        table,
        aggregator=aggregator,
        dim_order=dim_order,
        min_support=min_support,
        build_strategy=build_strategy,
    )
    return cube


@legacy_call_shim("aggregator", "dim_order", "min_support")
def range_cubing_detailed(
    table: BaseTable,
    *,
    aggregator: Aggregator | None = None,
    dim_order: Sequence[int] | str | TuningPlan | None = "auto",
    min_support: int = 1,
    build_strategy: str = "bulk",
) -> tuple[RangeCube, dict[str, float]]:
    """Like :func:`range_cubing` but also returns harness statistics.

    The stats dict carries the initial trie's node counts (the paper's
    node-ratio ingredient) and the build/traversal split of the run time;
    with the bulk strategy the build phase is further broken down into
    ``sort_seconds`` / ``group_seconds`` / ``aggregate_seconds``.  When a
    tuning plan was used (``dim_order="auto"`` or an explicit
    :class:`~repro.tune.TuningPlan`) the dict additionally carries
    ``tune_seconds`` and a ``tuning`` block describing the chosen plan.
    """
    if build_strategy not in BUILD_STRATEGIES:
        raise ValueError(
            f"unknown build_strategy {build_strategy!r}; "
            f"expected one of {BUILD_STRATEGIES}"
        )
    agg = aggregator or default_aggregator(table.n_measures)
    phases: dict[str, float] = {}
    with _TRACER.span(
        "range_cubing",
        strategy=build_strategy,
        rows=table.n_rows,
        dims=table.n_dims,
        min_support=min_support,
    ) as root:
        # Planning (and the reorder copy it may imply) runs inside the
        # root span so an exported trace accounts for the whole build;
        # the planner's own ``tune.plan`` span nests here.
        tune_start = time.perf_counter()
        plan, order = resolve_plan(table, dim_order)
        if plan is not None:
            working = plan.transform_table(table)
        else:
            working = table if order is None else table.reordered(order)
        tune_seconds = time.perf_counter() - tune_start
        t0 = time.perf_counter()
        with _TRACER.span("build") as build_span:
            if build_strategy == "bulk":
                trie = RangeTrie.bulk_build(working, agg, timings=phases)
            else:
                trie = RangeTrie.build(working, agg)
        _record_bulk_phases(phases, build_span.start_wall, build_span)
        t1 = time.perf_counter()
        with _TRACER.span("traverse"):
            ranges = _traverse(trie, agg, min_support)
        t2 = time.perf_counter()

        if plan is not None and not plan.is_identity:
            with _TRACER.span("remap"):
                ranges = plan.restore_ranges(ranges)
        elif order is not None:
            with _TRACER.span("remap"):
                ranges = _remap_ranges(ranges, order)
        with _TRACER.span("stats"):
            census = trie.stats()
        root.set_attribute("trie_nodes", census.nodes)
        root.set_attribute("n_ranges", len(ranges))
    _BUILDS.inc(strategy=build_strategy)
    _BUILD_ROWS.inc(table.n_rows)
    _PHASE_SECONDS.observe(t1 - t0, phase="build")
    _PHASE_SECONDS.observe(t2 - t1, phase="traverse")
    stats = {
        "trie_nodes": census.nodes,
        "trie_interior": census.interior,
        "trie_leaves": census.leaves,
        "trie_depth": census.max_depth,
        "build_strategy": build_strategy,
        "build_seconds": t1 - t0,
        "traverse_seconds": t2 - t1,
        # planning time (zero unless dim_order="auto" ran the planner)
        # counts toward the paper's "total run time" metric
        "total_seconds": (t2 - t0) + tune_seconds,
        **phases,
    }
    if plan is not None:
        stats["tune_seconds"] = tune_seconds
        stats["tuning"] = plan.to_json()
    return RangeCube(table.n_dims, agg, ranges), stats


def _traverse(trie: RangeTrie, agg: Aggregator, min_support: int) -> list[Range]:
    """Algorithm 2: emit one range per node over successive trie reductions."""
    n = trie.n_dims
    ranges: list[Range] = []
    if trie.root.agg is not None and agg.count(trie.root.agg) >= min_support:
        # The apex cell (*, ..., *) is its own single-cell range.
        ranges.append(Range((None,) * n, 0, trie.root.agg))
    if trie.root.children:
        _cube(trie.root, [None] * n, 0, ranges, agg, min_support)
    return ranges


def _cube(
    node: RangeTrieNode,
    specific: list,
    mask: int,
    out: list[Range],
    agg: Aggregator,
    min_support: int,
) -> None:
    """Process the trie rooted at ``node`` within the given cell context.

    ``specific``/``mask`` carry the ancestor context: the key values bound
    so far and which of them are marked (non-start, i.e. implied).  The
    while loop is the per-level dimension iteration of Algorithm 2: emit
    ranges for the current start dimension, then reduce the trie and move
    to the next one.
    """
    count = agg.count
    merge = agg.merge
    while node.children:
        for child in node.children.values():
            if min_support > 1 and count(child.agg) < min_support:
                continue  # Apriori pruning; the child still merges into reductions
            key = child.key
            child_specific = specific.copy()
            child_mask = mask
            child_specific[key[0][0]] = key[0][1]
            for dim, value in key[1:]:
                child_specific[dim] = value
                child_mask |= 1 << dim
            out.append(Range(tuple(child_specific), child_mask, child.agg))
            if child.children:
                _cube(child, child_specific, child_mask, out, agg, min_support)
        node = reduce_trie(node, merge)


def _remap_ranges(
    ranges: Sequence[Range],
    order: Sequence[int],
    value_maps: dict[int, Sequence[int]] | None = None,
) -> list[Range]:
    """Translate ranges from permuted dimension space back to the original.

    The inverse permutation (and the per-bit mask translation) is computed
    once for the whole cube rather than once per range.  ``value_maps``
    optionally carries, per *original* dimension, the inverse value
    permutation of a tuning plan (``original_code = value_maps[d][code]``);
    codes outside a map's domain pass through unchanged, matching the
    forward transform's handling of late-appended values.
    """
    n = len(order)
    # gather[old_dim] = new_dim: position to read each original dim from.
    gather = [0] * n
    mask_for_bit = [0] * n  # new_dim bit -> old_dim bit
    for new_dim, old_dim in enumerate(order):
        gather[old_dim] = new_dim
        mask_for_bit[new_dim] = 1 << old_dim
    restore = None
    if value_maps:
        maps = {d: m for d, m in value_maps.items()}

        def restore(old_dim: int, code):
            m = maps.get(old_dim)
            if code is None or m is None or not (0 <= code < len(m)):
                return code
            return int(m[code])

    out = []
    for r in ranges:
        spec = r.specific
        remaining = r.mask
        mask = 0
        while remaining:
            low = remaining & -remaining
            mask |= mask_for_bit[low.bit_length() - 1]
            remaining ^= low
        if restore is None:
            values = tuple(spec[g] for g in gather)
        else:
            values = tuple(restore(d, spec[gather[d]]) for d in range(n))
        out.append(Range(values, mask, r.state))
    return out


def _remap_range(r: Range, order: Sequence[int]) -> Range:
    """Translate one range back to the original dimension order.

    Kept for callers remapping a single range; batch callers use
    :func:`_remap_ranges`, which hoists the permutation setup.
    """
    return _remap_ranges([r], order)[0]
