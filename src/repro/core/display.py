"""Rendering helpers for range tries (the paper's Figure 3/6 drawings).

``trie_to_lines`` produces the indented text form used throughout the
paper — node key, aggregate count — and ``trie_to_dot`` emits Graphviz
source for the same structure.  Both accept an optional
:class:`~repro.table.encoding.TableEncoder` (plus dimension names) so the
output reads ``(store=S1, city=C1):2`` instead of ``(d0=0, d1=0):2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.range_trie import RangeTrie, RangeTrieNode


def _key_label(
    node: RangeTrieNode,
    dim_names: Sequence[str] | None,
    encoder,
) -> str:
    parts = []
    for dim, value in node.key:
        name = dim_names[dim] if dim_names else f"d{dim}"
        if encoder is not None:
            value = encoder.encoders[dim].decode(value)
        parts.append(f"{name}={value}")
    return ", ".join(parts)


def trie_to_lines(
    trie: RangeTrie,
    dim_names: Sequence[str] | None = None,
    encoder=None,
) -> list[str]:
    """The trie as indented text, one node per line (Figure 3 style).

    Children are ordered by start value for deterministic output.
    """
    count = trie.aggregator.count
    lines = [f"(root):{count(trie.root.agg) if trie.root.agg is not None else 0}"]

    def walk(node: RangeTrieNode, depth: int) -> None:
        label = _key_label(node, dim_names, encoder)
        lines.append("  " * depth + f"({label}):{count(node.agg)}")
        for value in sorted(node.children):
            walk(node.children[value], depth + 1)

    for value in sorted(trie.root.children):
        walk(trie.root.children[value], 1)
    return lines


def print_trie(trie: RangeTrie, dim_names=None, encoder=None) -> None:
    """Print the Figure 3-style indented rendering of ``trie``."""
    for line in trie_to_lines(trie, dim_names, encoder):
        print(line)


def trie_to_dot(
    trie: RangeTrie,
    dim_names: Sequence[str] | None = None,
    encoder=None,
    graph_name: str = "range_trie",
) -> str:
    """Graphviz DOT source for the trie."""
    count = trie.aggregator.count
    lines = [f"digraph {graph_name} {{", "  node [shape=box];"]
    counter = [0]

    def node_id() -> str:
        counter[0] += 1
        return f"n{counter[0]}"

    def emit(node: RangeTrieNode, parent_id: str) -> None:
        this_id = node_id()
        label = _key_label(node, dim_names, encoder) or "()"
        lines.append(f'  {this_id} [label="({label}):{count(node.agg)}"];')
        lines.append(f"  {parent_id} -> {this_id};")
        for value in sorted(node.children):
            emit(node.children[value], this_id)

    root_count = count(trie.root.agg) if trie.root.agg is not None else 0
    lines.append(f'  n0 [label="(root):{root_count}"];')
    for value in sorted(trie.root.children):
        emit(trie.root.children[value], "n0")
    lines.append("}")
    return "\n".join(lines)
