"""Iceberg cubes with complex (non-antimonotone) measures.

The H-Cubing paper's headline problem — and a natural extension for range
cubing — is the iceberg condition ``COUNT(*) >= k AND AVG(m) >= v``:
average is not antimonotone, so it cannot prune subtrees by itself (a
low-average group may contain a high-average subgroup).  Han et al.'s fix
is the **top-k average**: the average of a group's ``k`` largest measure
values *is* antimonotone for this condition — if even the best ``k``
tuples of a node cannot reach the threshold, no descendant cell (which
draws from a subset) ever will.

This module carries a bounded top-k list through the range trie's
aggregate states (merge = merge-and-truncate, still associative and
commutative, so trie reduction stays sound) and prunes the range-cubing
traversal with the top-k test while *emitting* only cells that satisfy
the exact condition.  The brute-force oracle in the tests pins the output
cell-for-cell.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.range_cube import Range, RangeCube
from repro.core.range_trie import RangeTrie
from repro.core.reduction import reduce_trie
from repro.table.aggregates import Aggregator
from repro.table.base_table import BaseTable


class TopKAvgAggregator(Aggregator):
    """COUNT + SUM + bounded top-k of one measure.

    State: ``(count, sum, topk)`` where ``topk`` is a sorted (descending)
    tuple of at most ``k`` measure values.  Merging concatenates and
    re-truncates — associative, commutative, idempotent in shape — so the
    state is safe for simultaneous aggregation and trie reduction.
    """

    def __init__(self, k: int, measure_index: int = 0) -> None:
        super().__init__(())
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.measure_index = measure_index

    def state_from_row(self, measures: Sequence[float]) -> tuple:
        value = measures[self.measure_index]
        return (1, value, (value,))

    def merge(self, a: tuple, b: tuple) -> tuple:
        merged = heapq.nlargest(self.k, a[2] + b[2])
        return (a[0] + b[0], a[1] + b[1], tuple(merged))

    def finalize(self, state: tuple) -> dict[str, float]:
        return {
            "count": state[0],
            "sum": state[1],
            "avg": state[1] / state[0],
            "top_k_avg": sum(state[2]) / len(state[2]),
        }

    def top_k_avg(self, state: tuple) -> float:
        return sum(state[2]) / len(state[2])

    def exact_avg(self, state: tuple) -> float:
        return state[1] / state[0]


def avg_iceberg_range_cubing(
    table: BaseTable,
    min_count: int,
    min_avg: float,
    measure_index: int = 0,
) -> RangeCube:
    """Cells with ``COUNT >= min_count`` and ``AVG(measure) >= min_avg``.

    Pruning: a trie node whose count is below ``min_count``, or whose
    top-``min_count`` average is below ``min_avg``, cannot contain a
    qualifying cell anywhere beneath it (any qualifying cell needs at
    least ``min_count`` tuples, and the best ``min_count`` it could draw
    are bounded by the node's).  Nodes still participate in reductions —
    merged nodes can only improve on both tests.
    """
    if min_count < 1:
        raise ValueError("min_count must be at least 1")
    agg = TopKAvgAggregator(min_count, measure_index)
    trie = RangeTrie.build(table, agg)
    out: list[Range] = []
    n = table.n_dims

    def qualifies(state: tuple) -> bool:
        return state[0] >= min_count and agg.exact_avg(state) >= min_avg

    def may_contain(state: tuple) -> bool:
        return state[0] >= min_count and agg.top_k_avg(state) >= min_avg

    if trie.root.agg is not None and qualifies(trie.root.agg):
        out.append(Range((None,) * n, 0, trie.root.agg))

    def cube(node, specific, mask):
        while node.children:
            for child in node.children.values():
                if not may_contain(child.agg):
                    continue  # top-k pruning (node still merges in reductions)
                key = child.key
                child_specific = specific.copy()
                child_mask = mask
                child_specific[key[0][0]] = key[0][1]
                for dim, value in key[1:]:
                    child_specific[dim] = value
                    child_mask |= 1 << dim
                if qualifies(child.agg):
                    out.append(Range(tuple(child_specific), child_mask, child.agg))
                if child.children:
                    cube(child, child_specific, child_mask)
            node = reduce_trie(node, agg.merge)

    if trie.root.children:
        cube(trie.root, [None] * n, 0)
    return RangeCube(n, agg, out)


def avg_iceberg_bruteforce(
    table: BaseTable,
    min_count: int,
    min_avg: float,
    measure_index: int = 0,
) -> dict:
    """Oracle: filter the naive full cube by the exact condition."""
    from repro.cube.full_cube import compute_full_cube
    from repro.table.aggregates import SumCountAggregator

    cube = compute_full_cube(table, SumCountAggregator(measure_index))
    return {
        cell: state
        for cell, state in cube.cells()
        if state[0] >= min_count and state[1] / state[0] >= min_avg
    }
