"""Incremental range-cube maintenance.

The range trie is built by one-tuple-at-a-time insertion and is invariant
to insertion order (paper Section 3.1), which makes it a natural vehicle
for incremental cube maintenance: keep the trie resident, append new fact
batches into it, and re-emit the range cube on demand.  Because the trie
after ``insert(batch2)`` is *identical* to the trie built from
``batch1 + batch2`` in one load, the incrementally maintained cube equals
the batch-recomputed cube exactly — a property the test suite checks
structurally.

This addresses the maintenance question the original leaves open: the
expensive part of range cubing (trie construction over the full history)
is amortized across loads, and only the traversal (proportional to the
*output*, not the input) is paid per refresh.

Batch absorption rides the same canonicality: a large batch is built
into its own trie with the vectorized sort-based bulk builder
(:meth:`~repro.core.range_trie.RangeTrie.bulk_build_arrays`) and fused
into the resident trie with the canonical merge of
:func:`repro.core.partitioned.merge_tries` — identical, node for node, to
having inserted the batch row by row.  Small batches (and the streaming
:meth:`IncrementalRangeCuber.insert_row` path) keep using Algorithm 1
directly, where the bulk path's sort/merge setup would cost more than it
saves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.range_cube import RangeCube
from repro.core.range_cubing import _traverse
from repro.core.range_trie import RangeTrie
from repro.obs import get_registry, get_tracer
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.tune import REPLAN_DRIFT_FACTOR, TuningPlan, plan_codes, record_replan

_TRACER = get_tracer()
_REGISTRY = get_registry()
_ABSORB_BATCHES = _REGISTRY.counter(
    "repro_absorb_batches_total",
    "Fact batches absorbed into resident tries, by construction path.",
    ("path",),
)
_ABSORB_ROWS = _REGISTRY.counter(
    "repro_absorb_rows_total",
    "Fact rows absorbed into resident tries, by construction path.",
    ("path",),
)

#: Batches with at least this many rows absorb through the bulk builder
#: plus a canonical trie merge; smaller ones insert tuple-at-a-time
#: (the lexsort + merge setup only pays for itself on real batches).
BULK_ABSORB_THRESHOLD = 64


def range_cubing_from_trie(
    trie: RangeTrie,
    min_support: int = 1,
) -> RangeCube:
    """Emit the range cube of an already-built trie (traversal only).

    The trie is not modified (Algorithm 2's reductions are
    non-destructive), so it can keep absorbing inserts afterwards.
    """
    ranges = _traverse(trie, trie.aggregator, min_support)
    return RangeCube(trie.n_dims, trie.aggregator, ranges)


class IncrementalRangeCuber:
    """A resident range trie that absorbs fact batches and re-emits cubes.

    >>> cuber = IncrementalRangeCuber(schema.n_dims)      # doctest: +SKIP
    >>> cuber.insert_table(monday_facts)                  # doctest: +SKIP
    >>> cube = cuber.cube()                               # doctest: +SKIP
    >>> cuber.insert_table(tuesday_facts)                 # doctest: +SKIP
    >>> cube = cuber.cube()     # == batch recompute over both days
    """

    def __init__(
        self,
        n_dims: int,
        aggregator: Aggregator | None = None,
        *,
        plan: TuningPlan | None = None,
    ) -> None:
        self.aggregator = aggregator or default_aggregator(1)
        self.trie = RangeTrie(n_dims, self.aggregator)
        self.n_rows_absorbed = 0
        self.replan_count = 0
        if plan is not None and plan.n_dims != n_dims:
            raise ValueError(
                f"plan covers {plan.n_dims} dims, cuber expects {n_dims}"
            )
        self.plan = plan
        # Per-dimension distinct codes observed since the plan was made,
        # tracked in *original* space (only maintained when a plan is
        # active — it feeds the drift check in maybe_replan()).
        self._observed: list[set] | None = (
            [set() for _ in range(n_dims)] if plan is not None else None
        )

    # -- tuning plan ------------------------------------------------------

    def _note_codes(self, dim_codes: np.ndarray) -> None:
        if self._observed is None:
            return
        for d, seen in enumerate(self._observed):
            seen.update(np.unique(dim_codes[:, d]).tolist())

    def _note_row(self, row: Sequence[int]) -> None:
        if self._observed is None:
            return
        for d, seen in enumerate(self._observed):
            seen.add(int(row[d]))

    def drifted_dims(self, factor: float = REPLAN_DRIFT_FACTOR) -> list[int]:
        """Original dims whose observed distinct count outgrew the plan's
        sampled estimate by more than ``factor`` (empty without a plan)."""
        if self.plan is None or self._observed is None:
            return []
        planned = {s["dim"]: s["distinct"] for s in self.plan.dim_stats}
        return [
            d
            for d, seen in enumerate(self._observed)
            if planned.get(d, 0) > 0 and len(seen) > factor * planned[d]
        ]

    def maybe_replan(self, factor: float = REPLAN_DRIFT_FACTOR) -> bool:
        """Re-plan (and rebuild the resident trie) on cardinality drift.

        Cheap when nothing drifted: one distinct-count comparison per
        dimension.  Returns whether a re-plan happened.
        """
        if not self.drifted_dims(factor):
            return False
        self.replan()
        return True

    def replan(self) -> TuningPlan:
        """Re-run the planner over the absorbed data and rebuild the trie.

        The resident trie's leaves are a lossless summary of everything
        absorbed (one leaf per distinct fact row, with its aggregate
        state), so the rebuild replays leaf assignments — mapped back to
        original space through the old plan, then forward through the
        new one — without touching the raw history.  The planner sees
        the distinct rows rather than the raw multiset; for the trie
        (whose shape depends only on distinct rows) that is exactly the
        right input.
        """
        if self.plan is None:
            raise ValueError("replan() requires a cuber built with a tuning plan")
        old_plan = self.plan
        leaves = [
            (dict(old_plan.original_assignment(assignment)), state)
            for assignment, state in self.trie.leaf_assignments()
        ]
        n_dims = self.trie.n_dims
        if leaves:
            codes = np.array(
                [[row[d] for d in range(n_dims)] for row, _ in leaves],
                dtype=np.int64,
            )
        else:
            codes = np.zeros((0, n_dims), dtype=np.int64)
        new_plan = plan_codes(codes, value_reorder=bool(old_plan.value_orders))
        rebuilt = RangeTrie(n_dims, self.aggregator)
        for row, state in leaves:
            pairs = [
                (pos, new_plan.tuned_value(old_dim, row[old_dim]))
                for pos, old_dim in enumerate(new_plan.dim_order)
            ]
            rebuilt.insert_assignment(pairs, state)
        self.trie = rebuilt
        self.plan = new_plan
        self._observed = [set() for _ in range(n_dims)]
        self._note_codes(codes)
        self.replan_count += 1
        record_replan()
        return new_plan

    def insert_table(self, table: BaseTable, *, build_strategy: str = "auto") -> None:
        """Absorb every row of ``table`` (schema must match in arity).

        ``build_strategy``: ``"auto"`` (the default) bulk-builds batches of
        at least :data:`BULK_ABSORB_THRESHOLD` rows and streams smaller
        ones; ``"bulk"`` / ``"tuple"`` force one path.  The resident trie
        is canonical either way.
        """
        if table.n_dims != self.trie.n_dims:
            raise ValueError(
                f"table has {table.n_dims} dims, cuber expects {self.trie.n_dims}"
            )
        if build_strategy not in ("auto", "bulk", "tuple"):
            raise ValueError(
                f"unknown build_strategy {build_strategy!r}; "
                "expected 'auto', 'bulk' or 'tuple'"
            )
        if table.n_rows == 0:
            return
        bulk = build_strategy == "bulk" or (
            build_strategy == "auto" and table.n_rows >= BULK_ABSORB_THRESHOLD
        )
        path = "bulk" if bulk else "tuple"
        with _TRACER.span("absorb_batch", rows=table.n_rows, path=path):
            self._note_codes(table.dim_codes)
            if bulk:
                codes = table.dim_codes
                if self.plan is not None:
                    codes = self.plan.transform_codes(codes)
                self._absorb_arrays(codes, table.measures)
            else:
                state_from_row = self.aggregator.state_from_row
                dims = range(table.n_dims)
                plan = self.plan
                for row, measures in zip(table.dim_rows(), table.measure_rows()):
                    if plan is not None:
                        row = plan.transform_row(row)
                    pairs = [(d, row[d]) for d in dims]
                    self.trie._insert(row.__getitem__, pairs, state_from_row(measures))
        _ABSORB_BATCHES.inc(path=path)
        _ABSORB_ROWS.inc(table.n_rows, path=path)
        self.n_rows_absorbed += table.n_rows

    def insert_batch(
        self,
        rows: Sequence[Sequence[int]],
        measures: Sequence[Sequence[float]] | None = None,
        *,
        build_strategy: str = "auto",
    ) -> None:
        """Absorb a batch of encoded fact rows (the serving append path).

        Same strategy selection as :meth:`insert_table`; ``measures``
        defaults to zero measure columns (COUNT-only aggregators).
        """
        n_rows = len(rows)
        if n_rows == 0:
            return
        if build_strategy not in ("auto", "bulk", "tuple"):
            raise ValueError(
                f"unknown build_strategy {build_strategy!r}; "
                "expected 'auto', 'bulk' or 'tuple'"
            )
        if build_strategy == "tuple" or (
            build_strategy == "auto" and n_rows < BULK_ABSORB_THRESHOLD
        ):
            if measures is None:
                measures = [()] * n_rows
            with _TRACER.span("absorb_batch", rows=n_rows, path="tuple"):
                for row, meas in zip(rows, measures):
                    self.insert_row(row, meas)
            _ABSORB_BATCHES.inc(path="tuple")
            _ABSORB_ROWS.inc(n_rows, path="tuple")
            return
        with _TRACER.span("absorb_batch", rows=n_rows, path="bulk"):
            codes = np.asarray(rows, dtype=np.int64).reshape(n_rows, self.trie.n_dims)
            self._note_codes(codes)
            if self.plan is not None:
                codes = self.plan.transform_codes(codes)
            if measures is None:
                meas = np.zeros((n_rows, 0), dtype=np.float64)
            else:
                meas = np.asarray(measures, dtype=np.float64).reshape(n_rows, -1)
            self._absorb_arrays(codes, meas)
        _ABSORB_BATCHES.inc(path="bulk")
        _ABSORB_ROWS.inc(n_rows, path="bulk")
        self.n_rows_absorbed += n_rows

    def _absorb_arrays(self, dim_codes: np.ndarray, measures: np.ndarray) -> None:
        """Bulk-build the batch's trie and fuse it into the resident one.

        The merge consumes both inputs (the result shares their untouched
        sub-tries), which is exactly the resident-trie lifecycle: the old
        trie reference is dropped on assignment.
        """
        from repro.core.partitioned import merge_tries

        batch = RangeTrie.bulk_build_arrays(
            self.trie.n_dims, dim_codes, measures, self.aggregator
        )
        if self.trie.root.agg is None:
            self.trie = batch
        else:
            self.trie = merge_tries([self.trie, batch])

    def insert_row(self, row: Sequence[int], measures: Sequence[float] = ()) -> None:
        """Absorb a single encoded fact row (original-space codes)."""
        if len(row) != self.trie.n_dims:
            raise ValueError(
                f"row has {len(row)} dims, cuber expects {self.trie.n_dims}"
            )
        self._note_row(row)
        if self.plan is not None:
            row = self.plan.transform_row(row)
        pairs = [(d, row[d]) for d in range(len(row))]
        self.trie._insert(
            tuple(row).__getitem__, pairs, self.aggregator.state_from_row(measures)
        )
        self.n_rows_absorbed += 1

    def cube(self, min_support: int = 1) -> RangeCube:
        """The range cube over everything absorbed so far.

        Always expressed in original dimension order and value coding:
        when a tuning plan is active the traversal runs in planned trie
        space and the emitted ranges are restored through the plan's
        inverse maps.
        """
        cube = range_cubing_from_trie(self.trie, min_support)
        if self.plan is None or self.plan.is_identity:
            return cube
        return RangeCube(
            cube.n_dims, cube.aggregator, self.plan.restore_ranges(cube.ranges)
        )

    @property
    def trie_nodes(self) -> int:
        return self.trie.n_nodes()
