"""Incremental range-cube maintenance.

The range trie is built by one-tuple-at-a-time insertion and is invariant
to insertion order (paper Section 3.1), which makes it a natural vehicle
for incremental cube maintenance: keep the trie resident, append new fact
batches into it, and re-emit the range cube on demand.  Because the trie
after ``insert(batch2)`` is *identical* to the trie built from
``batch1 + batch2`` in one load, the incrementally maintained cube equals
the batch-recomputed cube exactly — a property the test suite checks
structurally.

This addresses the maintenance question the original leaves open: the
expensive part of range cubing (trie construction over the full history)
is amortized across loads, and only the traversal (proportional to the
*output*, not the input) is paid per refresh.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.range_cube import RangeCube
from repro.core.range_cubing import _traverse
from repro.core.range_trie import RangeTrie
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable


def range_cubing_from_trie(
    trie: RangeTrie,
    min_support: int = 1,
) -> RangeCube:
    """Emit the range cube of an already-built trie (traversal only).

    The trie is not modified (Algorithm 2's reductions are
    non-destructive), so it can keep absorbing inserts afterwards.
    """
    ranges = _traverse(trie, trie.aggregator, min_support)
    return RangeCube(trie.n_dims, trie.aggregator, ranges)


class IncrementalRangeCuber:
    """A resident range trie that absorbs fact batches and re-emits cubes.

    >>> cuber = IncrementalRangeCuber(schema.n_dims)      # doctest: +SKIP
    >>> cuber.insert_table(monday_facts)                  # doctest: +SKIP
    >>> cube = cuber.cube()                               # doctest: +SKIP
    >>> cuber.insert_table(tuesday_facts)                 # doctest: +SKIP
    >>> cube = cuber.cube()     # == batch recompute over both days
    """

    def __init__(self, n_dims: int, aggregator: Aggregator | None = None) -> None:
        self.aggregator = aggregator or default_aggregator(1)
        self.trie = RangeTrie(n_dims, self.aggregator)
        self.n_rows_absorbed = 0

    def insert_table(self, table: BaseTable) -> None:
        """Absorb every row of ``table`` (schema must match in arity)."""
        if table.n_dims != self.trie.n_dims:
            raise ValueError(
                f"table has {table.n_dims} dims, cuber expects {self.trie.n_dims}"
            )
        state_from_row = self.aggregator.state_from_row
        dims = range(table.n_dims)
        for row, measures in zip(table.dim_rows(), table.measure_rows()):
            pairs = [(d, row[d]) for d in dims]
            self.trie._insert(row.__getitem__, pairs, state_from_row(measures))
        self.n_rows_absorbed += table.n_rows

    def insert_row(self, row: Sequence[int], measures: Sequence[float] = ()) -> None:
        """Absorb a single encoded fact row."""
        if len(row) != self.trie.n_dims:
            raise ValueError(
                f"row has {len(row)} dims, cuber expects {self.trie.n_dims}"
            )
        pairs = [(d, row[d]) for d in range(len(row))]
        self.trie._insert(
            tuple(row).__getitem__, pairs, self.aggregator.state_from_row(measures)
        )
        self.n_rows_absorbed += 1

    def cube(self, min_support: int = 1) -> RangeCube:
        """The range cube over everything absorbed so far."""
        return range_cubing_from_trie(self.trie, min_support)

    @property
    def trie_nodes(self) -> int:
        return self.trie.n_nodes()
