"""The range trie (paper Section 3, Definition 4, Algorithm 1).

A range trie compresses a base table by storing, in every node, the *set*
of dimension values shared by all tuples below it — not just a shared
prefix, as the H-tree and star-tree do.  A node's key is a set of
``(dimension, value)`` pairs; the smallest dimension in a node's subtree is
its *start dimension*, siblings carry distinct values on their (common)
start dimension, and the start-dimension values along a root-to-node path
jointly *imply* every non-start value stored on that path (paper Lemma 2).
That implication is exactly the data correlation range cubing exploits: all
cells between "start values only" and "every value on the path" share one
aggregation value (paper Lemma 3).

Construction (paper Algorithm 1, reproduced here verbatim in structure)
inserts one tuple at a time, peeling off matched common values and
restructuring a node when some of its key values are *not* shared with the
incoming tuple:

* if the unmatched values sit on dimensions larger than the node's
  children's start dimension, they are *appended* to every child's key;
* otherwise the node is *split*: a new interior node takes the unmatched
  values and the old children, and a new leaf takes the remainder of the
  tuple.

The resulting trie is invariant to tuple insertion order (tested by
property tests), which also makes it a canonical form for the reduction
step of range cubing.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable

#: A node key: ``((dim, value), ...)`` sorted by dimension index.
Key = tuple  # tuple[tuple[int, int], ...]


def merge_key(a: Key, b: Sequence[tuple[int, int]]) -> Key:
    """Merge two dimension-disjoint keys, keeping dimension order."""
    merged = sorted((*a, *b))
    return tuple(merged)


class RangeTrieNode:
    """One node: a key of shared (dim, value) pairs, children, an aggregate.

    ``children`` maps each child's start-dimension *value* to the child;
    all children of one node share the same start *dimension* (paper
    Proposition 1), so the value alone identifies the branch.
    """

    __slots__ = ("key", "children", "agg")

    def __init__(self, key: Key, children: dict | None, agg) -> None:
        self.key = key
        self.children = children if children is not None else {}
        self.agg = agg

    def __getstate__(self) -> tuple:
        # Compact pickle support (``__slots__`` classes get no instance
        # dict): tries cross the process boundary in the parallel
        # partitioned engine, so worker-built sub-tries must ship back
        # cheaply.  Depth is bounded by the dimension count, so the
        # pickler's recursion over children is safe.
        return (self.key, self.children, self.agg)

    def __setstate__(self, state: tuple) -> None:
        self.key, self.children, self.agg = state

    @property
    def start_dim(self) -> int:
        return self.key[0][0]

    @property
    def start_value(self) -> int:
        return self.key[0][1]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        key = ",".join(f"d{d}={v}" for d, v in self.key)
        return f"<node ({key}) children={len(self.children)}>"


class RangeTrie:
    """A range trie over all dimensions of a base table.

    The root's key is empty (the paper's convention); every tuple's values
    are distributed over the keys of one root-to-leaf path.
    """

    def __init__(self, n_dims: int, aggregator: Aggregator) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = RangeTrieNode((), {}, None)

    # ------------------------------------------------------------------
    # construction (paper Algorithm 1)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: BaseTable,
        aggregator: Aggregator | None = None,
    ) -> "RangeTrie":
        """One scan over ``table``, inserting every tuple (Algorithm 1).

        The trie follows the table's dimension order; callers wanting a
        different order reorder the table first (``table.reordered``).
        """
        agg = aggregator or default_aggregator(table.n_measures)
        trie = cls(table.n_dims, agg)
        state_from_row = agg.state_from_row
        dims = range(table.n_dims)
        for row, measures in zip(table.dim_rows(), table.measure_rows()):
            pairs = [(d, row[d]) for d in dims]
            trie._insert(row.__getitem__, pairs, state_from_row(measures))
        return trie

    def insert_assignment(self, pairs: Sequence[tuple[int, int]], state) -> None:
        """Insert one pre-aggregated tuple given as sorted (dim, value) pairs.

        Used by the reference (rebuild-based) trie reduction and by tests;
        ``pairs`` must cover every dimension of the trie exactly once.
        """
        values = dict(pairs)
        self._insert(values.__getitem__, sorted(pairs), state)

    def _insert(
        self,
        value_of: Callable[[int], int],
        remaining: list[tuple[int, int]],
        state,
    ) -> None:
        merge = self.aggregator.merge
        node = self.root
        node.agg = state if node.agg is None else merge(node.agg, state)
        while remaining:
            child = node.children.get(remaining[0][1])
            if child is None:
                # No branch shares the tuple's start value: new leaf with
                # every remaining value as its key (Algorithm 1 lines 6-8).
                node.children[remaining[0][1]] = RangeTrieNode(tuple(remaining), {}, state)
                return
            ckey = child.key
            common = [p for p in ckey if value_of(p[0]) == p[1]]
            if len(common) == len(ckey):
                # Whole key shared: descend with the unconsumed values
                # (Algorithm 1 lines 10-11, 24).
                consumed = {p[0] for p in ckey}
                remaining = [p for p in remaining if p[0] not in consumed]
                child.agg = merge(child.agg, state)
                node = child
                continue
            # Some key values are not shared with this tuple: restructure
            # (Algorithm 1 lines 12-23).
            diff = [p for p in ckey if value_of(p[0]) != p[1]]
            common_dims = {p[0] for p in common}
            remaining = [p for p in remaining if p[0] not in common_dims]
            if child.children and diff[0][0] > next(iter(child.children.values())).start_dim:
                # The unmatched dimensions all come after the children's
                # start dimension: push them down into every child's key
                # (line 16) and keep inserting below this node.
                for grandchild in child.children.values():
                    grandchild.key = merge_key(grandchild.key, diff)
                child.key = tuple(common)
                child.agg = merge(child.agg, state)
                node = child
                continue
            # Split: the unmatched values move to a new interior node that
            # inherits the old children; the tuple's remainder becomes a
            # new leaf (lines 18-21).
            old_branch = RangeTrieNode(tuple(diff), child.children, child.agg)
            new_leaf = RangeTrieNode(tuple(remaining), {}, state)
            child.key = tuple(common)
            child.children = {
                old_branch.start_value: old_branch,
                new_leaf.start_value: new_leaf,
            }
            child.agg = merge(child.agg, state)
            return

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def total_agg(self):
        """Aggregate state over the whole table (the apex cell's value)."""
        return self.root.agg

    def n_nodes(self) -> int:
        """Number of nodes excluding the (empty-key) root.

        This is the paper's *node count* metric: the number of recursive
        calls of range cubing equals the number of interior nodes, and the
        node ratio against the H-tree indicates memory demand.
        """
        return sum(1 for _ in self.iter_nodes())

    def n_leaves(self) -> int:
        return sum(1 for n in self.iter_nodes() if n.is_leaf)

    def n_interior(self) -> int:
        return sum(1 for n in self.iter_nodes() if not n.is_leaf)

    def max_depth(self) -> int:
        """Longest root-to-leaf path length (paper: bounded by n_dims)."""

        def depth(node: RangeTrieNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth(c) for c in node.children.values())

        return depth(self.root)

    def iter_nodes(self) -> Iterator[RangeTrieNode]:
        """All non-root nodes, depth-first."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaf_assignments(self) -> Iterator[tuple[dict[int, int], object]]:
        """Per leaf: the full {dim: value} assignment along its path + agg.

        Duplicated base tuples appear once, pre-aggregated — this is the
        trie's lossless summary of the table and the input to the
        reference (rebuild) reduction.
        """

        def walk(node: RangeTrieNode, acc: dict[int, int]) -> Iterator:
            acc = {**acc, **dict(node.key)}
            if node.is_leaf:
                yield acc, node.agg
            else:
                for child in node.children.values():
                    yield from walk(child, acc)

        for child in self.root.children.values():
            yield from walk(child, {})

    # ------------------------------------------------------------------
    # invariant checking (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify Definition 4 plus the derived properties of Section 3.

        Raises ``AssertionError`` with a description on the first violation.
        """
        count = self.aggregator.count

        def walk(node: RangeTrieNode, used_dims: set[int], min_start: int) -> None:
            assert node.key, "non-root node with empty key"
            dims = [d for d, _ in node.key]
            assert dims == sorted(dims), f"key not dimension-sorted: {node.key}"
            assert len(set(dims)) == len(dims), f"duplicate dims in key: {node.key}"
            assert not used_dims.intersection(dims), (
                f"key {node.key} repeats an ancestor dimension"
            )
            assert node.start_dim > min_start, (
                f"start dim {node.start_dim} not larger than ancestor start {min_start}"
            )
            if node.children:
                starts = {c.start_dim for c in node.children.values()}
                assert len(starts) == 1, f"children disagree on start dim: {starts}"
                values = [c.start_value for c in node.children.values()]
                assert len(set(values)) == len(values), "sibling start values collide"
                assert len(node.children) >= 2, (
                    "interior node with a single child (should have merged keys)"
                )
                for value, child in node.children.items():
                    assert value == child.start_value, "children dict mis-keyed"
                child_total = None
                for child in node.children.values():
                    child_total = (
                        child.agg
                        if child_total is None
                        else self.aggregator.merge(child_total, child.agg)
                    )
                assert count(child_total) == count(node.agg), (
                    f"node count {count(node.agg)} != children sum {count(child_total)}"
                )
                for child in node.children.values():
                    walk(child, used_dims.union(dims), node.start_dim)

        root = self.root
        assert root.key == (), "root key must be empty"
        if root.children:
            starts = {c.start_dim for c in root.children.values()}
            assert len(starts) == 1, f"root children disagree on start dim: {starts}"
            for child in root.children.values():
                walk(child, set(), -1)
