"""The range trie (paper Section 3, Definition 4, Algorithm 1).

A range trie compresses a base table by storing, in every node, the *set*
of dimension values shared by all tuples below it — not just a shared
prefix, as the H-tree and star-tree do.  A node's key is a set of
``(dimension, value)`` pairs; the smallest dimension in a node's subtree is
its *start dimension*, siblings carry distinct values on their (common)
start dimension, and the start-dimension values along a root-to-node path
jointly *imply* every non-start value stored on that path (paper Lemma 2).
That implication is exactly the data correlation range cubing exploits: all
cells between "start values only" and "every value on the path" share one
aggregation value (paper Lemma 3).

Construction (paper Algorithm 1, reproduced here verbatim in structure)
inserts one tuple at a time, peeling off matched common values and
restructuring a node when some of its key values are *not* shared with the
incoming tuple:

* if the unmatched values sit on dimensions larger than the node's
  children's start dimension, they are *appended* to every child's key;
* otherwise the node is *split*: a new interior node takes the unmatched
  values and the old children, and a new leaf takes the remainder of the
  tuple.

The resulting trie is invariant to tuple insertion order (tested by
property tests), which also makes it a canonical form for the reduction
step of range cubing — and that canonical form admits a second, much
faster construction: :meth:`RangeTrie.bulk_build` lexsorts the table's
dense dimension-code matrix once and materializes Definition 4 directly
by recursive range partitioning.  Every subtree is a contiguous row
range of the sorted matrix: the dimensions constant across the range
*are* the node's key (the common-value factoring Algorithm 1 discovers
incrementally), and the remaining rows group by the start dimension's
already-sorted codes.  Duplicate rows collapse into adjacent groups
whose aggregate states come from ONE pass of the segment-reduce batch
kernels of :mod:`repro.table.aggregates` (``ufunc.reduceat``); interior
nodes merge children's states instead of paying one
:meth:`~repro.table.aggregates.Aggregator.merge` call per tuple.  Both
constructions yield the identical canonical trie (property-tested node
by node), so ``bulk_build`` is the default batch path and Algorithm 1
remains the streaming path.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable

#: A node key: ``((dim, value), ...)`` sorted by dimension index.
Key = tuple  # tuple[tuple[int, int], ...]


def merge_key(a: Key, b: Sequence[tuple[int, int]]) -> Key:
    """Merge two dimension-disjoint keys, keeping dimension order."""
    merged = sorted((*a, *b))
    return tuple(merged)


class TrieStats(NamedTuple):
    """A single-pass census of a trie (the empty-key root excluded)."""

    nodes: int
    interior: int
    leaves: int
    max_depth: int


class RangeTrieNode:
    """One node: a key of shared (dim, value) pairs, children, an aggregate.

    ``children`` maps each child's start-dimension *value* to the child;
    all children of one node share the same start *dimension* (paper
    Proposition 1), so the value alone identifies the branch.
    """

    __slots__ = ("key", "children", "agg")

    def __init__(self, key: Key, children: dict | None, agg) -> None:
        self.key = key
        self.children = children if children is not None else {}
        self.agg = agg

    def __getstate__(self) -> tuple:
        # Compact pickle support (``__slots__`` classes get no instance
        # dict): tries cross the process boundary in the parallel
        # partitioned engine, so worker-built sub-tries must ship back
        # cheaply.  Depth is bounded by the dimension count, so the
        # pickler's recursion over children is safe.
        return (self.key, self.children, self.agg)

    def __setstate__(self, state: tuple) -> None:
        self.key, self.children, self.agg = state

    @property
    def start_dim(self) -> int:
        return self.key[0][0]

    @property
    def start_value(self) -> int:
        return self.key[0][1]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        key = ",".join(f"d{d}={v}" for d, v in self.key)
        return f"<node ({key}) children={len(self.children)}>"


class RangeTrie:
    """A range trie over all dimensions of a base table.

    The root's key is empty (the paper's convention); every tuple's values
    are distributed over the keys of one root-to-leaf path.
    """

    def __init__(self, n_dims: int, aggregator: Aggregator) -> None:
        self.n_dims = n_dims
        self.aggregator = aggregator
        self.root = RangeTrieNode((), {}, None)

    # ------------------------------------------------------------------
    # construction (paper Algorithm 1)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: BaseTable,
        aggregator: Aggregator | None = None,
    ) -> "RangeTrie":
        """One scan over ``table``, inserting every tuple (Algorithm 1).

        The trie follows the table's dimension order; callers wanting a
        different order reorder the table first (``table.reordered``).
        """
        agg = aggregator or default_aggregator(table.n_measures)
        trie = cls(table.n_dims, agg)
        state_from_row = agg.state_from_row
        dims = range(table.n_dims)
        for row, measures in zip(table.dim_rows(), table.measure_rows()):
            pairs = [(d, row[d]) for d in dims]
            trie._insert(row.__getitem__, pairs, state_from_row(measures))
        return trie

    @classmethod
    def bulk_build(
        cls,
        table: BaseTable,
        aggregator: Aggregator | None = None,
        *,
        timings: dict | None = None,
    ) -> "RangeTrie":
        """Sort-based bulk construction: the same canonical trie as
        :meth:`build`, built from the table's dense code matrix in one
        ``np.lexsort`` plus a recursive vectorized partition (see the
        module docstring).

        ``timings``, when given, receives the per-phase breakdown
        (``sort_seconds``, ``group_seconds``, ``aggregate_seconds``).
        """
        agg = aggregator or default_aggregator(table.n_measures)
        return cls.bulk_build_arrays(
            table.n_dims, table.dim_codes, table.measures, agg, timings=timings
        )

    @classmethod
    def bulk_build_arrays(
        cls,
        n_dims: int,
        dim_codes: np.ndarray,
        measures: np.ndarray,
        aggregator: Aggregator,
        *,
        timings: dict | None = None,
    ) -> "RangeTrie":
        """:meth:`bulk_build` over raw encoded arrays (no table wrapper).

        This is the entry point the partitioned and incremental engines
        use: partitions ship across process boundaries as bare numpy
        slices, and append batches arrive as freshly assembled arrays.
        """
        trie = cls(n_dims, aggregator)
        n_rows = dim_codes.shape[0]
        if timings is not None:
            timings.update(sort_seconds=0.0, group_seconds=0.0, aggregate_seconds=0.0)
        if n_rows == 0:
            return trie
        t0 = time.perf_counter()
        # np.lexsort keys run last-to-first: reverse the columns so
        # dimension 0 is the primary sort key (the trie's start dim).
        order = np.lexsort(dim_codes.T[::-1])
        codes = dim_codes[order]
        meas = measures[order]
        t1 = time.perf_counter()
        builder = _BulkBuilder(codes, meas, aggregator, timed=timings is not None)
        builder.build_into(trie.root)
        t2 = time.perf_counter()
        if timings is not None:
            timings["sort_seconds"] = t1 - t0
            timings["aggregate_seconds"] = builder.aggregate_seconds
            timings["group_seconds"] = (t2 - t1) - builder.aggregate_seconds
        return trie

    def insert_assignment(self, pairs: Sequence[tuple[int, int]], state) -> None:
        """Insert one pre-aggregated tuple given as sorted (dim, value) pairs.

        Used by the reference (rebuild-based) trie reduction and by tests;
        ``pairs`` must cover every dimension of the trie exactly once.
        """
        pairs = list(pairs)
        if any(pairs[i][0] >= pairs[i + 1][0] for i in range(len(pairs) - 1)):
            pairs.sort()  # callers usually pass dimension-sorted pairs already
        values = dict(pairs)
        self._insert(values.__getitem__, pairs, state)

    def _insert(
        self,
        value_of: Callable[[int], int],
        remaining: list[tuple[int, int]],
        state,
    ) -> None:
        merge = self.aggregator.merge
        node = self.root
        node.agg = state if node.agg is None else merge(node.agg, state)
        while remaining:
            child = node.children.get(remaining[0][1])
            if child is None:
                # No branch shares the tuple's start value: new leaf with
                # every remaining value as its key (Algorithm 1 lines 6-8).
                node.children[remaining[0][1]] = RangeTrieNode(tuple(remaining), {}, state)
                return
            ckey = child.key
            common = [p for p in ckey if value_of(p[0]) == p[1]]
            if len(common) == len(ckey):
                # Whole key shared: descend with the unconsumed values
                # (Algorithm 1 lines 10-11, 24).
                consumed = {p[0] for p in ckey}
                remaining = [p for p in remaining if p[0] not in consumed]
                child.agg = merge(child.agg, state)
                node = child
                continue
            # Some key values are not shared with this tuple: restructure
            # (Algorithm 1 lines 12-23).
            diff = [p for p in ckey if value_of(p[0]) != p[1]]
            common_dims = {p[0] for p in common}
            remaining = [p for p in remaining if p[0] not in common_dims]
            if child.children and diff[0][0] > next(iter(child.children.values())).start_dim:
                # The unmatched dimensions all come after the children's
                # start dimension: push them down into every child's key
                # (line 16) and keep inserting below this node.
                for grandchild in child.children.values():
                    grandchild.key = merge_key(grandchild.key, diff)
                child.key = tuple(common)
                child.agg = merge(child.agg, state)
                node = child
                continue
            # Split: the unmatched values move to a new interior node that
            # inherits the old children; the tuple's remainder becomes a
            # new leaf (lines 18-21).
            old_branch = RangeTrieNode(tuple(diff), child.children, child.agg)
            new_leaf = RangeTrieNode(tuple(remaining), {}, state)
            child.key = tuple(common)
            child.children = {
                old_branch.start_value: old_branch,
                new_leaf.start_value: new_leaf,
            }
            child.agg = merge(child.agg, state)
            return

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def total_agg(self):
        """Aggregate state over the whole table (the apex cell's value)."""
        return self.root.agg

    def stats(self) -> TrieStats:
        """Node, interior and leaf counts plus max depth, in ONE walk.

        The node count is the paper's metric (recursive calls of range
        cubing = interior nodes; the node ratio against the H-tree
        indicates memory demand), and the harness reports all four
        numbers — collecting them in a single pass avoids re-iterating
        the trie once per counter.
        """
        nodes = interior = leaves = max_depth = 0
        stack = [(child, 1) for child in self.root.children.values()]
        while stack:
            node, depth = stack.pop()
            nodes += 1
            if node.children:
                interior += 1
                next_depth = depth + 1
                stack.extend((c, next_depth) for c in node.children.values())
            else:
                leaves += 1
                if depth > max_depth:
                    max_depth = depth
        return TrieStats(nodes, interior, leaves, max_depth)

    def n_nodes(self) -> int:
        """Number of nodes excluding the (empty-key) root."""
        return self.stats().nodes

    def n_leaves(self) -> int:
        return self.stats().leaves

    def n_interior(self) -> int:
        return self.stats().interior

    def max_depth(self) -> int:
        """Longest root-to-leaf path length (paper: bounded by n_dims)."""
        return self.stats().max_depth

    def iter_nodes(self) -> Iterator[RangeTrieNode]:
        """All non-root nodes, depth-first."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaf_assignments(self) -> Iterator[tuple[dict[int, int], object]]:
        """Per leaf: the full {dim: value} assignment along its path + agg.

        Duplicated base tuples appear once, pre-aggregated — this is the
        trie's lossless summary of the table and the input to the
        reference (rebuild) reduction.
        """

        def walk(node: RangeTrieNode, acc: dict[int, int]) -> Iterator:
            acc = {**acc, **dict(node.key)}
            if node.is_leaf:
                yield acc, node.agg
            else:
                for child in node.children.values():
                    yield from walk(child, acc)

        for child in self.root.children.values():
            yield from walk(child, {})

    # ------------------------------------------------------------------
    # invariant checking (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify Definition 4 plus the derived properties of Section 3.

        Raises ``AssertionError`` with a description on the first violation.
        """
        count = self.aggregator.count

        def walk(node: RangeTrieNode, used_dims: set[int], min_start: int) -> None:
            assert node.key, "non-root node with empty key"
            dims = [d for d, _ in node.key]
            assert dims == sorted(dims), f"key not dimension-sorted: {node.key}"
            assert len(set(dims)) == len(dims), f"duplicate dims in key: {node.key}"
            assert not used_dims.intersection(dims), (
                f"key {node.key} repeats an ancestor dimension"
            )
            assert node.start_dim > min_start, (
                f"start dim {node.start_dim} not larger than ancestor start {min_start}"
            )
            if node.children:
                starts = {c.start_dim for c in node.children.values()}
                assert len(starts) == 1, f"children disagree on start dim: {starts}"
                values = [c.start_value for c in node.children.values()]
                assert len(set(values)) == len(values), "sibling start values collide"
                assert len(node.children) >= 2, (
                    "interior node with a single child (should have merged keys)"
                )
                for value, child in node.children.items():
                    assert value == child.start_value, "children dict mis-keyed"
                child_total = None
                for child in node.children.values():
                    child_total = (
                        child.agg
                        if child_total is None
                        else self.aggregator.merge(child_total, child.agg)
                    )
                assert count(child_total) == count(node.agg), (
                    f"node count {count(node.agg)} != children sum {count(child_total)}"
                )
                for child in node.children.values():
                    walk(child, used_dims.union(dims), node.start_dim)

        root = self.root
        assert root.key == (), "root key must be empty"
        if root.children:
            starts = {c.start_dim for c in root.children.values()}
            assert len(starts) == 1, f"root children disagree on start dim: {starts}"
            for child in root.children.values():
                walk(child, set(), -1)


# ---------------------------------------------------------------------------
# sort-based bulk construction
# ---------------------------------------------------------------------------


class _BulkBuilder:
    """Recursive construction over a lexsorted code matrix.

    All the heavy lifting happens in a handful of whole-table vectorized
    passes up front; the recursion itself touches only precomputed plain
    Python lists (per-node numpy calls on tiny sub-blocks would cost more
    than they save — the trie has roughly one node per distinct row):

    * duplicate rows are collapsed into *groups* (identical rows are
      adjacent after the lexsort), and ONE ``reduce_segments`` call — the
      segment-reduce batch kernel, ``np.add.reduceat`` and friends for
      the built-in aggregators — produces every group's state in one
      shot.  Leaf states are these group states verbatim; interior states
      merge their children's while the recursion unwinds.
    * per dimension, a cumulative change count over the group rows
      answers "is this dimension constant on group range [a, b)?" with
      two list lookups — the vectorized constant-dimension detection
      whose survivors form the node's key (Algorithm 1's common-value
      factoring).
    * per dimension, the sorted positions where consecutive groups differ
      give the partition boundaries of any range via two bisects — the
      lexsort guarantees the smallest varying free dimension's value
      groups are contiguous.
    """

    __slots__ = (
        "agg", "merge", "n_dims", "rows", "base_states",
        "csum", "breaks", "aggregate_seconds",
    )

    def __init__(
        self,
        codes: np.ndarray,
        measures: np.ndarray,
        aggregator: Aggregator,
        timed: bool = False,
    ) -> None:
        self.agg = aggregator
        self.merge = aggregator.merge
        self.n_dims = codes.shape[1]
        n_rows = codes.shape[0]
        # Duplicate-row groups: identical rows are adjacent once sorted.
        change = codes[1:] != codes[:-1]
        starts = np.flatnonzero(change.any(axis=1)) + 1 if self.n_dims else []
        starts = np.concatenate((np.zeros(1, dtype=np.intp), starts))
        t0 = time.perf_counter()
        self.base_states = aggregator.reduce_segments(measures, starts)
        self.aggregate_seconds = time.perf_counter() - t0 if timed else 0.0
        # Everything the recursion reads, as plain Python lists.
        reps = codes[starts]
        self.rows: list[list[int]] = reps.tolist()
        gchange = reps[1:] != reps[:-1]
        csum = np.zeros((len(starts), self.n_dims), dtype=np.int64)
        np.cumsum(gchange, axis=0, out=csum[1:])
        self.csum = [col.tolist() for col in csum.T]
        self.breaks = [
            np.flatnonzero(gchange[:, d]).tolist() for d in range(self.n_dims)
        ]

    def build_into(self, root: RangeTrieNode) -> None:
        """Populate ``root`` (empty key, by convention) from all rows.

        The recursion is a closure over local bindings of the precomputed
        lists: with one node per distinct row, attribute lookups and
        helper calls on the per-node path are the actual cost, so leaves
        are constructed inline in their parent's partition loop.
        """
        if self.n_dims == 0:
            # No dimensions: every tuple collapses into the root.
            root.agg = self.base_states[0]
            return
        rows = self.rows
        base_states = self.base_states
        csum = self.csum
        all_breaks = self.breaks
        merge = self.merge
        node = RangeTrieNode

        def build(a: int, b: int, part: int, dims: list[int]) -> RangeTrieNode:
            """The node for sorted row groups ``[a, b)``.

            ``part`` is the dimension the caller partitioned on — constant
            on the range by construction, so the key is never empty —
            and ``dims`` the free dimensions after it.  ``b - a >= 2``
            (single groups become leaves inline below).
            """
            row = rows[a]
            const = [(part, row[part])]
            varying = []
            top = b - 1
            for d in dims:
                counts = csum[d]
                if counts[top] - counts[a]:
                    varying.append(d)
                else:
                    const.append((d, row[d]))
            # Partition on the smallest varying dimension (two distinct
            # group rows differ somewhere, so ``varying`` is non-empty).
            p = varying[0]
            rest = varying[1:]
            breaks = all_breaks[p]
            i = bisect_left(breaks, a)
            children: dict[int, RangeTrieNode] = {}
            state = None
            lo = a
            for pos in breaks[i : bisect_left(breaks, top, i)]:
                hi = pos + 1
                if hi - lo == 1:
                    r = rows[lo]
                    child = node(
                        ((p, r[p]), *[(d, r[d]) for d in rest]), {}, base_states[lo]
                    )
                else:
                    child = build(lo, hi, p, rest)
                children[rows[lo][p]] = child
                state = child.agg if state is None else merge(state, child.agg)
                lo = hi
            if b - lo == 1:
                r = rows[lo]
                child = node(
                    ((p, r[p]), *[(d, r[d]) for d in rest]), {}, base_states[lo]
                )
            else:
                child = build(lo, b, p, rest)
            children[rows[lo][p]] = child
            state = child.agg if state is None else merge(state, child.agg)
            return node(tuple(const), children, state)

        # Root children partition on dimension 0's value — even a
        # globally constant dimension 0 yields (one) root child, exactly
        # as Algorithm 1 branches the root on the first key pair.
        dims = list(range(1, self.n_dims))
        total = None
        breaks0 = all_breaks[0]
        g = len(rows)
        bounds = [0, *[pos + 1 for pos in breaks0[: bisect_left(breaks0, g - 1)]], g]
        for a, b in zip(bounds, bounds[1:]):
            if b - a == 1:
                r = rows[a]
                child = node(
                    ((0, r[0]), *[(d, r[d]) for d in dims]), {}, base_states[a]
                )
            else:
                child = build(a, b, 0, dims)
            root.children[child.start_value] = child
            total = child.agg if total is None else merge(total, child.agg)
        root.agg = total
