"""JSON persistence for range tries (and cuber state).

An :class:`~repro.core.incremental.IncrementalRangeCuber` is only useful
if its resident trie survives process restarts.  This module serializes a
range trie to a compact JSON document — nested ``[key, agg, children]``
triples — and restores it exactly (node for node, state for state).  Only
aggregate states made of numbers and nested lists/tuples round-trip,
which covers every aggregator in :mod:`repro.table.aggregates`; richer
states raise up front rather than corrupting silently.

Range cubes already persist via CSV (:mod:`repro.data.io`); base tables
via CSV as well.  With this module the complete warehouse state —
history trie + emitted cube — is restartable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.table.aggregates import Aggregator

FORMAT_VERSION = 1


def _check_state(state) -> None:
    if isinstance(state, (int, float)):
        return
    if isinstance(state, (list, tuple)):
        for item in state:
            _check_state(item)
        return
    raise TypeError(
        f"aggregate state contains non-serializable value {state!r}; "
        "only numbers and nested tuples/lists round-trip"
    )


def _state_to_json(state):
    _check_state(state)
    return state


def _state_from_json(value):
    """Restore tuples (JSON arrays) recursively — states are tuples."""
    if isinstance(value, list):
        return tuple(_state_from_json(v) for v in value)
    return value


def _node_to_json(node: RangeTrieNode) -> list:
    return [
        [list(pair) for pair in node.key],
        _state_to_json(node.agg),
        [_node_to_json(child) for child in node.children.values()],
    ]


def _node_from_json(data: list) -> RangeTrieNode:
    key = tuple((int(d), int(v)) for d, v in data[0])
    node = RangeTrieNode(key, {}, _state_from_json(data[1]))
    for child_data in data[2]:
        child = _node_from_json(child_data)
        node.children[child.start_value] = child
    return node


def trie_to_json(trie: RangeTrie) -> str:
    """Serialize a range trie (structure + aggregate states) to JSON."""
    document = {
        "format": "range-trie",
        "version": FORMAT_VERSION,
        "n_dims": trie.n_dims,
        "root": _node_to_json(trie.root) if trie.root.agg is not None else None,
    }
    return json.dumps(document, separators=(",", ":"))


def trie_from_json(text: str, aggregator: Aggregator) -> RangeTrie:
    """Restore a trie saved by :func:`trie_to_json`.

    The aggregator is supplied by the caller (it holds behaviour, not
    data) and must match the one used when saving.
    """
    document = json.loads(text)
    if document.get("format") != "range-trie":
        raise ValueError("not a range-trie document")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {document.get('version')!r}")
    trie = RangeTrie(int(document["n_dims"]), aggregator)
    if document["root"] is not None:
        trie.root = _node_from_json(document["root"])
    return trie


def save_trie(trie: RangeTrie, path: str | Path) -> None:
    Path(path).write_text(trie_to_json(trie))


def load_trie(path: str | Path, aggregator: Aggregator) -> RangeTrie:
    return trie_from_json(Path(path).read_text(), aggregator)


def save_cuber(cuber: IncrementalRangeCuber, path: str | Path) -> None:
    """Persist an incremental cuber (trie + row counter + tuning plan).

    A cuber built with a :class:`~repro.tune.TuningPlan` keeps its trie
    in planned space (permuted dimensions, possibly permuted values), so
    the plan is part of the state: without it a reload could neither
    restore emitted ranges to original coding nor transform future
    inserts.  The plan's forward value permutations are stored; the
    inverse maps are re-derived on load (``TuningPlan`` computes them
    lazily — the same machinery ``_remap_ranges`` consumes).
    """
    document = {
        "format": "range-cuber",
        "version": FORMAT_VERSION,
        "n_rows_absorbed": cuber.n_rows_absorbed,
        "trie": json.loads(trie_to_json(cuber.trie)),
    }
    if cuber.plan is not None:
        document["tuning"] = cuber.plan.to_json()
    Path(path).write_text(json.dumps(document, separators=(",", ":")))


def load_cuber(path: str | Path, aggregator: Aggregator) -> IncrementalRangeCuber:
    from repro.tune import TuningPlan

    document = json.loads(Path(path).read_text())
    if document.get("format") != "range-cuber":
        raise ValueError("not a range-cuber document")
    trie = trie_from_json(json.dumps(document["trie"]), aggregator)
    plan = None
    if document.get("tuning") is not None:
        plan = TuningPlan.from_json(document["tuning"])
    cuber = IncrementalRangeCuber(trie.n_dims, aggregator, plan=plan)
    cuber.trie = trie
    cuber.n_rows_absorbed = int(document["n_rows_absorbed"])
    return cuber
