"""Per-shard snapshots: mmap handoff for the sharded serving tier.

:func:`save_sharded_snapshot` partitions a fact table exactly like
:meth:`~repro.serve.sharded.ShardRouter.from_table` (value routing on
one shard dimension, global cardinalities), builds each shard's cube and
writes one snapshot directory per shard next to a ``router.json``
describing the fleet — published atomically as one directory swap.

:meth:`ShardRouter.from_snapshot_dir` then spawns the same worker
processes, but each worker *memory-maps* its partition's snapshot
instead of receiving numpy slices over the spawn pickle pipe: the cold
start ships file names, not cubes, and the page cache is shared between
a dying fleet and its replacement.  The workers run
:class:`SnapshotShardEngine` — the scatter surface of
:class:`~repro.serve.sharded.ShardEngine` over a read-only
:class:`~repro.store.engine.SnapshotEngine`; the two-phase append is
refused with a structured ``bad_request`` (ingest means rebuilding and
re-snapshotting).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.core.incremental import IncrementalRangeCuber
from repro.core.partitioned import shard_partition_payloads
from repro.serve.protocol import ErrorCode, ServeError
from repro.serve.sharded import ShardEngine
from repro.store.engine import DEFAULT_BUDGET_BYTES, SnapshotEngine
from repro.store.snapshot import (
    SnapshotError,
    _aggregator_manifest,
    _publish_dir,
    rebuild_aggregator,
    write_snapshot,
)
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Schema

#: The fleet manifest's ``format`` field.
ROUTER_FORMAT = "repro-snapshot-shards"
ROUTER_VERSION = 1
ROUTER_MANIFEST = "router.json"


def is_sharded_snapshot(path: str | Path) -> bool:
    """Whether ``path`` holds a sharded (vs single) snapshot."""
    return (Path(path) / ROUTER_MANIFEST).exists()


def read_router_manifest(path: str | Path) -> dict:
    """The validated fleet manifest of a sharded snapshot directory."""
    manifest_path = Path(path) / ROUTER_MANIFEST
    if not manifest_path.exists():
        raise SnapshotError(
            f"{path} is not a sharded snapshot (no {ROUTER_MANIFEST})"
        )
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != ROUTER_FORMAT:
        raise SnapshotError(f"{manifest_path} is not a {ROUTER_FORMAT} manifest")
    if int(manifest.get("version", 0)) > ROUTER_VERSION:
        raise SnapshotError(
            f"sharded snapshot version {manifest['version']} is newer than "
            f"supported version {ROUTER_VERSION}"
        )
    return manifest


def save_sharded_snapshot(
    table: BaseTable,
    path: str | Path,
    *,
    n_shards: int = 4,
    shard_dim: int = 0,
    aggregator: Aggregator | None = None,
    min_support: int = 1,
    engine_version: int = 0,
) -> Path:
    """Partition ``table``, cube every shard, snapshot the fleet (atomic).

    The partitioning and per-shard cube construction mirror
    :meth:`ShardRouter.from_table` exactly, so a fleet cold-started from
    this directory answers bit-identically to one built live from the
    same table.
    """
    agg = aggregator or default_aggregator(table.n_measures)
    slices = shard_partition_payloads(table, n_shards, shard_dim)
    # Global cardinalities, as in ShardRouter.from_table: a shard's local
    # maximum code must not truncate cross-shard drill-down candidates.
    cardinalities = [c or 0 for c in table.schema.cardinalities]
    schema = Schema(
        tuple(
            Dimension(d.name, card)
            for d, card in zip(table.schema.dimensions, cardinalities)
        ),
        table.schema.measures,
    )
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        shard_names = []
        for shard, (codes, measures) in enumerate(slices):
            shard_name = f"shard_{shard:02d}"
            shard_names.append(shard_name)
            cuber = IncrementalRangeCuber(table.n_dims, agg)
            cuber.insert_table(BaseTable(schema, codes, measures))
            write_snapshot(
                cuber.cube(min_support),
                tmp / shard_name,
                schema,
                min_support=min_support,
                engine_version=engine_version,
                rows_absorbed=len(codes),
                # Each shard carries its own approx-tier sketch (built
                # over its partition; skipped for custom aggregators) so
                # a cold-started fleet estimates without a warm-up build.
                # Distinct per-shard seeds keep the samples independent;
                # the router's variance merge assumes that.
                sketch=True,
                sketch_seed=1 + shard,
            )
        manifest = {
            "format": ROUTER_FORMAT,
            "version": ROUTER_VERSION,
            "n_shards": int(n_shards),
            "shard_dim": int(shard_dim),
            "min_support": int(min_support),
            "engine_version": int(engine_version),
            "rows_absorbed": int(table.n_rows),
            "schema": {
                "dimension_names": list(schema.dimension_names),
                "cardinalities": list(cardinalities),
                "measure_names": list(schema.measure_names),
            },
            "aggregator": _aggregator_manifest(agg),
            "shards": shard_names,
        }
        (tmp / ROUTER_MANIFEST).write_text(
            json.dumps(manifest, indent=1, sort_keys=True)
        )
        _publish_dir(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


class SnapshotShardEngine(ShardEngine):
    """One shard's scatter surface over a memory-mapped snapshot.

    Reuses :class:`ShardEngine`'s read path (``scatter`` and its
    children/dice kernels run over any engine snapshot) but the inner
    engine is a read-only :class:`SnapshotEngine`; the two-phase refresh
    hooks refuse with the same structured error the engine's ``append``
    raises.
    """

    def __init__(
        self,
        shard_id: int,
        path: str | Path,
        *,
        engine_version: int = 0,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        promote_after: int = 2,
    ) -> None:
        # Deliberately no super().__init__: the inner engine maps a
        # snapshot instead of cubing a table slice.
        self.shard_id = shard_id
        self.engine = SnapshotEngine(
            path,
            cache_capacity=8,
            budget_bytes=budget_bytes,
            promote_after=promote_after,
            name=f"shard-{shard_id}",
        )
        # Independent per-shard sampling, as in ShardEngine: only
        # reached when the mapped snapshot lacks a persisted sketch.
        self.engine._sketch_seed = 1 + shard_id
        self.version = int(engine_version)
        self._staged = None
        self._latency = 0.0
        self._fail_next = 0

    def _read_only(self) -> ServeError:
        return ServeError(
            f"shard {self.shard_id} serves an immutable snapshot: rebuild and "
            "re-snapshot the fleet to ingest data",
            code=ErrorCode.BAD_REQUEST,
            shard=self.shard_id,
        )

    def prepare(self, target_version: int, rows: list, measures: list) -> int:
        raise self._read_only()

    def commit(self, target_version: int) -> int:
        raise self._read_only()


def _build_snapshot_shard_engine(payload: tuple) -> SnapshotShardEngine:
    """Worker factory (module-level so it pickles by reference).

    The payload is just ``(shard id, snapshot path, engine version,
    budget, promote_after)`` — the worker maps the columns itself, so
    nothing cube-sized ever crosses the spawn pipe.
    """
    shard_id, path, engine_version, budget_bytes, promote_after = payload
    return SnapshotShardEngine(
        shard_id,
        path,
        engine_version=engine_version,
        budget_bytes=budget_bytes,
        promote_after=promote_after,
    )


def router_schema(manifest: dict) -> Schema:
    """The routing schema recorded in a fleet manifest."""
    spec = manifest["schema"]
    base = Schema.from_names(spec["dimension_names"], spec["measure_names"])
    return Schema(
        tuple(
            Dimension(d.name, int(card))
            for d, card in zip(base.dimensions, spec["cardinalities"])
        ),
        base.measures,
    )


def router_aggregator(manifest: dict, aggregator: Aggregator | None = None) -> Aggregator:
    """The fleet's aggregator: the caller's instance or the manifest's specs."""
    return aggregator if aggregator is not None else rebuild_aggregator(
        manifest["aggregator"]
    )
