"""The on-disk snapshot format: mmap-able columns under a JSON manifest.

A snapshot is a *directory* holding one frozen
:class:`~repro.core.columnar.ColumnarRangeStore` in its native layout:

* ``manifest.json`` — format name/version, schema (dimension/measure
  names, cardinalities), the aggregator's specs, dtype + shape + sha256
  per column file, and the serving counters (``min_support``,
  ``engine_version``, ``rows_absorbed``);
* one little-endian ``.npy`` file per column — the specific matrix, the
  marked/bound/fixed bitmasks, the packed acceptance bitsets, the COUNT
  column and one file per stock measure component (AVG keeps its
  ``(sum, count)`` pair as two files);
* the per-dimension inverted postings flattened into one CSR triple
  (``postings_codes`` / ``postings_offsets`` / ``postings_ids``) plus
  per-dimension bounds, so a value's range-id list is two binary
  searches and a zero-copy slice.

Writes are atomic at directory granularity: everything lands in a
temporary sibling, every file and the directory are fsynced, and one
``os.replace`` publishes the snapshot — a crash mid-save leaves either
the old snapshot or none, never a torn one.  Loads go through
``np.load(..., mmap_mode="r")``, so opening a multi-gigabyte snapshot
costs a few page faults, not a deserialize; the columns stay on disk
until a query touches them (see :class:`SnapshotStore` and the tier
policy in :mod:`repro.store.engine`).

Aggregators whose scalar algebra is overridden (custom state layouts)
cannot be unpacked into measure columns; their states fall back to a
``states.json`` sidecar and loading requires the original aggregator
instance, exactly like :meth:`repro.serve.store.CubeStore.load`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.approx import CubeSketch, SketchUnsupported
from repro.core.columnar import (
    STAR_CODE,
    ColumnarRangeStore,
    _FastStateColumns,
    explain_collector,
)
from repro.core.range_cube import Range, RangeCube
from repro.core.serialize import _state_from_json, _state_to_json
from repro.table.aggregates import (
    Aggregator,
    AvgFunction,
    MaxFunction,
    MinFunction,
    SumFunction,
)
from repro.table.schema import Schema

#: The manifest's ``format`` field; anything else is refused on load.
SNAPSHOT_FORMAT = "repro-snapshot"

#: Bumped on layout changes.  Loaders refuse *newer* snapshots (forward
#: compatibility is not promised); older versions get explicit upgrade
#: shims here when the layout evolves.
SNAPSHOT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_FUNCTION_BY_NAME = {
    "sum": SumFunction,
    "min": MinFunction,
    "max": MaxFunction,
    "avg": AvgFunction,
}


class SnapshotError(ValueError):
    """A snapshot that cannot be written or loaded (format/layout problems)."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot whose files contradict the manifest's checksums."""


# ----------------------------------------------------------------------
# durability helpers
# ----------------------------------------------------------------------


def fsync_file(path: Path) -> None:
    """Flush one file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """Flush one directory's entries to stable storage (POSIX; best effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


def _little_endian(array: np.ndarray) -> np.ndarray:
    """The array in little-endian byte order (a view on LE platforms)."""
    dtype = array.dtype.newbyteorder("<")
    return np.ascontiguousarray(array, dtype=dtype)


def _postings_csr(store: ColumnarRangeStore) -> dict[str, np.ndarray]:
    """The per-dimension postings flattened into one CSR layout.

    ``codes[dim_bounds[d]:dim_bounds[d+1]]`` are dimension ``d``'s codes
    ascending (``-1``, the ``*`` posting, sorts first); code slot ``i``
    owns ``ids[offsets[i]:offsets[i+1]]``.
    """
    codes: list[int] = []
    id_parts: list[np.ndarray] = []
    offsets = [0]
    dim_bounds = [0]
    for post in store.postings:
        for code, ids in sorted(post.items()):
            codes.append(int(code))
            id_parts.append(np.asarray(ids, dtype=np.int32))
            offsets.append(offsets[-1] + len(ids))
        dim_bounds.append(len(codes))
    ids = (
        np.concatenate(id_parts) if id_parts else np.empty(0, dtype=np.int32)
    )
    return {
        "postings_codes": np.asarray(codes, dtype=np.int64),
        "postings_offsets": np.asarray(offsets, dtype=np.int64),
        "postings_ids": ids.astype(np.int32, copy=False),
        "postings_dim_bounds": np.asarray(dim_bounds, dtype=np.int64),
    }


def _measure_arrays(store: ColumnarRangeStore) -> tuple[list[str], dict[str, np.ndarray]]:
    """Per-measure column files from the store's fast state columns."""
    fast = store._fast_columns
    kinds: list[str] = []
    arrays: dict[str, np.ndarray] = {}
    if fast is None:
        return kinds, arrays
    for j, (kind, column) in enumerate(zip(fast.kinds, fast.columns)):
        kinds.append(kind)
        if kind == "avg":
            sums, counts = column
            arrays[f"measure_{j}_sums"] = np.asarray(sums, dtype=np.float64)
            arrays[f"measure_{j}_counts"] = np.asarray(counts, dtype=np.int64)
        else:
            arrays[f"measure_{j}"] = np.asarray(column, dtype=np.float64)
    return kinds, arrays


def _aggregator_manifest(aggregator: Aggregator) -> dict:
    """The aggregator's portable description (specs by function name)."""
    stock = all(fn.name in _FUNCTION_BY_NAME for fn, _ in aggregator.specs)
    return {
        "class": type(aggregator).__name__,
        "specs": [[fn.name, int(idx)] for fn, idx in aggregator.specs],
        "stock": bool(stock),
    }


def _publish_dir(tmp: Path, path: Path) -> None:
    """Atomically replace ``path`` with the fully-synced ``tmp`` directory."""
    for child in sorted(tmp.iterdir()):
        fsync_file(child)
    fsync_dir(tmp)
    if path.exists():
        doomed = path.with_name(path.name + ".old")
        if doomed.exists():
            shutil.rmtree(doomed)
        os.replace(path, doomed)
        os.replace(tmp, path)
        shutil.rmtree(doomed)
    else:
        os.replace(tmp, path)
    fsync_dir(path.parent)


def write_snapshot(
    source: "RangeCube | ColumnarRangeStore",
    path: str | Path,
    schema: Schema,
    *,
    min_support: int = 1,
    engine_version: int = 0,
    rows_absorbed: int = 0,
    tuning: dict | None = None,
    sketch: "CubeSketch | bool | None" = None,
    sketch_seed: int = 0,
) -> Path:
    """Freeze ``source`` into a snapshot directory at ``path`` (atomic).

    ``source`` is a :class:`RangeCube` (frozen via ``to_columnar``) or an
    already-frozen store.  ``schema`` travels in the manifest so a loaded
    snapshot can serve without the base table.  ``tuning`` (optional) is
    a :meth:`~repro.tune.TuningPlan.to_json` document recording how the
    build was self-tuned — provenance only, since snapshot ranges are
    always stored in original dimension/value coding.  ``sketch`` adds
    the approximate tier's summary (:class:`repro.approx.CubeSketch`) as
    extra ``sketch_*`` columns plus a manifest block: pass a prebuilt
    sketch, or ``True`` to build one here (skipped silently when the
    aggregator has no sampling estimator).  Old loaders ignore both —
    the format version is unchanged.  Returns ``path``.
    """
    store = source if isinstance(source, ColumnarRangeStore) else source.to_columnar()
    if schema.n_dims != store.n_dims:
        raise SnapshotError(
            f"schema has {schema.n_dims} dims, store has {store.n_dims}"
        )
    if sketch is True:
        try:
            # ``sketch_seed`` matters for sharded fleets: each shard must
            # sample with a distinct seed so the router can treat the
            # per-shard estimates as independent when summing variances.
            sketch = CubeSketch.from_store(store, seed=sketch_seed)
        except SketchUnsupported:
            sketch = None
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "specific": store.specific,
        "marked_mask": store.marked_mask,
        "bound_mask": store.bound_mask,
        "fixed_mask": store.fixed_mask,
        "accept_words": store.accept_words,
        "counts": store.counts,
    }
    kinds, measure_arrays = _measure_arrays(store)
    arrays.update(measure_arrays)
    arrays.update(_postings_csr(store))
    if sketch:
        arrays.update(sketch.to_arrays())

    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        array_meta: dict[str, dict] = {}
        for name, array in arrays.items():
            file_name = f"{name}.npy"
            array = _little_endian(array)
            np.save(tmp / file_name, array)
            array_meta[name] = {
                "file": file_name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": _sha256(tmp / file_name),
            }
        if store._fast_columns is not None:
            states = {"format": "columns", "kinds": kinds}
        else:
            # Custom state layouts: keep the exact tuples as JSON.
            text = json.dumps(
                [_state_to_json(s) for s in store.states], separators=(",", ":")
            )
            (tmp / "states.json").write_text(text)
            states = {
                "format": "json",
                "file": "states.json",
                "sha256": _sha256(tmp / "states.json"),
            }
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "n_dims": store.n_dims,
            "n_ranges": len(store),
            "schema": {
                "dimension_names": list(schema.dimension_names),
                "cardinalities": [
                    int(c) if c is not None else None for c in schema.cardinalities
                ],
                "measure_names": list(schema.measure_names),
            },
            "min_support": int(min_support),
            "engine_version": int(engine_version),
            "rows_absorbed": int(rows_absorbed),
            "aggregator": _aggregator_manifest(store.aggregator),
            "states": states,
            "arrays": array_meta,
        }
        if tuning is not None:
            manifest["tuning"] = tuning
        if sketch:
            manifest["sketch"] = sketch.manifest_entry()
        (tmp / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1, sort_keys=True)
        )
        _publish_dir(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


def read_manifest(path: str | Path) -> dict:
    """The validated manifest of the snapshot directory at ``path``."""
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(f"{path} is not a snapshot directory (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{manifest_path} is not a {SNAPSHOT_FORMAT} manifest")
    if int(manifest.get("version", 0)) > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {manifest['version']} is newer than supported "
            f"version {SNAPSHOT_VERSION}"
        )
    return manifest


def manifest_schema(manifest: dict) -> Schema:
    """The serving schema recorded in a snapshot manifest."""
    spec = manifest["schema"]
    schema = Schema.from_names(spec["dimension_names"], spec["measure_names"])
    dims = tuple(
        d.with_cardinality(int(c)) if c is not None else d
        for d, c in zip(schema.dimensions, spec["cardinalities"])
    )
    return Schema(dims, schema.measures)


def _verify_checksums(path: Path, manifest: dict) -> None:
    for name, meta in manifest["arrays"].items():
        actual = _sha256(path / meta["file"])
        if actual != meta["sha256"]:
            raise SnapshotIntegrityError(
                f"checksum mismatch for {meta['file']} in {path}: "
                f"manifest says {meta['sha256'][:12]}…, file is {actual[:12]}…"
            )
    states = manifest["states"]
    if states["format"] == "json" and _sha256(path / states["file"]) != states["sha256"]:
        raise SnapshotIntegrityError(f"checksum mismatch for {states['file']} in {path}")


def _load_array(path: Path, meta: dict, mmap: bool) -> np.ndarray:
    array = np.load(path / meta["file"], mmap_mode="r" if mmap else None)
    if array.dtype.str != meta["dtype"] or list(array.shape) != meta["shape"]:
        raise SnapshotIntegrityError(
            f"{meta['file']} is {array.dtype.str}{array.shape}, manifest says "
            f"{meta['dtype']}{tuple(meta['shape'])}"
        )
    return array


def rebuild_aggregator(spec: dict) -> Aggregator:
    """A stock aggregator from a manifest's ``aggregator`` block.

    Rebuilding from the specs reproduces the original's merge/finalize
    behaviour exactly — the stock subclasses only specialize for speed.
    Custom aggregators (overridden scalar algebra) cannot be rebuilt;
    callers must supply the original instance.
    """
    if not spec.get("stock", False):
        raise SnapshotError(
            f"snapshot was written with a custom aggregator "
            f"({spec.get('class')}); pass the original instance via "
            "load_snapshot(..., aggregator=...)"
        )
    return Aggregator(
        tuple((_FUNCTION_BY_NAME[name](), int(idx)) for name, idx in spec["specs"])
    )


def _rebuild_aggregator(manifest: dict) -> Aggregator:
    return rebuild_aggregator(manifest["aggregator"])


def load_snapshot(
    path: str | Path,
    *,
    aggregator: Aggregator | None = None,
    mmap: bool = True,
    verify: bool = False,
) -> "SnapshotStore":
    """Open the snapshot at ``path`` as a query-ready columnar store.

    With ``mmap=True`` (the default) every column file is memory-mapped
    read-only, so the load is near-instant and the columns page in on
    demand — the store can be much larger than RAM.  ``verify=True``
    checksums every file against the manifest first (a full read; use it
    for audits and after transfers, not on the serving cold-start path).
    """
    path = Path(path)
    manifest = read_manifest(path)
    if verify:
        _verify_checksums(path, manifest)
    arrays = {
        name: _load_array(path, meta, mmap)
        for name, meta in manifest["arrays"].items()
    }
    states_spec = manifest["states"]
    states_json = None
    if states_spec["format"] == "json":
        if aggregator is None:
            _rebuild_aggregator(manifest)  # raises the explanatory error
        raw = json.loads((path / states_spec["file"]).read_text())
        states_json = [_state_from_json(s) for s in raw]
    agg = aggregator if aggregator is not None else _rebuild_aggregator(manifest)
    return SnapshotStore(path, manifest, arrays, agg, states_json=states_json)


def inspect_snapshot(path: str | Path) -> dict:
    """A JSON-able summary of the snapshot at ``path`` (no column reads)."""
    path = Path(path)
    manifest = read_manifest(path)
    files = []
    total = 0
    for name, meta in sorted(manifest["arrays"].items()):
        size = (path / meta["file"]).stat().st_size
        total += size
        files.append(
            {
                "name": name,
                "file": meta["file"],
                "dtype": meta["dtype"],
                "shape": meta["shape"],
                "bytes": size,
            }
        )
    return {
        "path": str(path),
        "format": manifest["format"],
        "format_version": manifest["version"],
        "n_dims": manifest["n_dims"],
        "n_ranges": manifest["n_ranges"],
        "schema": manifest["schema"],
        "aggregator": manifest["aggregator"],
        "states_format": manifest["states"]["format"],
        "min_support": manifest["min_support"],
        "engine_version": manifest["engine_version"],
        "rows_absorbed": manifest["rows_absorbed"],
        "tuning": manifest.get("tuning"),
        "column_bytes": total,
        "files": files,
    }


# ----------------------------------------------------------------------
# the mmap-backed store
# ----------------------------------------------------------------------


class _MappedPostings:
    """One dimension's inverted postings over the CSR arrays (zero-copy).

    Presents the ``dict``-ish surface :class:`ColumnarRangeStore`'s read
    path uses (``get`` / ``items``): a lookup is a binary search over
    the dimension's code slice plus one slice of the id file — no
    per-value arrays are ever materialized.
    """

    __slots__ = ("_codes", "_offsets", "_ids")

    def __init__(self, codes: np.ndarray, offsets: np.ndarray, ids: np.ndarray) -> None:
        self._codes = codes  # ascending; STAR_CODE (-1) first when present
        self._offsets = offsets  # len(codes) + 1 bounds into ids
        self._ids = ids

    def get(self, value, default=None):
        i = int(np.searchsorted(self._codes, value))
        if i >= len(self._codes) or int(self._codes[i]) != value:
            return default
        ids = self._ids[int(self._offsets[i]) : int(self._offsets[i + 1])]
        acc = explain_collector()
        if acc is not None:
            # Bytes this lookup pulls off the mapped postings file — the
            # EXPLAIN "bytes faulted" approximation (page granularity and
            # OS caching aside, this is what the query touches on disk).
            acc.add("snapshot_bytes_faulted", int(ids.nbytes))
        return ids

    def items(self) -> Iterator[tuple[int, np.ndarray]]:
        for i in range(len(self._codes)):
            yield (
                int(self._codes[i]),
                self._ids[int(self._offsets[i]) : int(self._offsets[i + 1])],
            )

    def __len__(self) -> int:
        return len(self._codes)


def _split_postings(arrays: dict[str, np.ndarray], n_dims: int) -> list[_MappedPostings]:
    codes = arrays["postings_codes"]
    offsets = arrays["postings_offsets"]
    ids = arrays["postings_ids"]
    bounds = arrays["postings_dim_bounds"]
    return [
        _MappedPostings(
            codes[int(bounds[d]) : int(bounds[d + 1])],
            offsets[int(bounds[d]) : int(bounds[d + 1]) + 1],
            ids,
        )
        for d in range(n_dims)
    ]


class _LazyStates(Sequence):
    """The states column as a sequence, materializing one tuple at a time."""

    __slots__ = ("_store",)

    def __init__(self, store: "SnapshotStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store.counts)

    def __getitem__(self, rid):
        if isinstance(rid, slice):
            return [self[i] for i in range(*rid.indices(len(self)))]
        return self._store.state_at(int(rid))


class _LazyRanges(Sequence):
    """The cube's ranges rebuilt on demand from the mapped columns."""

    __slots__ = ("_store",)

    def __init__(self, store: "SnapshotStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store.counts)

    def __getitem__(self, rid):
        if isinstance(rid, slice):
            return [self[i] for i in range(*rid.indices(len(self)))]
        store = self._store
        rid = int(rid)
        specific = tuple(
            None if c == STAR_CODE else c for c in store.specific[rid].tolist()
        )
        return Range(specific, int(store.marked_mask[rid]), store.state_at(rid))


class SnapshotStore(ColumnarRangeStore):
    """A :class:`ColumnarRangeStore` whose columns live in a snapshot.

    Construction wires the memory-mapped arrays straight into the parent
    class's attribute layout — every read-path method (postings
    intersection, cuboid maps, dice kernels, state merging) runs
    unchanged over the mapped columns, which is what makes snapshot
    answers bit-identical to the resident store's.  States and
    :class:`Range` objects are reconstructed lazily from the columns;
    nothing row-shaped is materialized at load time.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict,
        arrays: dict[str, np.ndarray],
        aggregator: Aggregator,
        *,
        states_json: list[tuple] | None = None,
    ) -> None:
        # Deliberately no super().__init__: the columns come from disk,
        # not from a resident cube.
        self.path = Path(path)
        self.manifest = manifest
        self.cube = None
        self.aggregator = aggregator
        self.n_dims = int(manifest["n_dims"])
        self.specific = arrays["specific"]
        self.marked_mask = arrays["marked_mask"]
        self.bound_mask = arrays["bound_mask"]
        self.fixed_mask = arrays["fixed_mask"]
        self.accept_words = arrays["accept_words"]
        self.counts = arrays["counts"]
        self._states_json = states_json
        if states_json is None:
            kinds = list(manifest["states"]["kinds"])
            columns: list = []
            for j, kind in enumerate(kinds):
                if kind == "avg":
                    columns.append(
                        (arrays[f"measure_{j}_sums"], arrays[f"measure_{j}_counts"])
                    )
                else:
                    columns.append(arrays[f"measure_{j}"])
            self._fast_columns = _FastStateColumns(kinds, columns)
        else:
            self._fast_columns = None
        self.states = _LazyStates(self)
        self.ranges = _LazyRanges(self)
        self.postings = _split_postings(arrays, self.n_dims)
        # The persisted approx-tier summary, when the writer included
        # one; the serving layer builds a resident sketch lazily if not.
        sketch_meta = manifest.get("sketch")
        self.sketch = (
            CubeSketch.from_arrays(sketch_meta, arrays)
            if sketch_meta is not None
            else None
        )
        self._apex_id = self._resolve_apex()
        self._memo_lock = threading.Lock()
        self._cuboid_ids = {}
        self._cuboid_maps = {}
        self._cuboid_sizes = None
        self._memo_policy = None

    def state_at(self, rid: int) -> tuple:
        """The aggregate state of range ``rid``, rebuilt from the columns."""
        if self._states_json is not None:
            return self._states_json[rid]
        state: list = [int(self.counts[rid])]
        fast = self._fast_columns
        for kind, column in zip(fast.kinds, fast.columns):
            if kind == "avg":
                sums, counts = column
                state.append((float(sums[rid]), int(counts[rid])))
            else:
                state.append(float(column[rid]))
        acc = explain_collector()
        if acc is not None:
            acc.add("snapshot_bytes_faulted", 8 * len(state))
        return tuple(state)

    def nbytes(self) -> int:
        """Mapped bytes of the column files (not resident memory)."""
        total = sum(
            (self.path / meta["file"]).stat().st_size
            for meta in self.manifest["arrays"].values()
        )
        return total

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.path)!r}, {len(self.counts)} ranges x "
            f"{self.n_dims} dims, {self.nbytes() / 1024:.0f} KiB mapped)"
        )
