"""repro.store — out-of-core persistence for computed range cubes.

The snapshot subsystem (see ``docs/persistence.md``): a versioned
on-disk format freezing a :class:`~repro.core.columnar.ColumnarRangeStore`
into mmap-able column files under a checksummed JSON manifest
(:mod:`repro.store.snapshot`), a two-tier read path serving hot masks
from resident structures and cold masks straight off the mapped columns
(:mod:`repro.store.engine`), and per-shard snapshots for the sharded
tier's cold start (:mod:`repro.store.sharded`).
"""

from repro.store.engine import (
    DEFAULT_BUDGET_BYTES,
    SnapshotCube,
    SnapshotEngine,
    TierPolicy,
)
from repro.store.sharded import (
    SnapshotShardEngine,
    is_sharded_snapshot,
    read_router_manifest,
    save_sharded_snapshot,
)
from repro.store.snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotStore,
    inspect_snapshot,
    load_snapshot,
    manifest_schema,
    read_manifest,
    write_snapshot,
)

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "MANIFEST_NAME",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotCube",
    "SnapshotEngine",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotShardEngine",
    "SnapshotStore",
    "TierPolicy",
    "inspect_snapshot",
    "is_sharded_snapshot",
    "load_snapshot",
    "manifest_schema",
    "read_manifest",
    "read_router_manifest",
    "save_sharded_snapshot",
    "write_snapshot",
]
