"""Two-tier serving over a snapshot: hot resident structures, cold mmap.

:class:`SnapshotEngine` serves the full point/rollup/drilldown/slice/dice
surface of :class:`~repro.serve.engine.QueryEngine` — it borrows that
class's request methods verbatim, so responses, caching, metrics and the
error taxonomy are identical — but its cube generation is a
memory-mapped :class:`~repro.store.snapshot.SnapshotStore` instead of a
resident trie emission.  The write path is intentionally absent: a
snapshot is one immutable generation; ingesting means rebuilding and
re-snapshotting (see :class:`~repro.serve.store.CubeStore`'s snapshot
backend for the read-write composition).

The hot/cold split is :class:`TierPolicy`, installed as the store's
memoization policy (:meth:`ColumnarRangeStore.set_memo_policy`):

* *cold* masks answer straight off the mapped columns — per-cell
  postings intersection, no per-mask state materialized, so a query
  touches only the pages it reads;
* a mask accessed ``promote_after`` times is *promoted*: its cuboid map
  (the per-mask point index) is built and kept resident, subject to a
  ``budget_bytes`` cap with least-recently-used eviction.

Promotions, evictions and the resident footprint are exported as
``repro_snapshot_*`` metrics; loads and promotions are traced as
``snapshot.load`` / ``snapshot.promote`` spans.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Sequence

from repro.core.columnar import explain_collector
from repro.obs import OBS_STATE, SlowQueryLog, get_registry, get_tracer
from repro.serve.cache import LRUCache
from repro.serve.engine import CubeVersion, QueryEngine, _make_op_series
from repro.serve.protocol import PROTOCOL_VERSION, ErrorCode, ServeError
from repro.store.snapshot import SnapshotStore, load_snapshot, manifest_schema
from repro.table.aggregates import Aggregator

_TRACER = get_tracer()
_REGISTRY = get_registry()
_LOAD_SECONDS = _REGISTRY.histogram(
    "repro_snapshot_load_seconds", "Seconds to mmap-open a snapshot directory."
)
_HOT_MASKS = _REGISTRY.gauge(
    "repro_snapshot_hot_masks",
    "Cuboid masks currently promoted to the resident tier.",
    ("engine",),
)
_RESIDENT_BYTES = _REGISTRY.gauge(
    "repro_snapshot_resident_bytes",
    "Approximate bytes of promoted per-mask structures held resident.",
    ("engine",),
)
_PROMOTIONS = _REGISTRY.counter(
    "repro_snapshot_promotions_total",
    "Cold-tier structures promoted into the resident tier.",
)
_EVICTIONS = _REGISTRY.counter(
    "repro_snapshot_evictions_total",
    "Resident-tier structures evicted to honour the byte budget.",
)
_COLD_QUERIES = _REGISTRY.counter(
    "repro_snapshot_cold_queries_total",
    "Lookups answered directly off the mapped columns (cold tier).",
)
_HOT_QUERIES = _REGISTRY.counter(
    "repro_snapshot_hot_queries_total",
    "Lookups answered from a promoted resident structure (hot tier).",
)

#: Default resident budget: enough for the busiest cuboid maps of a
#: mid-size cube while staying far below the mapped column footprint.
DEFAULT_BUDGET_BYTES = 64 << 20


class TierPolicy:
    """Access-counting promotion with an LRU-evicted resident budget.

    One policy guards one store.  ``should_map``/``admit`` are the
    :meth:`~repro.core.columnar.ColumnarRangeStore.set_memo_policy`
    contract; everything else is accounting.  Thread-safe: the serving
    layer calls in from concurrent request threads.
    """

    def __init__(
        self,
        *,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        promote_after: int = 2,
        name: str = "snapshot",
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        if promote_after < 1:
            raise ValueError("promote_after must be at least 1")
        self.budget_bytes = budget_bytes
        self.promote_after = promote_after
        self.name = name
        self._store = None
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}  # mask -> accumulated accesses
        self._resident: dict[tuple[str, int], int] = {}  # (kind, mask) -> bytes
        self._last_used: dict[tuple[str, int], int] = {}
        self._clock = 0
        self._resident_bytes = 0
        self.promotions = 0
        self.evictions = 0
        self.hot_hits = 0
        self.cold_hits = 0

    def attach(self, store) -> None:
        """Bind this policy to ``store`` and install it as its memo policy."""
        self._store = store
        store.set_memo_policy(self)

    # -- the store-facing contract --------------------------------------

    def should_map(self, mask: int, group_size: int) -> bool:
        """Whether a ``find_batch`` group may use/build the mask's map."""
        with self._lock:
            self._clock += 1
            count = self._counts.get(mask, 0) + group_size
            self._counts[mask] = count
            key = ("map", mask)
            if key in self._resident:
                self._last_used[key] = self._clock
                hot = True
            else:
                hot = count >= self.promote_after
            # "Hot" is a statement about the path taken (map use/build),
            # not about residency — admit() may still refuse the memo.
            if hot:
                self.hot_hits += group_size
            else:
                self.cold_hits += group_size
        acc = explain_collector()
        if acc is not None:
            acc.add("tier_hot_hits" if hot else "tier_cold_hits", group_size)
        if OBS_STATE.enabled:
            (_HOT_QUERIES if hot else _COLD_QUERIES).inc(group_size)
        return hot

    def admit(self, kind: str, mask: int, nbytes: int) -> bool:
        """Whether a freshly built structure may be memoized (may evict)."""
        evicted: list[tuple[str, int]] = []
        with self._lock:
            key = (kind, mask)
            self._clock += 1
            if key in self._resident:
                self._last_used[key] = self._clock
                return True
            if nbytes > self.budget_bytes:
                return False
            while self._resident_bytes + nbytes > self.budget_bytes and self._resident:
                victim = min(self._resident, key=lambda k: self._last_used.get(k, 0))
                self._resident_bytes -= self._resident.pop(victim)
                self._last_used.pop(victim, None)
                evicted.append(victim)
            self._resident[key] = nbytes
            self._last_used[key] = self._clock
            self._resident_bytes += nbytes
            self.promotions += 1
            self.evictions += len(evicted)
            resident_bytes = self._resident_bytes
            hot_masks = len(self._resident)
        store = self._store
        for victim in evicted:
            if store is not None:
                store.evict_memo(*victim)
        if OBS_STATE.enabled:
            with _TRACER.span(
                "snapshot.promote", kind=kind, mask=mask, nbytes=nbytes
            ) as span:
                span.set_attribute("evicted", len(evicted))
            _PROMOTIONS.inc()
            if evicted:
                _EVICTIONS.inc(len(evicted))
            _HOT_MASKS.set(hot_masks, engine=self.name)
            _RESIDENT_BYTES.set(resident_bytes, engine=self.name)
        return True

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able view of the tier state (for ``/stats`` and tests)."""
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "promote_after": self.promote_after,
                "resident_bytes": self._resident_bytes,
                "hot_masks": len(self._resident),
                "promotions": self.promotions,
                "evictions": self.evictions,
                "hot_hits": self.hot_hits,
                "cold_hits": self.cold_hits,
            }


class SnapshotCube:
    """A snapshot store behind the :class:`RangeCube` read surface.

    Everything :class:`~repro.cube.query.CubeQuery`,
    :class:`~repro.serve.engine.CubeVersion` and the engines touch on a
    cube — ``lookup``/``lookup_batch``, the aggregator, cuboid access,
    ``columnar_if_worthwhile`` — is forwarded to the store, so the whole
    serving read stack runs over a snapshot without a resident cube.
    """

    __slots__ = ("store", "aggregator", "n_dims")

    def __init__(self, store: SnapshotStore) -> None:
        self.store = store
        self.aggregator = store.aggregator
        self.n_dims = store.n_dims

    @property
    def ranges(self):
        return self.store.ranges

    @property
    def n_ranges(self) -> int:
        return len(self.store)

    @property
    def n_cells(self) -> int:
        return sum(1 << int(m).bit_count() for m in self.store.marked_mask.tolist())

    def lookup(self, cell):
        rid = self.store.find_id(tuple(cell))
        return None if rid < 0 else self.store.states[rid]

    def lookup_batch(self, cells):
        states = self.store.states
        ids = self.store.find_batch_ids([tuple(c) for c in cells])
        return [None if rid < 0 else states[rid] for rid in ids]

    def range_of(self, cell):
        return self.store.find(tuple(cell))

    def cuboid(self, mask: int):
        return self.store.cuboid(mask)

    def cuboid_sizes(self):
        return self.store.cuboid_sizes()

    def to_columnar(self) -> SnapshotStore:
        return self.store

    def columnar_if_worthwhile(self) -> SnapshotStore:
        return self.store

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return f"SnapshotCube({self.store!r})"


class SnapshotEngine:
    """Read-only serving over one memory-mapped snapshot generation.

    The request surface (``execute``/``execute_batch``/``point``, the
    result cache, slow-query log, metrics and spans) is borrowed from
    :class:`~repro.serve.engine.QueryEngine` method-for-method; only
    construction and the absent write path differ.  Works everywhere an
    engine does: :class:`~repro.serve.http.CubeServer`, the in-process
    client, the workload driver.
    """

    OPS = QueryEngine.OPS
    MAX_BATCH = QueryEngine.MAX_BATCH

    # The borrowed read path (see ShardRouter for the same pattern).
    _resolve_dim = QueryEngine._resolve_dim
    _normalize_cell = QueryEngine._normalize_cell
    _normalize_predicates = QueryEngine._normalize_predicates
    _pair = staticmethod(QueryEngine._pair)
    _answer = QueryEngine._answer
    _cache_key = QueryEngine._cache_key
    _validate_approx = QueryEngine._validate_approx
    _sketch_for = QueryEngine._sketch_for
    _dice_approx = QueryEngine._dice_approx
    _request_op = staticmethod(QueryEngine._request_op)
    execute = QueryEngine.execute
    _execute = QueryEngine._execute
    execute_batch = QueryEngine.execute_batch
    _execute_batch = QueryEngine._execute_batch
    _execute_explain = QueryEngine._execute_explain
    point = QueryEngine.point
    snapshot = QueryEngine.snapshot
    version = QueryEngine.version

    def __init__(
        self,
        source: "SnapshotStore | str | Path",
        *,
        aggregator: Aggregator | None = None,
        verify: bool = False,
        cache_capacity: int = 1024,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        promote_after: int = 2,
        name: str | None = None,
        slow_query_threshold: float = 0.050,
        slow_log_capacity: int = 128,
        slow_log_sample: int = 1,
    ) -> None:
        start = time.perf_counter()
        # Readiness: /readyz reports "loading" until the columns are
        # mapped and the serving structures exist (see readiness()).
        self._ready = False
        if isinstance(source, SnapshotStore):
            store = source
        else:
            with _TRACER.span("snapshot.load", path=str(source)):
                store = load_snapshot(source, aggregator=aggregator, verify=verify)
        self._store = store
        self._name = name or "snapshot"
        manifest = store.manifest
        schema = manifest_schema(manifest)
        self._min_support = int(manifest.get("min_support", 1))
        self._rows_absorbed = int(manifest.get("rows_absorbed", 0))
        self._measure_names = schema.measure_names
        self._dimension_names = schema.dimension_names
        self._policy = TierPolicy(
            budget_bytes=budget_bytes, promote_after=promote_after, name=self._name
        )
        self._policy.attach(store)
        self._version = CubeVersion(
            int(manifest.get("engine_version", 0)), SnapshotCube(store), schema
        )
        self.cache = LRUCache(cache_capacity)
        self.slow_log = SlowQueryLog(
            slow_query_threshold, slow_log_capacity, slow_log_sample
        )
        self._op_series = _make_op_series(self.OPS)
        self._ready = True
        if OBS_STATE.enabled:
            _LOAD_SECONDS.observe(time.perf_counter() - start)

    # -- snapshot-specific surface ---------------------------------------

    def readiness(self) -> dict:
        """The ``/readyz`` account: loading vs. serving (liveness aside)."""
        ready = bool(getattr(self, "_ready", False))
        out: dict = {
            "ready": ready,
            "state": "serving" if ready else "loading",
            "read_only": True,
        }
        if ready:
            out["snapshot"] = str(self._store.path)
        return out

    def _explain_extras(self, data: dict) -> dict:
        """The snapshot tier's contribution to an EXPLAIN account.

        ``tier_hot/cold_hits`` come from :meth:`TierPolicy.should_map`
        (batched point groups); paths that never consult the policy —
        single points over postings, dice over cuboid selections — are
        classified by whether they had to build (fault mapped columns)
        or could serve from an already-promoted memo.
        """
        hot = int(data.get("tier_hot_hits", 0))
        cold = int(data.get("tier_cold_hits", 0))
        if not hot and not cold:
            built = data.get("cuboid_ids_built", 0) or data.get(
                "postings_intersected", 0
            )
            cold, hot = (1, 0) if built else (0, 1)
        source = "mixed" if hot and cold else ("hot" if hot else "cold")
        return {
            "tier": {"source": source, "hot_hits": hot, "cold_hits": cold},
            "snapshot": str(self._store.path),
        }

    @property
    def store(self) -> SnapshotStore:
        return self._store

    @property
    def policy(self) -> TierPolicy:
        return self._policy

    def tier_stats(self) -> dict:
        """The hot/cold tier state (promotions, evictions, resident bytes)."""
        return self._policy.stats()

    def stats(self) -> dict:
        """A JSON-able snapshot of the engine (the ``/stats`` endpoint)."""
        snap = self._version
        cache = self.cache.stats()
        return {
            "version": snap.version,
            "protocol": PROTOCOL_VERSION,
            "n_dims": snap.schema.n_dims,
            "n_measures": len(self._measure_names),
            "dimension_names": list(self._dimension_names),
            "cardinalities": list(snap.schema.cardinalities),
            "n_ranges": snap.cube.n_ranges,
            "rows_absorbed": self._rows_absorbed,
            "trie_nodes": 0,  # no resident trie: the cube lives on disk
            "min_support": self._min_support,
            "read_only": True,
            "snapshot": {
                "path": str(self._store.path),
                "mapped_bytes": self._store.nbytes(),
                "tier": self._policy.stats(),
            },
            "cache": {
                "capacity": cache.capacity,
                "size": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "hit_rate": cache.hit_rate,
            },
            "slow_log": {
                "threshold_s": self.slow_log.threshold,
                "seen": self.slow_log.seen,
                "kept": len(self.slow_log.entries()),
            },
        }

    # -- the (absent) write path -----------------------------------------

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> int:
        raise ServeError(
            "snapshot engine is read-only: rebuild the cube and write a new "
            "snapshot to ingest data",
            code=ErrorCode.BAD_REQUEST,
        )

    def append_table(self, table) -> int:
        return self.append([[0]], None)  # delegates to the same rejection

    def close(self) -> None:
        """Release nothing — mappings die with the arrays; kept for symmetry."""

    def __enter__(self) -> "SnapshotEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        snap = self._version
        return (
            f"SnapshotEngine(v{snap.version}, {snap.cube.n_ranges} ranges, "
            f"{str(self._store.path)!r})"
        )
