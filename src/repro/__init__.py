"""Range CUBE — reproduction of Feng, Agrawal, El Abbadi & Metwally (ICDE 2004).

Efficient data-cube computation by exploiting data correlation: the base
table is compressed into a **range trie** whose nodes factor out dimension
values shared by all tuples beneath them; traversing and successively
reducing the trie yields a **range cube**, a compressed, lossless,
semantics-preserving partition of all cube cells into ranges.

Quick start::

    from repro import BaseTable, Schema, range_cubing

    schema = Schema.from_names(["store", "city", "product", "date"], ["price"])
    table = BaseTable.from_rows(schema, [
        ("S1", "C1", "P1", "D1", 100.0),
        ("S1", "C1", "P2", "D2", 500.0),
    ])
    cube = range_cubing(table)
    for r in cube:
        print(r.to_string(table.encoder), cube.aggregator.finalize(r.state))

The packages:

* :mod:`repro.core` — the paper's contribution (range trie / range cubing);
* :mod:`repro.table`, :mod:`repro.cube` — relational + cube substrates;
* :mod:`repro.baselines` — BUC, H-Cubing, star-cubing, condensed cube,
  quotient cube, all implemented from their original papers;
* :mod:`repro.data` — synthetic uniform/Zipf/correlated generators and the
  simulated weather dataset;
* :mod:`repro.metrics`, :mod:`repro.harness` — the paper's evaluation
  metrics and per-figure experiment drivers;
* :mod:`repro.exec` — pluggable executors (serial / thread / process)
  behind :func:`parallel_range_cubing`, the partition-parallel pipeline;
* :mod:`repro.baselines.registry` — one dispatch surface over every
  algorithm: ``get_algorithm("buc").run(table, min_support=4)``;
* :mod:`repro.serve` — the serving subsystem: a resident cube behind a
  versioned result cache, a JSON/HTTP front end, incremental refresh and
  a latency-instrumented workload driver;
* :mod:`repro.obs` — the telemetry subsystem: a process-wide metric
  registry, hierarchical tracing spans, a sampled slow-query log, and
  the Prometheus ``/metrics`` exposition behind ``repro obs``.
"""

from repro.baselines.registry import (
    CubeAlgorithm,
    available_algorithms,
    get_algorithm,
)
from repro.core.display import print_trie, trie_to_dot, trie_to_lines
from repro.core.incremental import IncrementalRangeCuber, range_cubing_from_trie
from repro.core.partitioned import (
    build_partitioned,
    merge_tries,
    parallel_range_cubing,
    parallel_range_cubing_detailed,
    tree_merge_tries,
)
from repro.core.range_cube import Range, RangeCube
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.core.range_index import RangeCubeIndex
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import reduce_trie
from repro.cube.cell import STAR, apex_cell, cell_str, make_cell
from repro.cube.full_cube import MaterializedCube, compute_full_cube, full_cube_size
from repro.cube.lattice import CuboidLattice
from repro.cube.query import CubeQuery
from repro.exec.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
)
from repro.metrics.histogram import LatencyHistogram
from repro.serve import (
    CubeServer,
    CubeStore,
    HTTPCubeClient,
    InProcessClient,
    LRUCache,
    QueryEngine,
    WorkloadDriver,
)
from repro.table.aggregates import (
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    MultiAggregator,
    SumCountAggregator,
    default_aggregator,
)
from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Measure, Schema

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "AvgAggregator",
    "BaseTable",
    "CountAggregator",
    "CubeAlgorithm",
    "CubeQuery",
    "CubeServer",
    "CubeStore",
    "CuboidLattice",
    "Executor",
    "HTTPCubeClient",
    "IncrementalRangeCuber",
    "InProcessClient",
    "LRUCache",
    "LatencyHistogram",
    "Dimension",
    "MaterializedCube",
    "MaxAggregator",
    "Measure",
    "MinAggregator",
    "MultiAggregator",
    "ProcessExecutor",
    "QueryEngine",
    "Range",
    "RangeCube",
    "RangeCubeIndex",
    "RangeTrie",
    "RangeTrieNode",
    "STAR",
    "Schema",
    "SerialExecutor",
    "SumCountAggregator",
    "ThreadExecutor",
    "WorkloadDriver",
    "apex_cell",
    "available_algorithms",
    "available_executors",
    "build_partitioned",
    "cell_str",
    "compute_full_cube",
    "default_aggregator",
    "full_cube_size",
    "get_algorithm",
    "get_executor",
    "make_cell",
    "merge_tries",
    "parallel_range_cubing",
    "parallel_range_cubing_detailed",
    "print_trie",
    "range_cubing",
    "range_cubing_detailed",
    "range_cubing_from_trie",
    "reduce_trie",
    "tree_merge_tries",
    "trie_to_dot",
    "trie_to_lines",
]
