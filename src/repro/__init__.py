"""Range CUBE — reproduction of Feng, Agrawal, El Abbadi & Metwally (ICDE 2004).

Efficient data-cube computation by exploiting data correlation: the base
table is compressed into a **range trie** whose nodes factor out dimension
values shared by all tuples beneath them; traversing and successively
reducing the trie yields a **range cube**, a compressed, lossless,
semantics-preserving partition of all cube cells into ranges.

Quick start::

    from repro import BaseTable, Schema, range_cubing

    schema = Schema.from_names(["store", "city", "product", "date"], ["price"])
    table = BaseTable.from_rows(schema, [
        ("S1", "C1", "P1", "D1", 100.0),
        ("S1", "C1", "P2", "D2", 500.0),
    ])
    cube = range_cubing(table)
    for r in cube:
        print(r.to_string(table.encoder), cube.aggregator.finalize(r.state))

The packages:

* :mod:`repro.core` — the paper's contribution (range trie / range cubing);
* :mod:`repro.table`, :mod:`repro.cube` — relational + cube substrates;
* :mod:`repro.baselines` — BUC, H-Cubing, star-cubing, condensed cube,
  quotient cube, all implemented from their original papers;
* :mod:`repro.data` — synthetic uniform/Zipf/correlated generators and the
  simulated weather dataset;
* :mod:`repro.metrics`, :mod:`repro.harness` — the paper's evaluation
  metrics and per-figure experiment drivers.
"""

from repro.core.display import print_trie, trie_to_dot, trie_to_lines
from repro.core.incremental import IncrementalRangeCuber, range_cubing_from_trie
from repro.core.range_cube import Range, RangeCube
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.core.range_index import RangeCubeIndex
from repro.core.range_trie import RangeTrie, RangeTrieNode
from repro.core.reduction import reduce_trie
from repro.cube.cell import STAR, apex_cell, cell_str, make_cell
from repro.cube.full_cube import MaterializedCube, compute_full_cube, full_cube_size
from repro.cube.lattice import CuboidLattice
from repro.cube.query import CubeQuery
from repro.table.aggregates import (
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    MultiAggregator,
    SumCountAggregator,
    default_aggregator,
)
from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Measure, Schema

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "AvgAggregator",
    "BaseTable",
    "CountAggregator",
    "CubeQuery",
    "CuboidLattice",
    "IncrementalRangeCuber",
    "Dimension",
    "MaterializedCube",
    "MaxAggregator",
    "Measure",
    "MinAggregator",
    "MultiAggregator",
    "Range",
    "RangeCube",
    "RangeCubeIndex",
    "RangeTrie",
    "RangeTrieNode",
    "STAR",
    "Schema",
    "SumCountAggregator",
    "apex_cell",
    "cell_str",
    "compute_full_cube",
    "default_aggregator",
    "full_cube_size",
    "make_cell",
    "print_trie",
    "range_cubing",
    "range_cubing_detailed",
    "range_cubing_from_trie",
    "reduce_trie",
    "trie_to_dot",
    "trie_to_lines",
]
