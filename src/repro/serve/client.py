"""Clients for the serving layer: in-process and HTTP, one interface.

The workload driver takes a *client factory* so the same driver measures
both transports: :class:`InProcessClient` calls the engine directly
(isolates engine + cache cost), :class:`HTTPCubeClient` goes through the
JSON front end with a persistent connection per client (adds transport
cost, exercises the threaded server).  Requests are
:class:`~repro.serve.protocol.QueryRequest` (plain dicts still work
through the deprecation shim); both clients raise :class:`ServeError`
carrying the structured :class:`~repro.serve.protocol.ErrorInfo` for
requests the server rejects, so callers handle errors uniformly across
transports.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Sequence
from urllib.parse import urlsplit

from repro.obs import OBS_STATE, get_tracer
from repro.serve.engine import QueryEngine, ServeError
from repro.serve.protocol import ErrorInfo, QueryRequest, error_response

_TRACER = get_tracer()


def _wire(request: "QueryRequest | dict") -> dict:
    """One request in its wire shape (typed requests serialize, dicts pass)."""
    return request.to_json() if isinstance(request, QueryRequest) else request


class ServingClient:
    """The protocol every serving client implements."""

    def query(self, request: "QueryRequest | dict") -> dict:
        """Execute one read request (``op``/``cell``/... as in the engine)."""
        raise NotImplementedError

    def query_batch(self, requests: Sequence["QueryRequest | dict"]) -> list[dict]:
        """Execute many read requests in one round trip, responses in order.

        Mirrors :meth:`QueryEngine.execute_batch`: per-item failures are
        structured ``{"error": {...}}`` entries, not exceptions.  The
        default loops :meth:`query`; both concrete clients override it
        with the real batch path.
        """
        out = []
        for request in requests:
            try:
                out.append(self.query(request))
            except ServeError as exc:
                req = request if isinstance(request, QueryRequest) else None
                op = req.op if req is not None else (
                    request.get("op", "point") if isinstance(request, dict) else "invalid"
                )
                out.append(error_response(-1, op, exc.info))
        return out

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> dict:
        """Append a fact batch; returns ``{"version": N, "rows": n}``."""
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # convenience ------------------------------------------------------

    def point(self, cell: Sequence[int | None]) -> dict | None:
        """Finalized aggregates of one cell (None when empty)."""
        return self.query(QueryRequest(op="point", cell=list(cell)))["value"]

    def dice_approx(
        self,
        predicates: dict,
        cell: Sequence[int | None] | None = None,
        *,
        confidence: float = 0.95,
        having: float | None = None,
    ) -> dict:
        """A sketch-backed dice: the response's ``approx`` block.

        Returns ``{"estimate", "lower", "upper", "confidence", ...}``
        (see :mod:`repro.approx`); when the engine fell back to the
        exact path the block is ``{"fallback": True, ...}`` and
        ``estimate`` is absent.  ``cell`` defaults to the apex (every
        dimension free); ``having`` keeps only sampled base cells whose
        count meets the threshold before estimating.
        """
        response = self.query(
            QueryRequest(
                op="dice",
                cell=None if cell is None else list(cell),
                predicates=predicates,
                approx=True,
                confidence=confidence,
                having=having,
            )
        )
        return response["approx"]


class InProcessClient(ServingClient):
    """Direct calls into a resident :class:`QueryEngine` (no transport).

    Also fronts a :class:`~repro.serve.sharded.ShardRouter`, which
    exposes the same ``execute``/``execute_batch``/``append``/``stats``
    surface.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def query(self, request: "QueryRequest | dict") -> dict:
        return self.engine.execute(request)

    def query_batch(self, requests: Sequence["QueryRequest | dict"]) -> list[dict]:
        return self.engine.execute_batch(list(requests))

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> dict:
        version = self.engine.append(rows, measures)
        return {"version": version, "rows": len(rows)}

    def stats(self) -> dict:
        return self.engine.stats()

    def __repr__(self) -> str:
        return f"InProcessClient({self.engine!r})"


class HTTPCubeClient(ServingClient):
    """JSON over a persistent HTTP connection to a :class:`CubeServer`.

    Not thread-safe (one connection): give each workload client its own
    instance — which is what the driver's factory does anyway.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"expected an http://host:port URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._conn = http.client.HTTPConnection(
            parts.hostname, parts.port or 80, timeout=timeout
        )

    def _connect(self) -> None:
        if self._conn.sock is None:
            self._conn.connect()
            # Mirror the server: without TCP_NODELAY every small request
            # pays the Nagle / delayed-ACK round trip (~40ms).
            self._conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        statuses: tuple = (200,),
    ) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {} if body is None else {"Content-Type": "application/json"}
        if OBS_STATE.enabled:
            # Propagate the caller's open span (if any) as a W3C
            # traceparent header, so the server's request tree grafts
            # under it and GET /trace shows one cross-process trace.
            context = _TRACER.current_context()
            if context is not None:
                headers["traceparent"] = context.to_traceparent()
        try:
            self._connect()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have closed an idle keep-alive.
            self._conn.close()
            self._connect()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError:
            raise ServeError(
                f"non-JSON response ({response.status}) from {path}: {raw[:200]!r}"
            ) from None
        if response.status not in statuses:
            error = decoded.get("error")
            if error is None:
                raise ServeError(f"HTTP {response.status} from {path}")
            # Both the structured ErrorInfo dict and the legacy bare
            # string re-raise as the one typed taxonomy.
            raise ServeError.from_info(ErrorInfo.from_json(error))
        return decoded

    def query(self, request: "QueryRequest | dict") -> dict:
        return self._request("POST", "/query", _wire(request))

    def query_batch(self, requests: Sequence["QueryRequest | dict"]) -> list[dict]:
        response = self._request(
            "POST", "/query/batch", {"requests": [_wire(r) for r in requests]}
        )
        return response["results"]

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> dict:
        payload: dict = {"rows": [list(r) for r in rows]}
        if measures is not None:
            payload["measures"] = [list(m) for m in measures]
        return self._request("POST", "/append", payload)

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """The readiness body — returned, not raised, even when not ready."""
        return self._request("GET", "/readyz", statuses=(200, 503))

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"HTTPCubeClient({self.base_url!r})"
