"""A thread-safe, size-bounded LRU cache for query results.

The serving layer answers a Zipf-skewed stream of OLAP queries, so a
small cache of finalized results absorbs most of the read traffic (the
hot head of the distribution) while the tail still reaches the index.
The cache is deliberately dumb: keys are opaque hashables (the engine
builds them from the cube *version* plus the canonical query), values
are never mutated after insertion, and the whole structure is guarded by
one lock — every operation is a dict hit, so the lock is held for
nanoseconds and N reader threads serialize harmlessly.

Hits, misses and evictions are counted so the workload driver can report
an observed hit rate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheStats:
    """An immutable snapshot of the cache counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int
    invalidations: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before any traffic."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``capacity`` entries.

    ``capacity=0`` disables caching entirely (every ``get`` is a miss and
    ``put`` is a no-op) — the benchmarks use that to measure the uncached
    path through identical code.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it most recent), else ``default``.

        The hit path is deliberately lock-free: each step (dict read,
        ``move_to_end``, counter bump) is a single atomic C call, and the
        only cross-thread race — the key being evicted between the read
        and the recency bump — is caught and ignored.  Counter updates
        can be lost under heavy contention; they feed reports, not
        decisions.  Mutating operations (:meth:`put`,
        :meth:`invalidate_all`) still serialize on the lock to keep the
        capacity invariant exact.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        try:
            self._entries.move_to_end(key)
        except KeyError:  # evicted/invalidated concurrently; the value stands
            pass
        self._hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` as most recent, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_all(self) -> int:
        """Drop every entry (after a cube refresh); returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += 1
            return dropped

    def keys(self) -> list[Hashable]:
        """Current keys, least-recently-used first (a snapshot, for tests)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache({s.size}/{s.capacity}, {s.hits} hits, "
            f"{s.misses} misses, {s.evictions} evictions)"
        )
