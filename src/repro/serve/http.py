"""A stdlib JSON/HTTP front end over one :class:`QueryEngine`.

Endpoints (bodies are JSON unless noted):

* ``GET /healthz``   — liveness: ``{"status": "ok", "version": N}``
* ``GET /readyz``    — readiness: 200 when the engine can serve, 503
  with the state (``loading``, ``refresh-prepare``, ``degraded`` …)
  when it cannot; liveness and readiness are deliberately different
  questions, so load balancers can drain without killing
* ``GET /stats``     — the engine's stats snapshot (cache counters etc.)
* ``GET /metrics``   — the registry as Prometheus text (exposition
  format 0.0.4).  On a sharded engine this is the *federated* fleet
  view — every worker's series folded in under a ``shard`` label —
  unless ``?scope=local`` asks for just this process's registry
* ``GET /trace``     — recent spans as JSON (``?limit=N`` keeps the
  newest N; ``?format=chrome`` returns Chrome trace-event JSON)
* ``GET /slowlog``   — the engine's sampled slow-query entries
* ``POST /query``    — one read request, e.g. ``{"op": "point", "cell": [0, null]}``.
  The approximate tier rides this endpoint unchanged: a dice with
  ``"approx": true`` (plus optional ``confidence`` / ``having``)
  returns the estimate in ``value`` and the confidence-interval block
  in ``approx`` — no new route, old clients never see the new fields
* ``POST /query/batch`` — ``{"requests": [...]}``: many read requests
  answered in order against one cube snapshot; per-item errors come
  back as structured ``{"error": {...}}`` entries, empty cells as
  explicit nulls
* ``POST /append``   — ``{"rows": [[...], ...], "measures": [[...], ...]}``

Trace propagation: a W3C ``traceparent`` request header on the query
endpoints seeds the request's :class:`~repro.obs.TraceContext` when the
body does not already carry one, so a client span, the server's
``serve.request`` span and (behind a router) every shard's
``shard.scatter`` span share one trace id.

Requests and responses are the wire shapes defined in
:mod:`repro.serve.protocol`; every failure — including the 404 for an
unknown path — carries one structured
:class:`~repro.serve.protocol.ErrorInfo` body
(``{"error": {"code", "message", "retryable", ...}}``) and the status
comes uniformly from :data:`~repro.serve.protocol.HTTP_STATUS`.  See
``docs/observability.md`` for the metric catalog and how to open a
trace in Perfetto, and ``docs/serving.md`` for the protocol schema.

The server is a :class:`http.server.ThreadingHTTPServer`: each request
runs on its own thread, which is exactly the concurrency the engine is
built for (lock-free snapshot reads, one serialized writer).
:class:`CubeServer` wraps the lifecycle — ``start()`` serves on a
background thread (tests, the workload driver's ``--serve`` mode),
``serve_forever()`` blocks (the ``repro serve`` CLI).  ``engine`` may
be a :class:`QueryEngine` or anything exposing its read/write surface —
the sharded :class:`~repro.serve.sharded.ShardRouter` drops in
unchanged.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.obs import PROMETHEUS_CONTENT_TYPE, TraceContext, get_registry, get_tracer
from repro.serve.engine import QueryEngine, ServeError
from repro.serve.protocol import BatchResponse, ErrorCode, ErrorInfo, QueryRequest

#: Refuse request bodies beyond this size (a serving layer should not
#: buffer arbitrarily large appends in one request).
MAX_BODY_BYTES = 16 * 1024 * 1024

_TRACER = get_tracer()
_HTTP_REQUESTS = get_registry().counter(
    "repro_http_requests_total",
    "HTTP requests handled, by method, endpoint and status.",
    ("method", "path", "status"),
)

#: Paths counted under their own label; everything else folds into
#: "other" so bad clients cannot explode the label cardinality.
_KNOWN_PATHS = frozenset(
    {
        "/healthz",
        "/readyz",
        "/stats",
        "/metrics",
        "/trace",
        "/slowlog",
        "/query",
        "/query/batch",
        "/append",
    }
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the engine attached to the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Small JSON requests over keep-alive connections hit the Nagle /
    # delayed-ACK interaction (~40ms per round trip) unless disabled.
    disable_nagle_algorithm = True

    @property
    def engine(self) -> QueryEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover - manual runs
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        self._respond_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _respond_bytes(self, status: int, body: bytes, content_type: str) -> None:
        path = self.path.partition("?")[0]
        _HTTP_REQUESTS.inc(
            method=self.command,
            path=path if path in _KNOWN_PATHS else "other",
            status=status,
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, info: ErrorInfo) -> None:
        self._respond(info.http_status, {"error": info.to_json()})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                code=ErrorCode.TOO_LARGE,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, raw_query = self.path.partition("?")
        if path == "/healthz":
            self._respond(200, {"status": "ok", "version": self.engine.version})
        elif path == "/readyz":
            readiness = getattr(self.engine, "readiness", None)
            state = (
                readiness()
                if readiness is not None
                else {"ready": True, "state": "serving", "version": self.engine.version}
            )
            self._respond(200 if state.get("ready") else 503, state)
        elif path == "/stats":
            self._respond(200, self.engine.stats())
        elif path == "/metrics":
            query = parse_qs(raw_query)
            federated = getattr(self.engine, "federated_metrics", None)
            if federated is not None and query.get("scope", [""])[0] != "local":
                registry = federated()
            else:
                registry = get_registry()
            text = registry.render_prometheus()
            self._respond_bytes(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        elif path == "/trace":
            query = parse_qs(raw_query)
            try:
                limit = int(query["limit"][0]) if "limit" in query else None
            except ValueError:
                self._respond_error(
                    ErrorInfo(
                        code=ErrorCode.BAD_REQUEST,
                        message="limit must be an integer",
                    )
                )
                return
            if query.get("format", [""])[0] == "chrome":
                self._respond(200, _TRACER.buffer.export_chrome(limit))
            else:
                self._respond(200, {"spans": _TRACER.buffer.export_json(limit)})
        elif path == "/slowlog":
            self._respond(200, {"slow_queries": self.engine.slow_log.entries()})
        else:
            self._respond_error(
                ErrorInfo(
                    code=ErrorCode.NOT_FOUND,
                    message=f"no such endpoint: GET {path}",
                )
            )

    def _header_context(self) -> TraceContext | None:
        """The request's ``traceparent`` header, parsed (None when absent)."""
        return TraceContext.from_traceparent(self.headers.get("traceparent"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/query":
                request = QueryRequest.from_json(self._read_json())
                # The body's trace_context wins; the header only seeds
                # requests that did not already carry one.
                if request.trace_context is None:
                    request.trace_context = self._header_context()
                self._respond(200, self.engine.execute(request))
            elif self.path == "/query/batch":
                payload = self._read_json()
                requests = payload.get("requests")
                if not isinstance(requests, list):
                    raise ServeError("batch body needs a 'requests' list")
                header_ctx = self._header_context()
                items: list = []
                for r in requests:
                    try:
                        req = QueryRequest.from_json(r)
                        if req.trace_context is None:
                            req.trace_context = header_ctx
                        items.append(req)
                    except ServeError as exc:
                        items.append(exc)  # becomes a per-item error entry
                results = self.engine.execute_batch(items)
                self._respond(200, BatchResponse(results).to_json())
            elif self.path == "/append":
                payload = self._read_json()
                rows = payload.get("rows")
                if not isinstance(rows, list):
                    raise ServeError("append needs a 'rows' list")
                version = self.engine.append(rows, payload.get("measures"))
                self._respond(200, {"version": version, "rows": len(rows)})
            else:
                raise ServeError(
                    f"no such endpoint: POST {self.path}",
                    code=ErrorCode.NOT_FOUND,
                )
        except ServeError as exc:
            self._respond_error(exc.info)
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self._respond_error(
                ErrorInfo(
                    code=ErrorCode.INTERNAL,
                    message=f"{type(exc).__name__}: {exc}",
                )
            )


class CubeServer:
    """Lifecycle wrapper: an engine bound to a listening HTTP socket.

    >>> server = CubeServer(engine, port=0)          # doctest: +SKIP
    >>> url = server.start()                         # doctest: +SKIP
    >>> ...                                          # doctest: +SKIP
    >>> server.stop()                                # doctest: +SKIP

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    Also usable as a context manager.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.engine = engine  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Serve on a daemon thread; returns the base URL."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self.url

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut down the listener and release the socket (idempotent).

        ``shutdown`` only applies to a background ``start()`` — it blocks
        until the ``serve_forever`` loop acknowledges, which never happens
        if that loop never ran.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "CubeServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"CubeServer({self.url}, engine={self.engine!r})"
