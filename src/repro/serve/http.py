"""A stdlib JSON/HTTP front end over one :class:`QueryEngine`.

Endpoints (all bodies are JSON):

* ``GET /healthz``   — liveness: ``{"status": "ok", "version": N}``
* ``GET /stats``     — the engine's stats snapshot (cache counters etc.)
* ``POST /query``    — one read request, e.g. ``{"op": "point", "cell": [0, null]}``
* ``POST /append``   — ``{"rows": [[...], ...], "measures": [[...], ...]}``

The server is a :class:`http.server.ThreadingHTTPServer`: each request
runs on its own thread, which is exactly the concurrency the engine is
built for (lock-free snapshot reads, one serialized writer).  Malformed
requests come back as ``400 {"error": ...}``; unexpected failures as
``500``.  :class:`CubeServer` wraps the lifecycle — ``start()`` serves
on a background thread (tests, the workload driver's ``--serve`` mode),
``serve_forever()`` blocks (the ``repro serve`` CLI).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.engine import QueryEngine, ServeError

#: Refuse request bodies beyond this size (a serving layer should not
#: buffer arbitrarily large appends in one request).
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the engine attached to the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Small JSON requests over keep-alive connections hit the Nagle /
    # delayed-ACK interaction (~40ms per round trip) unless disabled.
    disable_nagle_algorithm = True

    @property
    def engine(self) -> QueryEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover - manual runs
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._respond(200, {"status": "ok", "version": self.engine.version})
        elif self.path == "/stats":
            self._respond(200, self.engine.stats())
        else:
            self._respond(404, {"error": f"no such endpoint: GET {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/query":
                self._respond(200, self.engine.execute(self._read_json()))
            elif self.path == "/append":
                payload = self._read_json()
                rows = payload.get("rows")
                if not isinstance(rows, list):
                    raise ServeError("append needs a 'rows' list")
                version = self.engine.append(rows, payload.get("measures"))
                self._respond(200, {"version": version, "rows": len(rows)})
            else:
                self._respond(404, {"error": f"no such endpoint: POST {self.path}"})
        except ServeError as exc:
            self._respond(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self._respond(500, {"error": f"{type(exc).__name__}: {exc}"})


class CubeServer:
    """Lifecycle wrapper: an engine bound to a listening HTTP socket.

    >>> server = CubeServer(engine, port=0)          # doctest: +SKIP
    >>> url = server.start()                         # doctest: +SKIP
    >>> ...                                          # doctest: +SKIP
    >>> server.stop()                                # doctest: +SKIP

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    Also usable as a context manager.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.engine = engine  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Serve on a daemon thread; returns the base URL."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self.url

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut down the listener and release the socket (idempotent).

        ``shutdown`` only applies to a background ``start()`` — it blocks
        until the ``serve_forever`` loop acknowledges, which never happens
        if that loop never ran.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "CubeServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"CubeServer({self.url}, engine={self.engine!r})"
