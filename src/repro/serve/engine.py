"""The serving query engine: a resident cube behind a versioned cache.

One :class:`QueryEngine` owns three pieces of state:

* an :class:`~repro.core.incremental.IncrementalRangeCuber` — the write
  path.  Fact batches are appended into its resident trie; only the
  single writer (serialized by a lock) ever touches it.
* a :class:`CubeVersion` — the read path: an immutable bundle of the
  emitted :class:`~repro.core.range_cube.RangeCube`, its point-query
  index and a :class:`~repro.cube.query.CubeQuery`, stamped with a
  monotonically increasing version number.  Readers snapshot the current
  bundle once per request and never look back, so a concurrent refresh
  cannot tear a response: every answer comes entirely from the pre- or
  the post-refresh cube.
* an :class:`~repro.serve.cache.LRUCache` of finalized results.  Keys
  embed the version number, so entries cached against an old cube can
  never be returned for a new one even before the post-swap
  ``invalidate_all`` (which exists to free the memory, not for
  correctness).

The request/response surface is :meth:`QueryEngine.execute`, shared
verbatim by the HTTP front end, the in-process client and the shard
router — requests are :class:`~repro.serve.protocol.QueryRequest`
(plain dicts still work through a deprecation shim), responses are the
wire dicts those types serialize to, and every cell travels as a list
with ``null`` for ``*``.  Dimension codes are the integers of the
encoded base table, exactly as in ``repro query --bind``.  Failures are
:class:`~repro.serve.protocol.ServeError` carrying the one
:class:`~repro.serve.protocol.ErrorInfo` taxonomy.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.approx import CubeSketch, SketchUnsupported, finalize_partials
from repro.core.columnar import collect_explain, explain_collector
from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_cube import RangeCube
from repro.cube.cell import Cell
from repro.cube.query import CubeQuery
from repro.obs import OBS_STATE, SlowQueryLog, get_registry, get_tracer
from repro.serve.cache import LRUCache
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    QueryRequest,
    ServeError,
    coerce_request,
    error_response,
)
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema
from repro.tune import TuningPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.store import CubeStore

_TRACER = get_tracer()
_REGISTRY = get_registry()
_REQUESTS = _REGISTRY.counter(
    "repro_requests_total", "Read requests answered, by operation.", ("op",)
)
_REQUEST_ERRORS = _REGISTRY.counter(
    "repro_request_errors_total", "Read requests rejected as malformed, by operation.",
    ("op",),
)
_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_request_seconds", "Read-request latency in seconds, by operation.", ("op",)
)
_CACHE_HITS = _REGISTRY.counter(
    "repro_cache_hits_total", "Requests answered from the result cache."
)
_CACHE_MISSES = _REGISTRY.counter(
    "repro_cache_misses_total", "Requests that had to reach the cube index."
)
_APPENDS = _REGISTRY.counter(
    "repro_appends_total", "Fact batches appended through the serving write path."
)
_APPEND_ROWS = _REGISTRY.counter(
    "repro_append_rows_total", "Fact rows appended through the serving write path."
)
_APPEND_SECONDS = _REGISTRY.histogram(
    "repro_append_seconds", "Append (absorb + refresh + swap) seconds per batch."
)
_REFRESHES = _REGISTRY.counter(
    "repro_cube_refreshes_total", "Cube version swaps (one per successful append)."
)
_SLOW_QUERIES = _REGISTRY.counter(
    "repro_slow_queries_total", "Requests slower than the slow-query threshold."
)
_BATCHES = _REGISTRY.counter(
    "repro_query_batches_total", "Batch read requests answered (POST /query/batch)."
)
_BATCH_ITEMS = _REGISTRY.counter(
    "repro_query_batch_items_total", "Individual requests answered inside batches."
)
_BATCH_SIZE = _REGISTRY.histogram(
    "repro_request_batch_size", "Requests per batch read call."
)
_BATCH_SECONDS = _REGISTRY.histogram(
    "repro_batch_seconds", "Batch read-request latency in seconds (whole batch)."
)
_CACHE_ENTRIES = _REGISTRY.gauge(
    "repro_cache_entries", "Result-cache entries currently held.", ("engine",)
)
_CACHE_CAPACITY = _REGISTRY.gauge(
    "repro_cache_capacity", "Result-cache capacity.", ("engine",)
)
_CACHE_EVICTIONS = _REGISTRY.gauge(
    "repro_cache_evictions", "Result-cache LRU evictions so far.", ("engine",)
)
_CACHE_INVALIDATIONS = _REGISTRY.gauge(
    "repro_cache_invalidations", "Result-cache full invalidations (cube refreshes).",
    ("engine",),
)
_CUBE_VERSION = _REGISTRY.gauge(
    "repro_cube_version", "Version number of the served cube.", ("engine",)
)
_ROWS_RESIDENT = _REGISTRY.gauge(
    "repro_rows_resident", "Fact rows absorbed into the resident trie.", ("engine",)
)
_APPROX_REQUESTS = _REGISTRY.counter(
    "repro_approx_requests_total",
    "Dice requests answered by the sketch-backed approximate tier.",
)
_APPROX_FALLBACKS = _REGISTRY.counter(
    "repro_approx_fallbacks_total",
    "approx=true requests that fell back to the exact path.",
    ("reason",),
)
_APPROX_BOUND_WIDTH = _REGISTRY.histogram(
    "repro_approx_bound_width",
    "Relative COUNT bound width, (upper - lower) / estimate, per approx answer.",
)

#: Confidence level used when an approx request does not name one.
DEFAULT_CONFIDENCE = 0.95


def _make_op_series(ops: Sequence[str]) -> dict:
    """Pre-bound (requests, seconds, errors) metric handles per op.

    Label resolution costs a dict + tuple per call; engines bind the
    per-op series once at construction instead.  Shared with the
    read-only :class:`repro.store.SnapshotEngine`, which reuses this
    module's request metrics so dashboards see one serving surface.
    """
    return {
        op: (
            _REQUESTS.labels(op=op),
            _REQUEST_SECONDS.labels(op=op),
            _REQUEST_ERRORS.labels(op=op),
        )
        for op in (*ops, "invalid")
    }


def _register_engine_collector(engine: "QueryEngine") -> None:
    """Bridge one engine's internal counters onto gauges at scrape time.

    The collector holds only a weakref; once the engine is gone it raises
    ``LookupError``, which the registry treats as "drop this collector".
    """
    ref = weakref.ref(engine)
    label = engine._name or "default"

    def collect() -> None:
        live = ref()
        if live is None:
            raise LookupError("engine collected")
        cache = live.cache.stats()
        _CACHE_ENTRIES.set(cache.size, engine=label)
        _CACHE_CAPACITY.set(cache.capacity, engine=label)
        _CACHE_EVICTIONS.set(cache.evictions, engine=label)
        _CACHE_INVALIDATIONS.set(cache.invalidations, engine=label)
        _CUBE_VERSION.set(live.version, engine=label)
        _ROWS_RESIDENT.set(live._cuber.n_rows_absorbed, engine=label)

    _REGISTRY.register_collector(collect)


def validate_rows(rows, measures, n_dims: int, n_measures: int):
    """Validate one append batch against an arity; raises :class:`ServeError`.

    Shared by the single engine and the shard router (which must reject
    exactly what the engine rejects, *before* the batch is routed).
    Returns ``(rows, measures)`` as clean int/float tuples.
    """
    if not rows:
        raise ServeError("append needs at least one row")
    if measures is None:
        measures = [[0.0] * n_measures] * len(rows) if n_measures else [()] * len(rows)
    if len(measures) != len(rows):
        raise ServeError(f"{len(rows)} rows but {len(measures)} measure rows")
    clean_rows = []
    clean_measures = []
    for row, meas in zip(rows, measures):
        if len(row) != n_dims:
            raise ServeError(
                f"row {list(row)!r} has {len(row)} dims, cube has {n_dims}"
            )
        if any(not isinstance(v, int) or isinstance(v, bool) or v < 0 for v in row):
            raise ServeError(f"row {list(row)!r} must contain non-negative codes")
        if len(meas) != n_measures:
            raise ServeError(
                f"measure row {list(meas)!r} has {len(meas)} values, "
                f"expected {n_measures}"
            )
        clean_rows.append(tuple(int(v) for v in row))
        clean_measures.append(tuple(float(v) for v in meas))
    return clean_rows, clean_measures


class CubeVersion:
    """One immutable generation of the served cube.

    Readers hold a reference for the duration of a request; the engine
    swaps in a fresh instance on refresh and never mutates an old one.
    """

    __slots__ = ("version", "cube", "schema", "query")

    def __init__(self, version: int, cube: RangeCube, schema: Schema) -> None:
        self.version = version
        self.cube = cube
        self.schema = schema
        self.query = CubeQuery(cube, schema, table=None)


class QueryEngine:
    """Point/roll-up/drill-down/slice/dice queries over a refreshable cube."""

    #: Ops accepted by :meth:`execute` (the protocol's op set).
    OPS = ("point", "rollup", "drilldown", "slice", "dice")

    def __init__(
        self,
        cuber: IncrementalRangeCuber,
        schema: Schema,
        *,
        min_support: int = 1,
        cache_capacity: int = 1024,
        store: "CubeStore | None" = None,
        name: str | None = None,
        initial_version: int = 0,
        initial_cube=None,
        slow_query_threshold: float = 0.050,
        slow_log_capacity: int = 128,
        slow_log_sample: int = 1,
    ) -> None:
        if schema.n_dims != cuber.trie.n_dims:
            raise ValueError(
                f"schema has {schema.n_dims} dims, cuber has {cuber.trie.n_dims}"
            )
        if store is not None and name is None:
            raise ValueError("a write-through store needs a cube name")
        self._cuber = cuber
        self._min_support = min_support
        self._store = store
        self._name = name
        self._write_lock = threading.Lock()
        self._max_codes = [
            (c or 0) - 1 if c is not None else -1 for c in schema.cardinalities
        ]
        self._measure_names = schema.measure_names
        self._dimension_names = schema.dimension_names
        # A plain attribute assignment swaps versions atomically.  An
        # ``initial_cube`` (e.g. a mmap-loaded snapshot, see
        # :mod:`repro.store`) skips the trie's cube emission entirely —
        # the snapshot cold-start path; the first append replaces it
        # with a freshly emitted resident cube as usual.
        self._version = CubeVersion(
            initial_version,
            initial_cube if initial_cube is not None else cuber.cube(min_support),
            self._current_schema(),
        )
        self.cache = LRUCache(cache_capacity)
        #: Requests slower than ``slow_query_threshold`` seconds are
        #: counted and (every ``slow_log_sample``-th one) retained here.
        self.slow_log = SlowQueryLog(
            slow_query_threshold, slow_log_capacity, slow_log_sample
        )
        # Label resolution costs a dict + tuple per call; the read path
        # instead uses these pre-bound per-op series handles.
        self._op_series = _make_op_series(self.OPS)
        _register_engine_collector(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: BaseTable,
        *,
        aggregator: Aggregator | None = None,
        min_support: int = 1,
        cache_capacity: int = 1024,
        dim_order="auto",
    ) -> "QueryEngine":
        """Build the resident trie from ``table`` and serve its cube.

        ``dim_order`` tunes the resident trie only — answers are always
        expressed in the table's own dimension order and value coding.
        The default ``"auto"`` runs the sampling planner
        (:mod:`repro.tune`); pass ``None`` to pin the as-is order, an
        explicit sequence for a static order, or a prepared
        :class:`~repro.tune.TuningPlan`.  Appends re-plan automatically
        when observed cardinalities drift past the planned estimates.
        """
        from repro.tune import resolve_plan

        agg = aggregator or default_aggregator(table.n_measures)
        plan, order = resolve_plan(table, dim_order)
        if plan is None and order is not None:
            plan = TuningPlan(order, source="fixed")
        cuber = IncrementalRangeCuber(table.n_dims, agg, plan=plan)
        cuber.insert_table(table)
        return cls(
            cuber,
            table.schema,
            min_support=min_support,
            cache_capacity=cache_capacity,
        )

    def _current_schema(self) -> Schema:
        """The latest schema, cardinalities grown to cover appended codes."""
        base = Schema.from_names(self._dimension_names, self._measure_names)
        dims = tuple(
            d.with_cardinality(max(self._max_codes[i] + 1, 0))
            for i, d in enumerate(base.dimensions)
        )
        return Schema(dims, base.measures)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version.version

    def snapshot(self) -> CubeVersion:
        """The current cube generation (stable for the caller's lifetime)."""
        return self._version

    def _resolve_dim(self, snap: CubeVersion, dim) -> int:
        if isinstance(dim, bool) or not isinstance(dim, (int, str)):
            raise ServeError(f"dim must be an index or a name, got {dim!r}")
        if isinstance(dim, str):
            try:
                return snap.schema.dimension_index(dim)
            except KeyError:
                raise ServeError(f"no dimension named {dim!r}") from None
        if not 0 <= dim < snap.schema.n_dims:
            raise ServeError(f"dimension index {dim} out of range")
        return dim

    def _normalize_cell(
        self, snap: CubeVersion, request: QueryRequest, *, default_apex: bool = False
    ) -> Cell:
        """The query cell from a request's ``cell`` list or ``bindings`` map."""
        n = snap.schema.n_dims
        if request.cell is not None:
            raw = request.cell
            if not isinstance(raw, (list, tuple)) or len(raw) != n:
                raise ServeError(f"cell must be a list of {n} entries")
            cell = []
            for v in raw:
                if v is None:
                    cell.append(None)
                elif isinstance(v, int) and not isinstance(v, bool) and v >= 0:
                    cell.append(v)
                else:
                    raise ServeError(f"cell entries are codes or null, got {v!r}")
            return tuple(cell)
        if request.bindings is not None:
            bindings = request.bindings
            if not isinstance(bindings, Mapping):
                raise ServeError("bindings must be a {dimension: code} mapping")
            cell: list = [None] * n
            for key, value in bindings.items():
                if isinstance(key, str) and key.isdigit():
                    key = int(key)  # JSON object keys arrive as strings
                dim = self._resolve_dim(snap, key)
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    raise ServeError(f"binding for {key!r} must be a code, got {value!r}")
                cell[dim] = value
            return tuple(cell)
        if default_apex:  # a dice may range over the whole cube
            return tuple([None] * n)
        raise ServeError("request needs a 'cell' list or a 'bindings' mapping")

    def _normalize_predicates(
        self, snap: CubeVersion, request: QueryRequest, base_cell: Cell
    ) -> dict[int, list[int]]:
        """Validated ``{dim index: admitted codes}`` for a dice request."""
        predicates = request.predicates
        if not isinstance(predicates, Mapping) or not predicates:
            raise ServeError("dice needs a non-empty 'predicates' mapping")
        out: dict[int, list[int]] = {}
        for key, values in predicates.items():
            if isinstance(key, str) and key.isdigit():
                key = int(key)  # JSON object keys arrive as strings
            dim = self._resolve_dim(snap, key)
            if dim in out:
                raise ServeError(f"dimension {dim} appears twice in the predicates")
            if base_cell[dim] is not None:
                raise ServeError(f"dimension {dim} is already bound in the query cell")
            if not isinstance(values, (list, tuple)) or not values:
                raise ServeError(
                    f"predicate for dimension {dim} must be a non-empty code list"
                )
            # Heavy dice carry thousands of codes per dimension; numpy
            # validates a plain-int list in one pass.  Anything that does
            # not coerce to a 1-D integer array (floats, bools, strings,
            # nested lists) drops to the per-value loop, which preserves
            # the exact rejection messages.
            try:
                arr = np.asarray(values)
            except (ValueError, TypeError):
                arr = None
            if (
                arr is not None
                and arr.ndim == 1
                and arr.dtype.kind in "iu"
                and int(arr.min()) >= 0
            ):
                out[dim] = values if isinstance(values, list) else list(values)
                continue
            clean = []
            for v in values:
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    raise ServeError(f"predicate codes must be non-negative, got {v!r}")
                clean.append(v)
            out[dim] = clean
        return out

    @staticmethod
    def _pair(cell: Cell, value) -> dict:
        return {"cell": list(cell), "value": value}

    # approximate tier --------------------------------------------------

    def _validate_approx(self, req: QueryRequest) -> float:
        """The validated confidence level of an approx request.

        ``confidence`` and ``having`` are approx-tier knobs; sending
        them without ``approx=true`` is a shape error, as is approx on
        any op but dice (the one op whose cost grows with the selection).
        """
        if not req.approx:
            raise ServeError(
                "'confidence'/'having' apply only to approx=true requests"
            )
        if req.op != "dice":
            raise ServeError("approx=true is only supported for op 'dice'")
        confidence = DEFAULT_CONFIDENCE if req.confidence is None else req.confidence
        if (
            isinstance(confidence, bool)
            or not isinstance(confidence, (int, float))
            or not 0.0 < confidence < 1.0
        ):
            raise ServeError(
                f"confidence must be a level in (0, 1), got {req.confidence!r}"
            )
        if req.having is not None and (
            isinstance(req.having, bool)
            or not isinstance(req.having, (int, float))
            or req.having < 0
        ):
            raise ServeError(
                f"having must be a non-negative count threshold, got {req.having!r}"
            )
        return float(confidence)

    def _sketch_for(self, snap: CubeVersion) -> "CubeSketch | None":
        """The version's sketch, loaded or built lazily, cached per version.

        A mapped snapshot carries its persisted sketch (built at
        ``repro snapshot`` time, see :mod:`repro.store.snapshot`);
        resident cubes build one from the columnar layout on first
        approx request.  ``None`` — cached too, so the cost is paid
        once — means the aggregator has no sampling estimator and
        callers must fall back to the exact path.
        """
        cached = getattr(self, "_sketch_cache", None)
        if cached is not None and cached[0] is snap:
            return cached[1]
        store = snap.cube.to_columnar()
        sketch = getattr(store, "sketch", None)
        if sketch is None:
            try:
                # ``_sketch_seed`` is set per shard by the sharded tier:
                # shards sample independently, so the router may sum
                # their variances.  Same-seed shards over similarly
                # ordered partitions produce *correlated* samples and
                # the merged interval undercovers.
                sketch = CubeSketch.from_store(
                    store, seed=getattr(self, "_sketch_seed", 0)
                )
            except SketchUnsupported:
                sketch = None
        # Benign race: concurrent first requests may build twice; the
        # single attribute store keeps the cache swap atomic.
        self._sketch_cache = (snap, sketch)
        return sketch

    def _dice_approx(
        self,
        snap: CubeVersion,
        cell: Cell,
        predicates: Mapping[int, Sequence[int]],
        request: QueryRequest,
    ) -> dict:
        """A dice answered from the sketch with probabilistic bounds.

        Falls back to the exact scan (flagged in the ``approx`` block)
        when the aggregator is not estimable — unless ``having`` is set,
        which only the sketch tier can honor.
        """
        confidence = self._validate_approx(request)
        response = {
            "op": "dice",
            "version": snap.version,
            "predicates": {str(d): v for d, v in sorted(predicates.items())},
            "cell": list(cell),
        }
        sketch = self._sketch_for(snap)
        if sketch is None:
            if request.having is not None:
                raise ServeError(
                    "this cube's aggregator has no sampling estimator, and "
                    "'having' cannot be answered by the exact dice path"
                )
            named = {
                snap.schema.dimensions[d].name: values
                for d, values in predicates.items()
            }
            value = snap.query.dice(named, cell)
            if OBS_STATE.enabled:
                _APPROX_FALLBACKS.inc(reason="unsupported-aggregator")
            acc = explain_collector()
            if acc is not None:
                acc.put(
                    "approx",
                    {"fallback": True, "reason": "unsupported-aggregator"},
                )
            response["value"] = value
            response["approx"] = {
                "fallback": True,
                "reason": "unsupported-aggregator",
            }
            return response
        base = {d: v for d, v in enumerate(cell) if v is not None}
        partial = sketch.estimate_partial(base, predicates, having=request.having)
        answer = finalize_partials(snap.cube.aggregator, [partial], confidence)
        if OBS_STATE.enabled:
            _APPROX_REQUESTS.inc()
            _APPROX_BOUND_WIDTH.observe(answer.bound_width)
        acc = explain_collector()
        if acc is not None:
            acc.put(
                "approx",
                {
                    "estimator": answer.estimator,
                    "sample_size": answer.sample_size,
                    "matched": answer.matched,
                    "bound_width": round(answer.bound_width, 6),
                },
            )
        response["value"] = answer.estimate
        response["approx"] = answer.to_block()
        return response

    def _answer(self, snap: CubeVersion, op: str, request: QueryRequest) -> dict:
        query = snap.query
        if op == "point":
            cell = self._normalize_cell(snap, request)
            state = snap.cube.lookup(cell)
            value = None if state is None else snap.cube.aggregator.finalize(state)
            return {"op": op, "version": snap.version, **self._pair(cell, value)}
        if op == "rollup":
            cell = self._normalize_cell(snap, request)
            dim = self._resolve_dim(snap, request.dim)
            if cell[dim] is None:
                raise ServeError(f"dimension {dim} is already * in the query cell")
            up, value = query.roll_up(cell, snap.schema.dimensions[dim].name)
            return {"op": op, "version": snap.version, "dim": dim, **self._pair(up, value)}
        if op == "drilldown":
            cell = self._normalize_cell(snap, request)
            dim = self._resolve_dim(snap, request.dim)
            if cell[dim] is not None:
                raise ServeError(f"dimension {dim} is already bound in the query cell")
            children = query.drill_down(cell, snap.schema.dimensions[dim].name)
            return {
                "op": op,
                "version": snap.version,
                "dim": dim,
                "children": [self._pair(c, v) for c, v in children],
            }
        if op == "slice":
            cell = self._normalize_cell(snap, request)
            children = query.slice(cell)
            return {
                "op": op,
                "version": snap.version,
                "children": [self._pair(c, v) for c, v in children],
            }
        if op == "dice":
            cell = self._normalize_cell(snap, request, default_apex=True)
            predicates = self._normalize_predicates(snap, request, cell)
            if request.approx:
                return self._dice_approx(snap, cell, predicates, request)
            named = {
                snap.schema.dimensions[d].name: values
                for d, values in predicates.items()
            }
            value = query.dice(named, cell)
            return {
                "op": op,
                "version": snap.version,
                "predicates": {str(d): v for d, v in sorted(predicates.items())},
                "cell": list(cell),
                "value": value,
            }
        raise ServeError(f"unknown op {op!r}; supported: {', '.join(self.OPS)}")

    def _cache_key(self, snap: CubeVersion, op: str, request: QueryRequest):
        """The cache key for a request, built without full validation.

        The hot path must not pay the per-entry validation loop on every
        repeat request, so the key uses the raw ``cell`` list (or the
        canonicalized bindings) plus the raw ``dim``.  A malformed
        request therefore simply misses and fails validation in
        :meth:`_answer`; the only laxity is that equality-compatible
        spellings of a code (``1.0``, ``True``) can hit an entry cached
        for the int — they denote the same cell.
        """
        raw = request.cell
        if isinstance(raw, (list, tuple)):
            cell = tuple(raw)
        elif op == "dice" and request.bindings is None:
            cell = None  # a dice over the apex has no cell at all
        else:
            cell = self._normalize_cell(snap, request)
        if op in ("rollup", "drilldown"):
            return (snap.version, op, cell, request.dim)
        if op == "dice":
            predicates = request.predicates
            if not isinstance(predicates, Mapping):
                raise ServeError("dice needs a non-empty 'predicates' mapping")
            canonical = tuple(
                sorted((str(k), tuple(v) if isinstance(v, (list, tuple)) else v)
                       for k, v in predicates.items())
            )
            if request.approx:
                # A separate key space: the exact entry for the same dice
                # must never answer an approx request or vice versa.
                return (
                    snap.version, op, cell, canonical,
                    "approx", request.confidence, request.having,
                )
            return (snap.version, op, cell, canonical)
        return (snap.version, op, cell)

    @staticmethod
    def _request_op(request) -> str:
        """The op label of a request-shaped object, for metrics series."""
        # ``type(...) is QueryRequest`` dodges the slow isinstance checks
        # for the overwhelmingly common typed case.
        if type(request) is QueryRequest or isinstance(request, QueryRequest):
            return request.op
        if type(request) is dict or isinstance(request, Mapping):
            return request.get("op", "point")
        return "invalid"

    def execute(self, request: "QueryRequest | Mapping") -> dict:
        """Answer one request, through the result cache.

        ``request`` is a :class:`~repro.serve.protocol.QueryRequest`
        (plain dicts are still accepted through the deprecation shim).
        The response carries ``"cached": True`` when it was served from
        the LRU cache (same cube version, same canonical query).  Each
        request is timed into the ``repro_request_seconds`` histogram,
        counted by op, traced as a ``serve.request`` span (with
        ``cache_hit`` / ``version`` attributes) and, past the slow-query
        threshold, logged — unless observability is globally disabled
        (:func:`repro.obs.set_enabled`), in which case this is a single
        extra branch on the hot path.
        """
        if not OBS_STATE.enabled:
            return self._execute(request)
        op = self._request_op(request)
        series = self._op_series.get(op) or self._op_series["invalid"]
        start = time.perf_counter()
        with _TRACER.span(
            "serve.request",
            remote_context=getattr(request, "trace_context", None),
            op=str(op),
        ) as span:
            try:
                response = self._execute(request)
            except ServeError:
                span.set_attribute("error", True)
                series[2].inc()
                raise
            cached = bool(response.get("cached"))
            span.set_attribute("cache_hit", cached)
            span.set_attribute("version", response.get("version"))
        elapsed = time.perf_counter() - start
        series[0].inc()
        series[1].observe(elapsed)
        (_CACHE_HITS if cached else _CACHE_MISSES).inc()
        if elapsed >= self.slow_log.threshold:
            # The retained entry must stay JSON-able for ``/slowlog``.
            raw = request.to_json() if isinstance(request, QueryRequest) else request
            if self.slow_log.record(
                elapsed, raw, op=op, cache_hit=cached,
                trace_id=span.trace_id, span_id=span.span_id,
            ):
                _SLOW_QUERIES.inc()
        return response

    def _execute(self, request: "QueryRequest | Mapping") -> dict:
        """The uninstrumented request path (see :meth:`execute`)."""
        req = coerce_request(request)
        op = req.op
        if op not in self.OPS:
            raise ServeError(f"unknown op {op!r}; supported: {', '.join(self.OPS)}")
        snap = self._version
        if req.version is not None and req.version != snap.version:
            raise ServeError(
                f"request targets version {req.version}, engine serves {snap.version}",
                code=ErrorCode.VERSION_CONFLICT,
            )
        if req.approx or req.confidence is not None or req.having is not None:
            self._validate_approx(req)  # reject malformed approx shapes early
        if req.explain:
            return self._execute_explain(snap, op, req)
        key = self._cache_key(snap, op, req)
        try:
            hit = self.cache.get(key)
        except TypeError:  # unhashable entries in the raw cell
            self._answer(snap, op, req)  # raises the precise ServeError
            raise
        if hit is not None:
            return hit
        response = self._answer(snap, op, req)
        # The cached entry is pre-marked and returned by reference on
        # hits, so it must never be mutated by callers (the HTTP layer
        # serializes it, the clients treat responses as read-only).
        self.cache.put(key, dict(response, cached=True))
        return dict(response, cached=False)

    # explain path ------------------------------------------------------

    def _explain_extras(self, data: dict) -> dict:
        """Engine-specific EXPLAIN fields (the snapshot tier overrides)."""
        return {"tier": {"source": "resident"}}

    def _execute_explain(self, snap: CubeVersion, op: str, req: QueryRequest) -> dict:
        """Answer one request with a structured cost account attached.

        The account never enters the result cache — the cached entry is
        shared by reference — so an ``explain=true`` repeat of a cached
        query reports the hit without disturbing ordinary callers.
        Per-phase timings are microseconds (``perf_counter`` deltas).
        """
        t0 = time.perf_counter()
        key = self._cache_key(snap, op, req)
        try:
            hit = self.cache.get(key)
        except TypeError:  # unhashable entries in the raw cell
            self._answer(snap, op, req)  # raises the precise ServeError
            raise
        t1 = time.perf_counter()
        account: dict = {
            "op": op,
            "version": snap.version,
            "engine": self._name or "default",
            "cache_hit": hit is not None,
        }
        if hit is not None:
            account["phases_us"] = {"cache": round((t1 - t0) * 1e6, 1)}
            return dict(hit, explain=account)
        with collect_explain() as acc:
            response = self._answer(snap, op, req)
        t2 = time.perf_counter()
        account["phases_us"] = {
            "cache": round((t1 - t0) * 1e6, 1),
            "answer": round((t2 - t1) * 1e6, 1),
        }
        account.update(acc.data)
        account.update(self._explain_extras(acc.data))
        self.cache.put(key, dict(response, cached=True))
        return dict(response, cached=False, explain=account)

    # batch read path ---------------------------------------------------

    #: Refuse batches beyond this size (a single request must not pin a
    #: worker thread for an unbounded amount of index work).
    MAX_BATCH = 10_000

    def execute_batch(
        self, requests: Sequence["QueryRequest | Mapping"]
    ) -> list[dict]:
        """Answer a whole batch of read requests in one call, in order.

        The batch shares one cube snapshot, so every response carries
        the same ``version`` even if a refresh lands mid-batch.  Point
        requests that miss the result cache are resolved together
        through :meth:`RangeCube.lookup_batch` — above the columnar
        threshold that is one grouped postings/cuboid-map resolution
        instead of per-cell probing — and empty cells come back with an
        explicit ``"value": null``.  A malformed *item* yields a
        structured error entry at its position (the same
        :class:`~repro.serve.protocol.ErrorInfo` shape single
        :meth:`execute` failures map to) instead of failing the whole
        batch; only a malformed batch envelope raises
        :class:`ServeError`.
        """
        if not isinstance(requests, (list, tuple)):
            raise ServeError("batch body needs a 'requests' list")
        if len(requests) > self.MAX_BATCH:
            raise ServeError(
                f"batch of {len(requests)} exceeds the {self.MAX_BATCH}-request cap"
            )
        if not OBS_STATE.enabled:
            return self._execute_batch(requests)
        start = time.perf_counter()
        remote = getattr(requests[0], "trace_context", None) if requests else None
        with _TRACER.span(
            "serve.batch", remote_context=remote, requests=len(requests)
        ) as span:
            responses = self._execute_batch(requests)
            cached = sum(1 for r in responses if r.get("cached"))
            errors = sum(1 for r in responses if "error" in r)
            span.set_attribute("cache_hits", cached)
            span.set_attribute("errors", errors)
        elapsed = time.perf_counter() - start
        _BATCHES.inc()
        _BATCH_ITEMS.inc(len(requests))
        _BATCH_SIZE.observe(len(requests))
        _BATCH_SECONDS.observe(elapsed)
        if cached:
            _CACHE_HITS.inc(cached)
        if len(responses) > cached:
            _CACHE_MISSES.inc(len(responses) - cached)
        if self.slow_log.record(
            elapsed, {"batch": len(requests)}, op="batch", cache_hit=False,
            trace_id=span.trace_id, span_id=span.span_id,
        ):
            _SLOW_QUERIES.inc()
        return responses

    def _execute_batch(self, requests: Sequence["QueryRequest | Mapping"]) -> list[dict]:
        """The uninstrumented batch path (see :meth:`execute_batch`)."""
        snap = self._version
        responses: list = [None] * len(requests)
        # (position, cell, cache key) of point requests that missed the
        # cache — resolved together at the end through the batched index.
        point_misses: list[tuple[int, Cell, object]] = []
        for i, request in enumerate(requests):
            try:
                req = coerce_request(request)
                op = req.op
                if op not in self.OPS:
                    raise ServeError(
                        f"unknown op {op!r}; supported: {', '.join(self.OPS)}"
                    )
                if req.version is not None and req.version != snap.version:
                    raise ServeError(
                        f"request targets version {req.version}, "
                        f"engine serves {snap.version}",
                        code=ErrorCode.VERSION_CONFLICT,
                    )
                if req.approx or req.confidence is not None or req.having is not None:
                    self._validate_approx(req)
                key = self._cache_key(snap, op, req)
                try:
                    hit = self.cache.get(key)
                except TypeError:  # unhashable entries in the raw cell
                    self._answer(snap, op, req)  # raises the precise error
                    raise
                if req.explain:
                    # Explained items resolve individually (their account
                    # must cover exactly their own index work), so they
                    # skip the pooled point resolution below.
                    responses[i] = self._execute_explain(snap, op, req)
                elif hit is not None:
                    responses[i] = hit
                elif op == "point":
                    cell = self._normalize_cell(snap, req)
                    point_misses.append((i, cell, key))
                else:
                    response = self._answer(snap, op, req)
                    self.cache.put(key, dict(response, cached=True))
                    responses[i] = dict(response, cached=False)
            except ServeError as exc:
                responses[i] = error_response(
                    snap.version, self._request_op(request), exc.info
                )
        if point_misses:
            states = snap.cube.lookup_batch([cell for _, cell, _ in point_misses])
            finalize = snap.cube.aggregator.finalize
            for (i, cell, key), state in zip(point_misses, states):
                response = {
                    "op": "point",
                    "version": snap.version,
                    "cell": list(cell),
                    "value": None if state is None else finalize(state),
                }
                self.cache.put(key, dict(response, cached=True))
                responses[i] = dict(response, cached=False)
        return responses

    # convenience wrappers for in-process use -------------------------------

    def point(self, cell: Sequence[int | None]) -> dict | None:
        """Finalized aggregates of one cell, None when the cell is empty."""
        return self.execute(QueryRequest(op="point", cell=list(cell)))["value"]

    def readiness(self) -> dict:
        """The resident engine's ``/readyz`` body: always able to serve.

        A resident engine is ready the moment construction returns — the
        interesting states (snapshot still loading, two-phase refresh in
        flight, dead shards) belong to :class:`SnapshotEngine
        <repro.store.engine.SnapshotEngine>` and the
        :class:`~repro.serve.sharded.ShardRouter`, which override this
        shape with the same keys.
        """
        return {"ready": True, "state": "serving", "version": self.version}

    def stats(self) -> dict:
        """A JSON-able snapshot of the engine (the ``/stats`` endpoint)."""
        snap = self._version
        cache = self.cache.stats()
        return {
            "version": snap.version,
            "protocol": PROTOCOL_VERSION,
            "n_dims": snap.schema.n_dims,
            "n_measures": len(self._measure_names),
            "dimension_names": list(self._dimension_names),
            "cardinalities": list(snap.schema.cardinalities),
            "n_ranges": snap.cube.n_ranges,
            "rows_absorbed": self._cuber.n_rows_absorbed,
            "trie_nodes": self._cuber.trie_nodes,
            "min_support": self._min_support,
            "tuning": (
                None
                if self._cuber.plan is None
                else {
                    "source": self._cuber.plan.source,
                    "dim_order": list(self._cuber.plan.dim_order),
                    "value_dims": sorted(self._cuber.plan.value_orders),
                    "replans": self._cuber.replan_count,
                }
            ),
            "cache": {
                "capacity": cache.capacity,
                "size": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "hit_rate": cache.hit_rate,
            },
            "slow_log": {
                "threshold_s": self.slow_log.threshold,
                "seen": self.slow_log.seen,
                "kept": len(self.slow_log.entries()),
            },
        }

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _validate_rows(self, rows, measures):
        return validate_rows(
            rows, measures, self._cuber.trie.n_dims, len(self._measure_names)
        )

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> int:
        """Absorb a batch of encoded fact rows and refresh the served cube.

        Returns the new version number.  The refresh is atomic from the
        readers' point of view: they keep answering from the old
        :class:`CubeVersion` until the single attribute swap, after which
        every new request sees the new cube and the cache entries of the
        old version can no longer be returned (the version is part of the
        cache key); ``invalidate_all`` then reclaims their memory.
        """
        clean_rows, clean_measures = self._validate_rows(rows, measures)
        start = time.perf_counter()
        with _TRACER.span("serve.append", rows=len(clean_rows)) as span:
            with self._write_lock:
                # Large batches bulk-build a trie of their own and merge
                # canonically; small ones stream through Algorithm 1.
                self._cuber.insert_batch(clean_rows, clean_measures)
                for row in clean_rows:
                    for d, v in enumerate(row):
                        if v > self._max_codes[d]:
                            self._max_codes[d] = v
                # Re-plan the resident trie when the append drifted the
                # observed cardinalities past the plan's estimates (cheap
                # comparison otherwise); answers are unaffected.
                if self._cuber.plan is not None:
                    self._cuber.maybe_replan()
                with _TRACER.span("serve.refresh"):
                    new = CubeVersion(
                        self._version.version + 1,
                        self._cuber.cube(self._min_support),
                        self._current_schema(),
                    )
                self._version = new  # the atomic swap
                self.cache.invalidate_all()
                if self._store is not None:
                    self._store.save(
                        self._name,
                        self._cuber,
                        new.schema,
                        min_support=self._min_support,
                        engine_version=new.version,
                    )
            span.set_attribute("version", new.version)
        _APPENDS.inc()
        _APPEND_ROWS.inc(len(clean_rows))
        _APPEND_SECONDS.observe(time.perf_counter() - start)
        _REFRESHES.inc()
        return new.version

    def append_table(self, table: BaseTable) -> int:
        """Absorb a whole :class:`BaseTable` batch (same arity)."""
        return self.append(table.dim_rows(), table.measure_rows())

    def __repr__(self) -> str:
        snap = self._version
        return (
            f"QueryEngine(v{snap.version}, {snap.cube.n_ranges} ranges, "
            f"{self._cuber.n_rows_absorbed} rows absorbed)"
        )
