"""Sharded multi-process cube service: scatter-gather over shard workers.

One process and one GIL bound the single :class:`~repro.serve.engine.QueryEngine`;
this module is the step past it.  The fact table is split **by value**
along one *shard dimension* (:func:`repro.core.partitioned.shard_partition_payloads`:
row ``r`` lives on shard ``r[shard_dim] % n_shards``), each shard builds
its own resident engine inside a persistent worker process
(:class:`repro.exec.WorkerProcess`), and a :class:`ShardRouter` front end
re-exposes the engine's exact read/write surface — ``execute``,
``execute_batch``, ``append``, ``stats`` — so the HTTP server, the
clients and the workload driver drop on top of it unchanged.

Three ideas carry the design:

* **Value routing.**  A query that binds the shard dimension can only be
  answered by one residue class, so the router sends it to exactly one
  worker — on top of the smaller per-shard cubes (shorter postings,
  smaller cuboid maps) this is where the sharded tier *reduces* work
  rather than merely spreading it.  Queries that leave the shard
  dimension free scatter to every shard.
* **State merging.**  Shards return partial *aggregate states* (the
  count-first tuples of :mod:`repro.table.aggregates`), never finalized
  values; the router folds them with the aggregator's merge algebra
  (:meth:`~repro.table.aggregates.Aggregator.merge_many`) and finalizes
  once.  Distributivity makes the merged answer exactly the single-cube
  answer — the cross-shard identity suite asserts bit-for-bit equality.
* **Versioned two-phase refresh.**  Every scatter is tagged with the
  router's cube version and every shard refuses a tag that is not its
  own (a structured ``version_conflict``).  An append runs prepare →
  commit across all shards while holding the same lock that serializes
  scatter *sends*; pipes deliver in FIFO order per worker, so a read's
  sub-requests land either entirely before or entirely after the swap —
  no batch ever observes torn versions.

Per-shard failures surface as structured partial results: a dead or
timed-out shard turns only the requests that needed it into
``shard_unavailable`` / ``shard_timeout`` error entries (with the shard
id) while the rest of the batch answers normally.

Observability: ``serve.scatter`` spans wrap each fan-out with per-shard
``serve.gather`` child spans, and the ``repro_shard_*`` metric families
(requests, errors, scatter seconds, fan-out, reply lag, live shards,
per-shard version) feed ``/metrics``.  The scatter span's
:class:`~repro.obs.TraceContext` rides to every worker, whose
``shard.scatter`` spans come back in the reply and are folded into the
router's buffer — ``GET /trace`` shows one stitched tree per request.
:meth:`ShardRouter.federated_metrics` folds every worker's registry
snapshot into a fresh ``shard``-labeled registry for ``GET /metrics``,
and :meth:`ShardRouter.readiness` backs ``GET /readyz``.  See
``docs/sharding.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

from repro.approx import exact_partial, finalize_partials
from repro.core.columnar import collect_explain
from repro.core.partitioned import shard_partition_payloads
from repro.cube.cell import Cell
from repro.exec.workers import (
    RemoteError,
    WorkerProcess,
    WorkerTimeout,
    WorkerUnavailable,
    spawn_workers,
)
from repro.obs import OBS_STATE, SlowQueryLog, TraceContext, get_registry, get_tracer
from repro.obs.metrics import MetricRegistry
from repro.serve.cache import LRUCache
from repro.serve.engine import (
    _APPROX_BOUND_WIDTH,
    _APPROX_FALLBACKS,
    _APPROX_REQUESTS,
    QueryEngine,
    validate_rows,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ErrorInfo,
    QueryRequest,
    ServeError,
    coerce_request,
    error_response,
)
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Dimension, Schema

_TRACER = get_tracer()
_REGISTRY = get_registry()
_SHARD_REQUESTS = _REGISTRY.counter(
    "repro_shard_requests_total",
    "Scattered sub-requests sent, by shard.",
    ("shard",),
)
_SHARD_ERRORS = _REGISTRY.counter(
    "repro_shard_errors_total",
    "Per-shard scatter failures, by shard and error code.",
    ("shard", "code"),
)
_SCATTER_SECONDS = _REGISTRY.histogram(
    "repro_shard_scatter_seconds",
    "Scatter + gather wall-clock seconds per fanned-out request.",
)
_SHARD_FANOUT = _REGISTRY.histogram(
    "repro_shard_fanout",
    "Shards touched per routed request (1 = routed to a single shard).",
    min_value=1.0,
)
_SHARD_LAG = _REGISTRY.gauge(
    "repro_shard_lag_seconds",
    "Last gather: shard reply time minus the fastest shard's reply time.",
    ("shard",),
)
_SHARDS_LIVE = _REGISTRY.gauge(
    "repro_shard_live", "Shard workers currently believed alive.", ("router",)
)
_SHARD_VERSION = _REGISTRY.gauge(
    "repro_shard_version", "Cube version last confirmed per shard.", ("shard",)
)


# ---------------------------------------------------------------------------
# the shard worker
# ---------------------------------------------------------------------------


class ShardEngine:
    """One shard's resident engine, driven over a worker pipe.

    Lives inside the worker process.  Wraps a :class:`QueryEngine` built
    from the shard's slice of the fact table, answers ``scatter`` calls
    at the *state* level (the router does the merging and finalizing),
    and takes part in the router's two-phase refresh: ``prepare`` stages
    a validated row batch against a target version, ``commit`` absorbs
    it and adopts the version, ``abort`` drops it.

    The coordinated version lives here (``self.version``), not in the
    inner engine — a shard whose slice of an append is empty must still
    advance in lockstep with its peers.
    """

    def __init__(
        self,
        shard_id: int,
        table: BaseTable,
        *,
        aggregator: Aggregator | None = None,
        min_support: int = 1,
    ) -> None:
        self.shard_id = shard_id
        self.engine = QueryEngine.from_table(
            table, aggregator=aggregator, min_support=min_support, cache_capacity=8
        )
        # Distinct per-shard sampling seeds: the router sums per-shard
        # variances, which is only valid when the shard samples are
        # independent.  Same-seed shards over similarly ordered
        # partitions draw correlated samples and the merged confidence
        # interval undercovers.
        self.engine._sketch_seed = 1 + shard_id
        self.version = 0
        self._staged: tuple[int, list, list] | None = None
        self._latency = 0.0
        self._fail_next = 0

    # -- read path ------------------------------------------------------

    def scatter(
        self,
        target_version: int,
        items: Sequence[tuple],
        trace: Mapping | None = None,
        explain: bool = False,
    ) -> list | dict:
        """Answer one batch of routed sub-requests with partial states.

        Items are pre-validated by the router: ``("point", cell)`` →
        state-or-None; ``("children", cell, dim)`` → ``[(value, state)]``
        for the non-empty specializations along ``dim``; ``("dice",
        cell, {dim: codes})`` → the merged state of the sub-cube;
        ``("approx_dice", cell, {dim: codes}, having)`` → one mergeable
        partial estimate dict (:meth:`repro.approx.CubeSketch.estimate_partial`),
        which the router combines variance-correctly and finalizes once.

        ``trace`` (a :meth:`TraceContext.to_json` dict) grafts this
        shard's work into the router's trace: the worker opens a real
        ``shard.scatter`` span under the remote context and ships its
        finished span dict back in the reply for the router to fold.
        ``explain`` resolves every item individually under an explain
        collector and returns one account per item.  Either flag changes
        the reply from a plain partials list to a ``{"results", "spans",
        "explain"}`` envelope — the router is the only caller and always
        knows which shape it asked for, so the plain form (and every
        pre-envelope caller) is untouched.
        """
        if self._latency:
            time.sleep(self._latency)
        if self._fail_next > 0:
            self._fail_next -= 1
            raise RuntimeError(f"shard {self.shard_id}: injected fault")
        if target_version != self.version:
            raise ServeError(
                f"shard {self.shard_id} serves version {self.version}, "
                f"scatter targets {target_version}",
                code=ErrorCode.VERSION_CONFLICT,
                shard=self.shard_id,
            )
        remote = None
        if trace is not None:
            try:
                remote = TraceContext.from_json(trace)
            except (KeyError, TypeError, ValueError):
                remote = None  # a malformed context must never fail the read
        accounts: list | None = None
        span = _TRACER.span(
            "shard.scatter",
            remote_context=remote,
            shard=self.shard_id,
            items=len(items),
            version=target_version,
        )
        with span:
            if explain:
                out, accounts = self._scatter_explain(items)
            else:
                out = self._scatter_items(items)
        if trace is None and not explain:
            return out
        reply: dict = {"results": out}
        if span.context() is not None:  # real span (tracing enabled here)
            reply["spans"] = [span.to_dict()]
        if explain:
            reply["explain"] = accounts
        return reply

    def _scatter_items(self, items: Sequence[tuple]) -> list:
        """The pooled fast path: resolve one scatter batch of items."""
        snap = self.engine.snapshot()
        cube = snap.cube
        out: list = [None] * len(items)
        # Point items resolve together through lookup_batch — above the
        # columnar threshold that is one grouped postings/cuboid-map
        # resolution over the shard's quarter-size store, the same
        # batched path (and batched advantage) the single engine gets.
        point_slots = [i for i, item in enumerate(items) if item[0] == "point"]
        if point_slots:
            states = cube.lookup_batch([tuple(items[i][1]) for i in point_slots])
            for slot, state in zip(point_slots, states):
                out[slot] = state
        for i, item in enumerate(items):
            kind = item[0]
            if kind == "point":
                continue
            if kind == "children":
                out[i] = self._children(snap, tuple(item[1]), item[2])
            elif kind == "dice":
                out[i] = self._dice_state(snap, tuple(item[1]), item[2])
            elif kind == "approx_dice":
                out[i] = self._dice_approx_partial(
                    snap, tuple(item[1]), item[2], item[3]
                )
            else:  # pragma: no cover - router never sends unknown kinds
                raise ServeError(f"unknown scatter item kind {kind!r}")
        return out

    def _scatter_explain(self, items: Sequence[tuple]) -> tuple[list, list]:
        """Resolve items one by one, each under its own explain collector.

        Explained items skip the pooled point resolution on purpose — an
        account must cover exactly its own item's index work — so EXPLAIN
        trades the batched-point advantage for attribution, the same
        bargain the single engine's explain path makes.
        """
        snap = self.engine.snapshot()
        cube = snap.cube
        out: list = [None] * len(items)
        accounts: list = [None] * len(items)
        for i, item in enumerate(items):
            kind = item[0]
            t0 = time.perf_counter()
            with collect_explain() as acc:
                if kind == "point":
                    out[i] = cube.lookup_batch([tuple(item[1])])[0]
                elif kind == "children":
                    out[i] = self._children(snap, tuple(item[1]), item[2])
                elif kind == "dice":
                    out[i] = self._dice_state(snap, tuple(item[1]), item[2])
                elif kind == "approx_dice":
                    out[i] = self._dice_approx_partial(
                        snap, tuple(item[1]), item[2], item[3]
                    )
                else:  # pragma: no cover - router never sends unknown kinds
                    raise ServeError(f"unknown scatter item kind {kind!r}")
            account = dict(acc.data)
            extras = getattr(self.engine, "_explain_extras", None)
            if extras is not None:
                account.update(extras(acc.data))
            account["kind"] = kind
            account["elapsed_us"] = round((time.perf_counter() - t0) * 1e6, 1)
            accounts[i] = account
        return out, accounts

    def _children(self, snap, cell: Cell, dim: int) -> list[tuple[int, tuple]]:
        """(value, state) for this shard's non-empty children along ``dim``.

        Candidates span the shard's local cardinality — every code with
        rows here is below it, and codes only present on other shards
        would answer None anyway, so the cross-shard union is exactly
        the single-cube drill-down.
        """
        card = snap.schema.dimensions[dim].cardinality or 0
        cells = []
        for value in range(card):
            child = list(cell)
            child[dim] = value
            cells.append(tuple(child))
        states = snap.cube.lookup_batch(cells)
        return [
            (value, state) for value, state in enumerate(states) if state is not None
        ]

    def _dice_state(
        self, snap, cell: Cell, predicates: Mapping[int, Sequence[int]]
    ) -> tuple | None:
        """The merged (un-finalized) state of one dice on this shard."""
        cube = snap.cube
        store = cube.columnar_if_worthwhile()
        if store is not None:
            base = {d: v for d, v in enumerate(cell) if v is not None}
            value_sets = {d: set(vs) for d, vs in predicates.items()}
            return store.merge_states(store.dice_ids(value_sets, base))
        dims = list(predicates)
        value_lists = [list(dict.fromkeys(predicates[d])) for d in dims]
        work = list(cell)
        merge = cube.aggregator.merge
        total = None

        def walk(index: int) -> None:
            nonlocal total
            if index == len(dims):
                state = cube.lookup(tuple(work))
                if state is not None:
                    total = state if total is None else merge(total, state)
                return
            for value in value_lists[index]:
                work[dims[index]] = value
                walk(index + 1)
            work[dims[index]] = None

        walk(0)
        return total

    def _dice_approx_partial(
        self,
        snap,
        cell: Cell,
        predicates: Mapping[int, Sequence[int]],
        having: float | None,
    ) -> dict:
        """One shard's mergeable partial estimate for an approx dice.

        Shards never finalize bounds — per-shard samples are independent,
        so the router sums estimates and variances and computes the
        interval once.  A shard whose aggregator cannot be estimated
        contributes its exact dice state as a zero-variance partial
        (unless ``having`` is set, which only the sketch can honor).
        """
        sketch = self.engine._sketch_for(snap)
        if sketch is None:
            if having is not None:
                raise ServeError(
                    f"shard {self.shard_id}: the aggregator has no sampling "
                    "estimator, and 'having' cannot be answered exactly",
                    shard=self.shard_id,
                )
            if OBS_STATE.enabled:
                _APPROX_FALLBACKS.inc(reason="unsupported-aggregator")
            state = self._dice_state(snap, cell, predicates)
            return exact_partial(snap.cube.aggregator, state)
        base = {d: v for d, v in enumerate(cell) if v is not None}
        return sketch.estimate_partial(base, predicates, having=having)

    # -- two-phase refresh ----------------------------------------------

    def prepare(self, target_version: int, rows: list, measures: list) -> int:
        """Phase one: validate and stage a row batch for ``target_version``."""
        if target_version != self.version + 1:
            raise ServeError(
                f"shard {self.shard_id} at version {self.version} cannot "
                f"prepare {target_version}",
                code=ErrorCode.VERSION_CONFLICT,
                shard=self.shard_id,
            )
        if rows:  # an empty slice still participates in the swap
            rows, measures = self.engine._validate_rows(rows, measures)
        self._staged = (target_version, list(rows), list(measures or []))
        return self.shard_id

    def commit(self, target_version: int) -> int:
        """Phase two: absorb the staged batch and adopt ``target_version``."""
        staged = self._staged
        if staged is None or staged[0] != target_version:
            raise ServeError(
                f"shard {self.shard_id} has no prepared batch for "
                f"version {target_version}",
                code=ErrorCode.VERSION_CONFLICT,
                shard=self.shard_id,
            )
        _, rows, measures = staged
        self._staged = None
        if rows:
            self.engine.append(rows, measures)
        self.version = target_version
        return self.version

    def abort(self, target_version: int) -> int:
        """Drop a staged batch (no-op when nothing matching is staged)."""
        if self._staged is not None and self._staged[0] == target_version:
            self._staged = None
        return self.version

    # -- introspection and fault injection ------------------------------

    def stats(self) -> dict:
        inner = self.engine.stats()
        return {
            "shard": self.shard_id,
            "version": self.version,
            "rows_absorbed": inner["rows_absorbed"],
            "n_ranges": inner["n_ranges"],
            "trie_nodes": inner["trie_nodes"],
            "cardinalities": inner["cardinalities"],
        }

    def metrics_snapshot(self) -> dict:
        """This worker's whole metric registry in the federation format.

        The router folds it into a fresh registry with a ``shard`` label
        (:meth:`ShardRouter.federated_metrics`); the snapshot is plain
        JSON-able data, so it rides the worker pipe like any reply.
        """
        return get_registry().to_dict()

    def readiness(self) -> dict:
        """This shard's serving state (snapshot still loading vs serving)."""
        inner = getattr(self.engine, "readiness", None)
        state = inner() if inner is not None else {"ready": True, "state": "serving"}
        return dict(state, shard=self.shard_id, version=self.version)

    def set_latency(self, seconds: float) -> None:
        """Testing hook: delay every subsequent scatter by ``seconds``."""
        self._latency = float(seconds)

    def fail_next(self, n: int = 1) -> None:
        """Testing hook: make the next ``n`` scatters raise."""
        self._fail_next = int(n)


def _build_shard_engine(payload: tuple) -> ShardEngine:
    """Worker factory (module-level so it pickles by reference).

    ``payload`` is pickle-cheap: the shard id, schema names, the
    *global* cardinalities (so per-shard drill-down candidate ranges
    match the single engine's), the shard's numpy slices, the
    aggregator and the min-support.
    """
    (shard_id, dim_names, measure_names, cardinalities, dim_codes,
     measures, aggregator, min_support) = payload
    base = Schema.from_names(list(dim_names), list(measure_names))
    schema = Schema(
        tuple(
            Dimension(d.name, card)
            for d, card in zip(base.dimensions, cardinalities)
        ),
        base.measures,
    )
    table = BaseTable(schema, dim_codes, measures)
    return ShardEngine(
        shard_id, table, aggregator=aggregator, min_support=min_support
    )


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------


class ShardRouter:
    """Scatter-gather front end over the shard workers.

    Duck-types the :class:`QueryEngine` surface (``execute``,
    ``execute_batch``, ``append``, ``stats``, ``version``, ``slow_log``,
    ``cache``) so :class:`~repro.serve.http.CubeServer`,
    :class:`~repro.serve.client.InProcessClient` and the workload driver
    work unchanged on top of it.

    >>> router = ShardRouter.from_table(table, n_shards=4)   # doctest: +SKIP
    >>> router.execute(QueryRequest(op="point", cell=[3, None]))  # doctest: +SKIP
    >>> router.close()                                       # doctest: +SKIP
    """

    OPS = QueryEngine.OPS
    MAX_BATCH = QueryEngine.MAX_BATCH

    # The validation/normalization helpers are shared with the single
    # engine on purpose: the router must reject exactly what the engine
    # rejects, with the same messages, for the two tiers to be
    # interchangeable.
    _resolve_dim = QueryEngine._resolve_dim
    _normalize_cell = QueryEngine._normalize_cell
    _normalize_predicates = QueryEngine._normalize_predicates
    _cache_key = QueryEngine._cache_key
    _request_op = staticmethod(QueryEngine._request_op)
    _validate_approx = QueryEngine._validate_approx

    def __init__(
        self,
        workers: Sequence[WorkerProcess],
        schema: Schema,
        aggregator: Aggregator,
        *,
        shard_dim: int = 0,
        timeout: float = 30.0,
        append_timeout: float = 300.0,
        cache_capacity: int = 1024,
        min_support: int = 1,
        name: str = "router",
        slow_query_threshold: float = 0.050,
        initial_version: int = 0,
    ) -> None:
        if not workers:
            raise ValueError("a shard router needs at least one worker")
        self._workers = list(workers)
        self._schema = schema
        self._aggregator = aggregator
        self.n_shards = len(self._workers)
        self.shard_dim = shard_dim
        self.timeout = timeout
        self.append_timeout = append_timeout
        self._min_support = min_support
        self._name = name
        self._router_version = initial_version
        self._max_codes = [
            (c or 0) - 1 if c is not None else -1 for c in schema.cardinalities
        ]
        # Serializes scatter *sends* against the two-phase version swap;
        # gathers run outside it, so reads still overlap each other.
        self._scatter_lock = threading.Lock()
        # Exposed through readiness(): None while serving, else the
        # in-flight two-phase refresh phase ("prepare" / "commit").
        self._refresh_phase: str | None = None
        self.cache = LRUCache(cache_capacity)
        self.slow_log = SlowQueryLog(slow_query_threshold)
        self._shard_series = [
            (
                _SHARD_REQUESTS.labels(shard=str(k)),
                _SHARD_LAG.labels(shard=str(k)),
                _SHARD_VERSION.labels(shard=str(k)),
            )
            for k in range(self.n_shards)
        ]
        _SHARDS_LIVE.set(self.n_shards, router=name)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: BaseTable,
        *,
        n_shards: int = 4,
        shard_dim: int = 0,
        aggregator: Aggregator | None = None,
        min_support: int = 1,
        cache_capacity: int = 1024,
        timeout: float = 30.0,
        start_method: str | None = None,
        ready_timeout: float = 300.0,
    ) -> "ShardRouter":
        """Partition ``table`` by value and spawn one worker per shard."""
        import multiprocessing

        agg = aggregator or default_aggregator(table.n_measures)
        slices = shard_partition_payloads(table, n_shards, shard_dim)
        # Shards carry the *global* cardinalities so their drill-down
        # candidate ranges match the single engine's exactly (a shard's
        # local maximum code would silently truncate them).
        cardinalities = [c or 0 for c in table.schema.cardinalities]
        payloads = [
            (
                shard,
                tuple(table.schema.dimension_names),
                tuple(table.schema.measure_names),
                tuple(cardinalities),
                codes,
                measures,
                agg,
                min_support,
            )
            for shard, (codes, measures) in enumerate(slices)
        ]
        context = (
            multiprocessing.get_context(start_method) if start_method else None
        )
        workers = spawn_workers(
            _build_shard_engine,
            payloads,
            name="repro-shard",
            ready_timeout=ready_timeout,
            context=context,
        )
        schema = Schema(
            tuple(
                Dimension(d.name, card)
                for d, card in zip(table.schema.dimensions, cardinalities)
            ),
            table.schema.measures,
        )
        return cls(
            workers,
            schema,
            agg,
            shard_dim=shard_dim,
            timeout=timeout,
            cache_capacity=cache_capacity,
            min_support=min_support,
        )

    @classmethod
    def from_snapshot_dir(
        cls,
        path,
        *,
        aggregator: Aggregator | None = None,
        cache_capacity: int = 1024,
        timeout: float = 30.0,
        start_method: str | None = None,
        ready_timeout: float = 300.0,
        budget_bytes: int | None = None,
        promote_after: int = 2,
    ) -> "ShardRouter":
        """Cold-start the fleet from a sharded snapshot directory.

        Each worker memory-maps its own per-partition snapshot (written
        by :func:`repro.store.save_sharded_snapshot`), so nothing
        cube-sized crosses the spawn pipes and the fleet is serving
        after a directory walk plus one mmap per column file.  The
        resulting router is read-only: ``append`` surfaces each shard's
        structured ``bad_request`` refusal.
        """
        import multiprocessing

        from repro.store.engine import DEFAULT_BUDGET_BYTES
        from repro.store.sharded import (
            _build_snapshot_shard_engine,
            read_router_manifest,
            router_aggregator,
            router_schema,
        )
        from pathlib import Path

        path = Path(path)
        manifest = read_router_manifest(path)
        schema = router_schema(manifest)
        agg = router_aggregator(manifest, aggregator)
        engine_version = int(manifest.get("engine_version", 0))
        budget = budget_bytes if budget_bytes is not None else DEFAULT_BUDGET_BYTES
        payloads = [
            (shard, str(path / name), engine_version, budget, promote_after)
            for shard, name in enumerate(manifest["shards"])
        ]
        context = (
            multiprocessing.get_context(start_method) if start_method else None
        )
        workers = spawn_workers(
            _build_snapshot_shard_engine,
            payloads,
            name="repro-shard",
            ready_timeout=ready_timeout,
            context=context,
        )
        return cls(
            workers,
            schema,
            agg,
            shard_dim=int(manifest["shard_dim"]),
            timeout=timeout,
            cache_capacity=cache_capacity,
            min_support=int(manifest.get("min_support", 1)),
            initial_version=engine_version,
        )

    # -- the engine-compatible surface -----------------------------------

    @property
    def version(self) -> int:
        return self._router_version

    def snapshot(self) -> "_RouterSnap":
        """A version-stamped view of the routing schema (reader-stable)."""
        return _RouterSnap(self._router_version, self._current_schema())

    def _current_schema(self) -> Schema:
        return Schema(
            tuple(
                d.with_cardinality(max(self._max_codes[i] + 1, 0))
                for i, d in enumerate(self._schema.dimensions)
            ),
            self._schema.measures,
        )

    def execute(self, request: "QueryRequest | Mapping") -> dict:
        """Answer one request by routed scatter-gather (engine-shaped)."""
        req = coerce_request(request)
        start = time.perf_counter()
        with _TRACER.span(
            "serve.request",
            remote_context=req.trace_context,
            op=str(req.op),
            sharded=True,
        ) as span:
            response = self._execute(req)
        elapsed = time.perf_counter() - start
        if elapsed >= self.slow_log.threshold:
            # The retained entry must stay JSON-able for ``/slowlog``.
            self.slow_log.record(
                elapsed,
                req.to_json(),
                op=req.op,
                trace_id=span.trace_id,
                span_id=span.span_id,
            )
        return response

    def _execute(self, request: "QueryRequest | Mapping") -> dict:
        req = coerce_request(request)
        op = req.op
        if op not in self.OPS:
            raise ServeError(f"unknown op {op!r}; supported: {', '.join(self.OPS)}")
        snap = self.snapshot()
        if req.version is not None and req.version != snap.version:
            raise ServeError(
                f"request targets version {req.version}, router serves {snap.version}",
                code=ErrorCode.VERSION_CONFLICT,
            )
        if req.approx or req.confidence is not None or req.having is not None:
            self._validate_approx(req)  # reject malformed approx shapes early
        if req.explain:
            return self._execute_explain(snap, op, req)
        key = self._cache_key(snap, op, req)
        try:
            hit = self.cache.get(key)
        except TypeError:
            self._plan(snap, op, req)  # raises the precise ServeError
            raise
        if hit is not None:
            return hit
        plan = self._plan(snap, op, req)
        results, failures, _ = self._scatter([plan], op=op)
        partials = results[0]
        if partials is None:
            shard = next(k for k in plan.targets if k in failures)
            raise ServeError.from_info(failures[shard])
        response = self._merge(snap, plan, partials)
        self.cache.put(key, dict(response, cached=True))
        return dict(response, cached=False)

    def _execute_explain(self, snap: "_RouterSnap", op: str, req: QueryRequest) -> dict:
        """Answer one explained request with a routed per-shard account.

        The account names the routing decision (shard dimension, shards
        touched, fan-out, scatter item kinds), folds each shard's index
        counters and tier classification into one entry per shard, and
        times the router's own phases.  EXPLAIN responses are assembled
        fresh and never cached — the account describes exactly this
        execution — but the plain payload still lands in the cache for
        the next caller, so turning EXPLAIN on does not perturb what the
        fleet serves.
        """
        t0 = time.perf_counter()
        key = self._cache_key(snap, op, req)
        try:
            hit = self.cache.get(key)
        except TypeError:
            self._plan(snap, op, req)  # raises the precise ServeError
            raise
        t1 = time.perf_counter()
        account: dict = {
            "op": op,
            "version": snap.version,
            "engine": self._name,
            "sharded": True,
            "cache_hit": hit is not None,
        }
        if hit is not None:
            account["phases_us"] = {"cache": round((t1 - t0) * 1e6, 1)}
            return dict(hit, explain=account)
        plan = self._plan(snap, op, req)
        t2 = time.perf_counter()
        results, failures, accounts = self._scatter([plan], op=op, explain=True)
        if results[0] is None:
            shard = next(k for k in plan.targets if k in failures)
            raise ServeError.from_info(failures[shard])
        t3 = time.perf_counter()
        response = self._merge(snap, plan, results[0])
        t4 = time.perf_counter()
        account["routing"] = {
            "shard_dim": self.shard_dim,
            "shards_touched": list(plan.targets),
            "fanout": len(plan.targets),
            "items": [item[0] for item in plan.items],
        }
        if plan.approx and "approx" in response:
            blk = response["approx"]
            width = float(blk["upper"]["count"] - blk["lower"]["count"])
            account["approx"] = {
                "estimator": blk.get("estimator"),
                "sample_size": blk.get("sample_size"),
                "matched": blk.get("matched"),
                "bound_width": round(
                    width / max(float(blk["estimate"]["count"]), 1.0), 6
                ),
            }
        account["shards"] = self._merge_accounts(accounts[0])
        account["phases_us"] = {
            "cache": round((t1 - t0) * 1e6, 1),
            "plan": round((t2 - t1) * 1e6, 1),
            "scatter": round((t3 - t2) * 1e6, 1),
            "merge": round((t4 - t3) * 1e6, 1),
        }
        self.cache.put(key, dict(response, cached=True))
        return dict(response, cached=False, explain=account)

    @staticmethod
    def _merge_accounts(item_accounts: list) -> list[dict]:
        """Fold per-item per-shard explain entries into one per shard.

        Numeric counters sum across a shard's items; the tier source
        stays when consistent and degrades to ``"mixed"`` when a shard
        served some items hot and some cold.
        """
        per_shard: dict[int, dict] = {}
        for entries in item_accounts:
            for entry in entries or ():
                shard = entry.get("shard")
                merged = per_shard.setdefault(shard, {"shard": shard, "items": 0})
                merged["items"] += 1
                for field, value in entry.items():
                    if field in ("shard", "kind"):
                        continue
                    if field == "tier":
                        prior = merged.get("tier")
                        if prior is None:
                            merged["tier"] = dict(value)
                        else:
                            if prior.get("source") != value.get("source"):
                                prior["source"] = "mixed"
                            for bucket in ("hot_hits", "cold_hits"):
                                if bucket in value:
                                    prior[bucket] = prior.get(bucket, 0) + value[bucket]
                    elif isinstance(value, (int, float)):
                        merged[field] = merged.get(field, 0) + value
                    else:
                        merged.setdefault(field, value)
        return [per_shard[k] for k in sorted(per_shard)]

    def execute_batch(
        self, requests: Sequence["QueryRequest | Mapping"]
    ) -> list[dict]:
        """Answer a batch with per-item routing and per-shard scatters.

        Items group by their target shards, so a batch costs one scatter
        round per shard, not one per item; a failed shard degrades only
        the items that needed it into structured error entries.
        Explain-flagged items route and scatter individually — their
        account must cover exactly their own fan-out — so they trade the
        grouped scatter round for attribution.
        """
        if not isinstance(requests, (list, tuple)):
            raise ServeError("batch body needs a 'requests' list")
        if len(requests) > self.MAX_BATCH:
            raise ServeError(
                f"batch of {len(requests)} exceeds the {self.MAX_BATCH}-request cap"
            )
        remote = getattr(requests[0], "trace_context", None) if requests else None
        snap = self.snapshot()
        responses: list = [None] * len(requests)
        plans: list = []  # (position, op, plan, cache_key)
        with _TRACER.span(
            "serve.batch",
            remote_context=remote,
            requests=len(requests),
            sharded=True,
        ):
            for i, request in enumerate(requests):
                try:
                    req = coerce_request(request)
                    op = req.op
                    if op not in self.OPS:
                        raise ServeError(
                            f"unknown op {op!r}; supported: {', '.join(self.OPS)}"
                        )
                    if req.version is not None and req.version != snap.version:
                        raise ServeError(
                            f"request targets version {req.version}, "
                            f"router serves {snap.version}",
                            code=ErrorCode.VERSION_CONFLICT,
                        )
                    if req.approx or req.confidence is not None or req.having is not None:
                        self._validate_approx(req)
                    if req.explain:
                        responses[i] = self._execute_explain(snap, op, req)
                        continue
                    key = self._cache_key(snap, op, req)
                    try:
                        hit = self.cache.get(key)
                    except TypeError:
                        self._plan(snap, op, req)
                        raise
                    if hit is not None:
                        responses[i] = hit
                    else:
                        plans.append((i, op, self._plan(snap, op, req), key))
                except ServeError as exc:
                    responses[i] = error_response(
                        snap.version, self._request_op(request), exc.info
                    )
            if plans:
                results, failures, _ = self._scatter(
                    [plan for _, _, plan, _ in plans], op="batch"
                )
                for (i, op, plan, key), partials in zip(plans, results):
                    if partials is None:
                        shard = next(
                            k for k in plan.targets if k in failures
                        )
                        responses[i] = error_response(snap.version, op, failures[shard])
                        continue
                    response = self._merge(snap, plan, partials)
                    self.cache.put(key, dict(response, cached=True))
                    responses[i] = dict(response, cached=False)
        return responses

    # -- planning --------------------------------------------------------

    def _route(self, code: int) -> int:
        return code % self.n_shards

    def _plan(self, snap: "_RouterSnap", op: str, req: QueryRequest) -> "_Plan":
        """Validate one request and decide its scatter items and shards."""
        sd = self.shard_dim
        all_shards = tuple(range(self.n_shards))
        if op == "point":
            cell = self._normalize_cell(snap, req)
            targets = (
                (self._route(cell[sd]),) if cell[sd] is not None else all_shards
            )
            return _Plan(op, targets, (("point", cell),), cell=cell)
        if op == "rollup":
            cell = self._normalize_cell(snap, req)
            dim = self._resolve_dim(snap, req.dim)
            if cell[dim] is None:
                raise ServeError(f"dimension {dim} is already * in the query cell")
            up = list(cell)
            up[dim] = None
            up = tuple(up)
            targets = (self._route(up[sd]),) if up[sd] is not None else all_shards
            return _Plan(op, targets, (("point", up),), cell=up, dim=dim)
        if op == "drilldown":
            cell = self._normalize_cell(snap, req)
            dim = self._resolve_dim(snap, req.dim)
            if cell[dim] is not None:
                raise ServeError(f"dimension {dim} is already bound in the query cell")
            targets = (
                (self._route(cell[sd]),)
                if sd != dim and cell[sd] is not None
                else all_shards
            )
            return _Plan(op, targets, (("children", cell, dim),), cell=cell, dim=dim)
        if op == "slice":
            cell = self._normalize_cell(snap, req)
            free = [d for d in range(snap.schema.n_dims) if cell[d] is None]
            targets = (
                (self._route(cell[sd]),) if cell[sd] is not None else all_shards
            )
            items = tuple(("children", cell, d) for d in free)
            return _Plan(op, targets, items, cell=cell, free_dims=tuple(free))
        if op == "dice":
            cell = self._normalize_cell(snap, req, default_apex=True)
            predicates = self._normalize_predicates(snap, req, cell)
            # Shards get deduped value lists (a repeated predicate value
            # must not double-count); the response echoes the validated
            # predicates verbatim, exactly as the single engine does.
            deduped = {
                d: list(dict.fromkeys(values)) for d, values in predicates.items()
            }
            if cell[sd] is not None:
                targets = (self._route(cell[sd]),)
            elif sd in deduped:
                targets = tuple(sorted({self._route(v) for v in deduped[sd]}))
            else:
                targets = all_shards
            if req.approx:
                confidence = self._validate_approx(req)
                having = None if req.having is None else float(req.having)
                return _Plan(
                    op, targets, (("approx_dice", cell, deduped, having),),
                    cell=cell, predicates=predicates,
                    approx=True, confidence=confidence, having=having,
                )
            return _Plan(
                op, targets, (("dice", cell, deduped),), cell=cell,
                predicates=predicates,
            )
        raise ServeError(f"unknown op {op!r}; supported: {', '.join(self.OPS)}")

    # -- scatter-gather --------------------------------------------------

    def _scatter(
        self, plans: Sequence["_Plan"], *, op: str, explain: bool = False
    ) -> tuple[list, dict[int, ErrorInfo], list]:
        """Send every plan's items to its shards, gather, slot back.

        Returns ``(per-plan partials, failures, per-plan accounts)``:
        partials element ``i`` is a list of per-shard partial-result
        lists (one per item of plan ``i``), or ``None`` when any of the
        plan's shards failed; ``failures`` maps the shard id to its
        structured error; the accounts mirror the partials' shape with
        per-shard explain entries (empty unless ``explain``).

        When tracing is live, the scatter span's context rides to every
        shard and each reply's worker spans are folded back into the
        router's buffer — one request, one stitched trace tree.
        """
        per_shard_items: dict[int, list] = {}
        per_shard_slots: dict[int, list] = {}  # parallel (plan index) slots
        for index, plan in enumerate(plans):
            for shard in plan.targets:
                per_shard_items.setdefault(shard, []).extend(plan.items)
                per_shard_slots.setdefault(shard, []).extend(
                    (index,) * len(plan.items)
                )
        failures: dict[int, ErrorInfo] = {}
        seqs: dict[int, int] = {}
        start_wall = time.time()
        start = time.perf_counter()
        with _TRACER.span(
            "serve.scatter",
            op=op,
            shards=len(per_shard_items),
            requests=len(plans),
            version=self._router_version,
        ) as scatter_span:
            context = scatter_span.context()
            trace = context.to_json() if context is not None else None
            with self._scatter_lock:
                version = self._router_version
                for shard, items in per_shard_items.items():
                    worker = self._workers[shard]
                    try:
                        if trace is not None or explain:
                            seqs[shard] = worker.request(
                                "scatter", version, items, trace, explain
                            )
                        else:
                            seqs[shard] = worker.request("scatter", version, items)
                    except WorkerUnavailable as exc:
                        failures[shard] = self._shard_failure(shard, exc)
                    if OBS_STATE.enabled:
                        self._shard_series[shard][0].inc(len(items))
        deadline = start + self.timeout
        replies: dict[int, list] = {}
        shard_accounts: dict[int, list | None] = {}
        reply_at: dict[int, float] = {}
        for shard, seq in seqs.items():
            worker = self._workers[shard]
            remaining = max(deadline - time.perf_counter(), 0.0)
            try:
                reply = worker.collect(seq, timeout=remaining)
            except (WorkerTimeout, WorkerUnavailable, RemoteError) as exc:
                failures[shard] = self._shard_failure(shard, exc)
            else:
                if isinstance(reply, dict):  # traced/explained envelope
                    if reply.get("spans"):
                        _TRACER.fold(reply["spans"])
                    shard_accounts[shard] = reply.get("explain")
                    replies[shard] = reply["results"]
                else:
                    replies[shard] = reply
            reply_at[shard] = time.perf_counter() - start
            if OBS_STATE.enabled and shard not in failures:
                _TRACER.record_span(
                    "serve.gather",
                    start_wall=start_wall,
                    duration=reply_at[shard],
                    attributes={
                        "shard": shard,
                        "items": len(per_shard_items[shard]),
                    },
                )
        if OBS_STATE.enabled:
            _SCATTER_SECONDS.observe(time.perf_counter() - start)
            _SHARD_FANOUT.observe(len(per_shard_items))
            if reply_at:
                fastest = min(reply_at.values())
                for shard, at in reply_at.items():
                    self._shard_series[shard][1].set(at - fastest)
        # Slot each shard's replies back into per-plan partial lists.
        out: list = [
            [[] for _ in plan.items] if plan.targets else [] for plan in plans
        ]
        accounts: list = [
            [[] for _ in plan.items] if plan.targets else [] for plan in plans
        ]
        for shard, reply in replies.items():
            entries = shard_accounts.get(shard)
            cursors: dict[int, int] = {}
            for j, (slot, partial) in enumerate(
                zip(per_shard_slots[shard], reply)
            ):
                item_index = cursors.get(slot, 0)
                cursors[slot] = item_index + 1
                out[slot][item_index].append(partial)
                if entries is not None:
                    accounts[slot][item_index].append(dict(entries[j], shard=shard))
        for index, plan in enumerate(plans):
            if any(shard in failures for shard in plan.targets):
                out[index] = None
        return out, failures, accounts

    def _shard_failure(self, shard: int, exc: Exception) -> ErrorInfo:
        """Map one transport/remote failure to the structured taxonomy."""
        if isinstance(exc, WorkerTimeout):
            info = ErrorInfo(
                code=ErrorCode.SHARD_TIMEOUT,
                message=f"shard {shard} did not reply within {self.timeout:.3f}s",
                retryable=True,
                shard=shard,
            )
        elif isinstance(exc, WorkerUnavailable):
            info = ErrorInfo(
                code=ErrorCode.SHARD_UNAVAILABLE,
                message=f"shard {shard} is unavailable: {exc}",
                retryable=True,
                shard=shard,
            )
        elif isinstance(exc, RemoteError) and exc.info is not None:
            parsed = ErrorInfo.from_json(exc.info)
            info = ErrorInfo(
                code=parsed.code,
                message=parsed.message,
                retryable=parsed.retryable,
                shard=parsed.shard if parsed.shard is not None else shard,
            )
        else:
            info = ErrorInfo(
                code=ErrorCode.INTERNAL,
                message=f"shard {shard} failed: {exc}",
                shard=shard,
            )
        if OBS_STATE.enabled:
            _SHARD_ERRORS.inc(shard=str(shard), code=info.code)
            _SHARDS_LIVE.set(
                sum(1 for w in self._workers if w.alive), router=self._name
            )
        return info

    # -- merging ---------------------------------------------------------

    def _merge(self, snap: "_RouterSnap", plan: "_Plan", partials: list) -> dict:
        """Fold per-shard partial states into one engine-shaped response."""
        op = plan.op
        agg = self._aggregator
        version = snap.version
        if op in ("point", "rollup"):
            state = agg.merge_many(partials[0])
            value = None if state is None else agg.finalize(state)
            if op == "rollup":
                return {
                    "op": op, "version": version, "dim": plan.dim,
                    "cell": list(plan.cell), "value": value,
                }
            return {
                "op": op, "version": version,
                "cell": list(plan.cell), "value": value,
            }
        if op == "drilldown":
            return {
                "op": op,
                "version": version,
                "dim": plan.dim,
                "children": self._merge_children(
                    plan.cell, plan.dim, partials[0], agg
                ),
            }
        if op == "slice":
            children: list = []
            for dim, item_partials in zip(plan.free_dims, partials):
                children.extend(
                    self._merge_children(plan.cell, dim, item_partials, agg)
                )
            return {"op": op, "version": version, "children": children}
        if op == "dice":
            response = {
                "op": op,
                "version": version,
                "predicates": {
                    str(d): v for d, v in sorted(plan.predicates.items())
                },
                "cell": list(plan.cell),
            }
            if plan.approx:
                # Per-shard estimators are independent (disjoint row
                # partitions, private samples): estimates and variances
                # sum, and the interval is computed exactly once here.
                answer = finalize_partials(agg, partials[0], plan.confidence)
                if OBS_STATE.enabled:
                    _APPROX_REQUESTS.inc()
                    _APPROX_BOUND_WIDTH.observe(answer.bound_width)
                response["value"] = answer.estimate
                response["approx"] = answer.to_block()
                if any(p.get("estimator") == "exact" for p in partials[0]):
                    response["approx"]["fallback"] = True
                return response
            state = agg.merge_many(partials[0])
            response["value"] = None if state is None else agg.finalize(state)
            return response
        raise ServeError(f"unknown op {op!r}")  # pragma: no cover

    @staticmethod
    def _merge_children(cell: Cell, dim: int, shard_children: list, agg) -> list:
        """Union per-shard (value, state) children, merged and sorted."""
        by_value: dict[int, tuple] = {}
        for children in shard_children:
            for value, state in children:
                present = by_value.get(value)
                by_value[value] = (
                    state if present is None else agg.merge(present, state)
                )
        out = []
        for value in sorted(by_value):
            child = list(cell)
            child[dim] = value
            out.append({"cell": child, "value": agg.finalize(by_value[value])})
        return out

    # -- write path ------------------------------------------------------

    def append(self, rows: Sequence[Sequence[int]], measures=None) -> int:
        """Two-phase versioned append across every shard.

        Rows are validated once, routed by the shard dimension, then all
        shards ``prepare`` the target version and, only once every
        prepare succeeded, ``commit`` it.  The scatter lock is held for
        the whole swap, so no read's sub-requests can interleave with it
        — the FIFO pipes then guarantee every shard answers each read at
        the read's tagged version.  A failed prepare aborts the target
        everywhere (no shard moves); a shard that fails its *commit* is
        marked unavailable rather than left silently behind.
        """
        clean_rows, clean_measures = validate_rows(
            rows, measures, self._schema.n_dims, len(self._schema.measure_names)
        )
        with _TRACER.span("serve.append", rows=len(clean_rows), sharded=True):
            with self._scatter_lock:
                target = self._router_version + 1
                per_rows: list[list] = [[] for _ in range(self.n_shards)]
                per_meas: list[list] = [[] for _ in range(self.n_shards)]
                for row, meas in zip(clean_rows, clean_measures):
                    shard = self._route(row[self.shard_dim])
                    per_rows[shard].append(row)
                    per_meas[shard].append(meas)
                self._two_phase_swap(target, per_rows, per_meas)
                for row in clean_rows:
                    for d, v in enumerate(row):
                        if v > self._max_codes[d]:
                            self._max_codes[d] = v
                self._router_version = target
                self.cache.invalidate_all()
        return target

    def _two_phase_swap(
        self, target: int, per_rows: list[list], per_meas: list[list]
    ) -> None:
        # The phase flag backs readiness(): while a swap is in flight,
        # reads queue behind the scatter lock, so /readyz can steer a
        # load balancer away instead of letting requests pile up.
        self._refresh_phase = "prepare"
        try:
            seqs = {}
            for shard, worker in enumerate(self._workers):
                try:
                    seqs[shard] = worker.request(
                        "prepare", target, per_rows[shard], per_meas[shard]
                    )
                except WorkerUnavailable as exc:
                    self._abort_all(target, exclude=())
                    raise ServeError.from_info(self._shard_failure(shard, exc))
            for shard, seq in seqs.items():
                try:
                    self._workers[shard].collect(seq, timeout=self.append_timeout)
                except (WorkerTimeout, WorkerUnavailable, RemoteError) as exc:
                    info = self._shard_failure(shard, exc)
                    self._abort_all(target, exclude=(shard,))
                    raise ServeError.from_info(info)
            self._refresh_phase = "commit"
            commit_seqs = {}
            for shard, worker in enumerate(self._workers):
                try:
                    commit_seqs[shard] = worker.request("commit", target)
                except WorkerUnavailable as exc:
                    self._shard_failure(shard, exc)
            for shard, seq in commit_seqs.items():
                try:
                    self._workers[shard].collect(seq, timeout=self.append_timeout)
                    if OBS_STATE.enabled:
                        self._shard_series[shard][2].set(target)
                except (WorkerTimeout, WorkerUnavailable, RemoteError) as exc:
                    # Past the point of no return: peers committed.  The
                    # shard is marked failed (subsequent scatters to it
                    # surface structured errors) instead of serving a torn
                    # version silently.
                    self._shard_failure(shard, exc)
                    self._workers[shard]._mark_dead(f"commit {target} failed: {exc}")
        finally:
            self._refresh_phase = None

    def _abort_all(self, target: int, exclude: tuple = ()) -> None:
        for shard, worker in enumerate(self._workers):
            if shard in exclude or not worker.alive:
                continue
            try:
                worker.call("abort", target, timeout=self.append_timeout)
            except (WorkerTimeout, WorkerUnavailable, RemoteError):
                pass

    def append_table(self, table: BaseTable) -> int:
        return self.append(table.dim_rows(), table.measure_rows())

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        """The merged ``/stats`` snapshot: router plus per-shard detail."""
        shard_stats: list[dict] = []
        for shard, worker in enumerate(self._workers):
            if not worker.alive:
                shard_stats.append({"shard": shard, "alive": False})
                continue
            try:
                stats = worker.call("stats", timeout=self.timeout)
            except (WorkerTimeout, WorkerUnavailable, RemoteError) as exc:
                self._shard_failure(shard, exc)
                shard_stats.append({"shard": shard, "alive": False})
                continue
            stats["alive"] = True
            shard_stats.append(stats)
        cache = self.cache.stats()
        schema = self._current_schema()
        live = [s for s in shard_stats if s.get("alive")]
        return {
            "version": self._router_version,
            "protocol": PROTOCOL_VERSION,
            "sharded": True,
            "n_shards": self.n_shards,
            "shard_dim": self.shard_dim,
            "shards_live": len(live),
            "n_dims": schema.n_dims,
            "n_measures": len(schema.measure_names),
            "dimension_names": list(schema.dimension_names),
            "cardinalities": list(schema.cardinalities),
            "n_ranges": sum(s.get("n_ranges", 0) for s in live),
            "rows_absorbed": sum(s.get("rows_absorbed", 0) for s in live),
            "trie_nodes": sum(s.get("trie_nodes", 0) for s in live),
            "min_support": self._min_support,
            "shards": shard_stats,
            "cache": {
                "capacity": cache.capacity,
                "size": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "hit_rate": cache.hit_rate,
            },
            "slow_log": {
                "threshold_s": self.slow_log.threshold,
                "seen": self.slow_log.seen,
                "kept": len(self.slow_log.entries()),
            },
        }

    def federated_metrics(self) -> MetricRegistry:
        """A fresh registry holding the whole fleet's series.

        Built per scrape, never accumulated: the router's own registry
        and every live worker's snapshot fold into a new registry with
        an identifying ``shard`` label (``shard="router"`` for the
        router's series, ``shard="0"``… for the workers), so counters
        sum per shard, gauges stay distinguishable, and histograms
        bucket-merge per shard.  Families that already carry a ``shard``
        label — the router's ``repro_shard_*`` — merge without growing a
        second one.  An unreachable worker degrades to its series being
        absent this scrape (and the usual shard-failure bookkeeping),
        not a scrape error.
        """
        fleet = MetricRegistry()
        fleet.merge_labeled(get_registry().to_dict(), "shard", "router")
        for shard, worker in enumerate(self._workers):
            if not worker.alive:
                continue
            try:
                snapshot = worker.call("metrics_snapshot", timeout=self.timeout)
            except (WorkerTimeout, WorkerUnavailable, RemoteError) as exc:
                self._shard_failure(shard, exc)
                continue
            fleet.merge_labeled(snapshot, "shard", str(shard))
        return fleet

    def readiness(self) -> dict:
        """The router's serving state, the body behind ``GET /readyz``.

        Liveness (is the process answering at all) stays ``/healthz``;
        this distinguishes *can it serve*: any dead shard degrades the
        fleet (``degraded`` — partial answers only), an in-flight
        two-phase refresh queues reads behind the scatter lock
        (``refresh-prepare`` / ``refresh-commit``), and otherwise the
        fleet is ``serving``.
        """
        dead = [k for k, w in enumerate(self._workers) if not w.alive]
        phase = self._refresh_phase
        out = {
            "sharded": True,
            "n_shards": self.n_shards,
            "shards_live": self.n_shards - len(dead),
            "version": self._router_version,
        }
        if dead:
            return dict(out, ready=False, state="degraded", dead_shards=dead)
        if phase is not None:
            return dict(out, ready=False, state=f"refresh-{phase}")
        return dict(out, ready=True, state="serving")

    def point(self, cell: Sequence[int | None]) -> dict | None:
        """Finalized aggregates of one cell, None when the cell is empty."""
        return self.execute(QueryRequest(op="point", cell=list(cell)))["value"]

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop every shard worker (idempotent)."""
        for worker in self._workers:
            try:
                worker.stop(timeout=5.0)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        _SHARDS_LIVE.set(0, router=self._name)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        live = sum(1 for w in self._workers if w.alive)
        return (
            f"ShardRouter(v{self._router_version}, {live}/{self.n_shards} shards "
            f"live, shard_dim={self.shard_dim})"
        )


class _RouterSnap:
    """The router's analogue of :class:`~repro.serve.engine.CubeVersion`.

    Carries only what the shared validation helpers need (``version``,
    ``schema``); the actual cube state lives in the workers.
    """

    __slots__ = ("version", "schema")

    def __init__(self, version: int, schema: Schema) -> None:
        self.version = version
        self.schema = schema


class _Plan:
    """One validated request, routed: scatter items plus response shape."""

    __slots__ = (
        "op", "targets", "items", "cell", "dim", "predicates", "free_dims",
        "approx", "confidence", "having",
    )

    def __init__(
        self,
        op: str,
        targets: tuple[int, ...],
        items: tuple,
        *,
        cell: Cell,
        dim: int | None = None,
        predicates: dict | None = None,
        free_dims: tuple[int, ...] = (),
        approx: bool = False,
        confidence: float | None = None,
        having: float | None = None,
    ) -> None:
        self.op = op
        self.targets = targets
        self.items = items
        self.cell = cell
        self.dim = dim
        self.predicates = predicates
        self.free_dims = free_dims
        self.approx = approx
        self.confidence = confidence
        self.having = having


__all__ = ["ShardEngine", "ShardRouter", "_build_shard_engine"]
