"""A latency-instrumented workload driver for the serving layer.

The driver models the traffic a resident cube actually sees: a fixed
population of distinct OLAP queries (the *pool*) hit with Zipf-skewed
popularity — a hot head that the result cache should absorb and a long
tail that reaches the index — issued by N concurrent clients, optionally
while a writer appends fact batches and forces cube refreshes.

Concurrency reuses the executor abstraction from :mod:`repro.exec`: each
client is one task on a :class:`~repro.exec.executors.ThreadExecutor`
(serving clients are I/O-ish and share the engine, so threads are the
right backend).  Every client records its latencies into its own
:class:`~repro.metrics.histogram.LatencyHistogram`; the driver merges
them into one report with throughput, p50/p95/p99 and the observed cache
hit rate (counted from the ``cached`` flag on each response, so it works
over HTTP as well as in-process).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.data.synthetic import zipf_probabilities
from repro.exec.executors import Executor, ThreadExecutor
from repro.metrics.histogram import LatencyHistogram
from repro.obs import get_registry
from repro.serve.client import ServingClient
from repro.serve.engine import ServeError
from repro.serve.protocol import QueryRequest

#: Per-operation latency, folded from every client's private histograms
#: after a run (clients record lock-free; the registry sees one merge per
#: op per run, so driver concurrency never contends on the metric lock).
_WORKLOAD_SECONDS = get_registry().histogram(
    "repro_workload_latency_seconds",
    "Workload-driver request latency in seconds, by operation.",
    ("op",),
)


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the query operations (normalized at use)."""

    point: float = 0.70
    rollup: float = 0.15
    drilldown: float = 0.10
    slice: float = 0.05
    dice: float = 0.0

    def normalized(self) -> dict[str, float]:
        weights = {
            "point": self.point,
            "rollup": self.rollup,
            "drilldown": self.drilldown,
            "slice": self.slice,
            "dice": self.dice,
        }
        total = sum(weights.values())
        if total <= 0 or any(w < 0 for w in weights.values()):
            raise ValueError(f"mix weights must be non-negative and sum > 0: {weights}")
        return {op: w / total for op, w in weights.items()}

    @classmethod
    def parse(cls, text: str) -> "WorkloadMix":
        """``"point=0.7,rollup=0.2,slice=0.1"`` → a mix (absent ops are 0)."""
        weights = dict.fromkeys(("point", "rollup", "drilldown", "slice", "dice"), 0.0)
        for item in text.split(","):
            op, _, value = item.partition("=")
            op = op.strip()
            if op not in weights:
                raise ValueError(f"unknown op {op!r} in mix {text!r}")
            weights[op] = float(value)
        return cls(**weights)


@dataclass
class WorkloadReport:
    """Everything one driver run measured."""

    clients: int
    requests_per_client: int
    total_requests: int
    wall_seconds: float
    latency: LatencyHistogram
    op_counts: dict[str, int]
    cached_responses: int
    errors: int
    appends: int
    start_version: int
    end_version: int
    pool_size: int
    theta: float
    batch_size: int = 1
    engine_stats: dict = field(default_factory=dict)
    op_latency: dict[str, LatencyHistogram] = field(default_factory=dict)
    #: The per-request latency SLO target in milliseconds (None = no SLO).
    slo_p99_ms: float | None = None
    #: Requests that finished over the SLO target (errors count as misses).
    slo_misses: int = 0
    #: Allowed miss fraction — the error budget (0.01 = 1% of requests
    #: may exceed the target before the budget is spent).
    slo_budget: float = 0.01
    #: Requests issued through the approximate tier (``approx=True``
    #: dice) and how many of them missed the SLO target; their
    #: latencies sit under the ``dice_approx`` row in ``op_latency``.
    approx_requests: int = 0
    approx_slo_misses: int = 0

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        return self.total_requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of responses served from the result cache."""
        return self.cached_responses / self.total_requests if self.total_requests else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests that met the SLO target (1.0 with no SLO)."""
        if self.slo_p99_ms is None or not self.total_requests:
            return 1.0
        return 1.0 - self.slo_misses / self.total_requests

    @property
    def approx_slo_attainment(self) -> float:
        """SLO attainment over just the approximate-tier requests."""
        if self.slo_p99_ms is None or not self.approx_requests:
            return 1.0
        return 1.0 - self.approx_slo_misses / self.approx_requests

    @property
    def exact_slo_attainment(self) -> float:
        """SLO attainment over the exact (non-approx) requests."""
        if self.slo_p99_ms is None:
            return 1.0
        exact = self.total_requests - self.approx_requests
        if exact <= 0:
            return 1.0
        return 1.0 - (self.slo_misses - self.approx_slo_misses) / exact

    @property
    def slo_burn(self) -> float:
        """Error-budget burn: observed miss fraction over the allowed one.

        1.0 means the run spent exactly its budget; above 1.0 the SLO is
        violated (a 2.0 burn spent the budget twice over), below 1.0
        there is headroom.  0.0 with no SLO configured.
        """
        if self.slo_p99_ms is None or not self.total_requests or not self.slo_budget:
            return 0.0
        return (self.slo_misses / self.total_requests) / self.slo_budget

    def format(self) -> str:
        """The human-readable report the CLI prints."""
        ms = {k: v * 1000 for k, v in self.latency.summary().items()}
        mix = "  ".join(f"{op} {n}" for op, n in sorted(self.op_counts.items()))
        lines = [
            f"workload: {self.clients} clients x {self.requests_per_client} requests "
            f"= {self.total_requests} total "
            f"({self.pool_size} distinct queries, zipf theta {self.theta:g}"
            + (f", batches of {self.batch_size}" if self.batch_size > 1 else "")
            + ")",
            f"ops: {mix}",
            f"throughput: {self.throughput:,.0f} req/s over {self.wall_seconds:.3f}s wall",
            f"latency: p50 {ms['p50_s']:.3f}ms  p95 {ms['p95_s']:.3f}ms  "
            f"p99 {ms['p99_s']:.3f}ms  max {ms['max_s']:.3f}ms  mean {ms['mean_s']:.3f}ms",
        ]
        for op in sorted(self.op_latency):
            h = self.op_latency[op]
            lines.append(
                f"  {op:>9}: p50 {h.percentile(50) * 1000:.3f}ms  "
                f"p95 {h.percentile(95) * 1000:.3f}ms  "
                f"p99 {h.percentile(99) * 1000:.3f}ms  ({h.count} requests)"
            )
        lines.append(
            f"cache: {100 * self.hit_rate:.1f}% hit rate "
            f"({self.cached_responses} of {self.total_requests} responses cached)"
        )
        if self.slo_p99_ms is not None:
            burn = self.slo_burn
            verdict = "met" if burn <= 1.0 else "VIOLATED"
            lines.append(
                f"slo: target p99 <= {self.slo_p99_ms:g}ms  "
                f"observed p99 {ms['p99_s']:.3f}ms  "
                f"attainment {100 * self.slo_attainment:.2f}% "
                f"({self.slo_misses} of {self.total_requests} over target)"
            )
            lines.append(
                f"     error budget {100 * self.slo_budget:g}%: "
                f"burn {burn:.2f}x ({verdict})"
            )
            if self.approx_requests:
                lines.append(
                    f"     attainment by tier: exact "
                    f"{100 * self.exact_slo_attainment:.2f}%  approx "
                    f"{100 * self.approx_slo_attainment:.2f}% "
                    f"({self.approx_requests} approx requests)"
                )
        if self.appends:
            lines.append(
                f"writes: {self.appends} append batches "
                f"(cube version {self.start_version} -> {self.end_version})"
            )
        if self.errors:
            lines.append(f"errors: {self.errors}")
        return "\n".join(lines)


class WorkloadDriver:
    """Generate a skewed query mix and drive N concurrent clients.

    ``client_factory`` builds one :class:`~repro.serve.client.ServingClient`
    per concurrent client (plus one probe the driver uses for metadata),
    so the same driver measures the in-process and the HTTP transports.
    """

    def __init__(
        self,
        client_factory: Callable[[], ServingClient],
        *,
        mix: WorkloadMix | None = None,
        theta: float = 1.1,
        pool_size: int = 256,
        max_bound_dims: int = 3,
        seed: int = 0,
        append_batches: int = 0,
        append_rows: int = 32,
        batch_size: int = 1,
        bind_dim: int | None = None,
        cold_start: int = 0,
        cold_start_factory: Callable[[], object] | None = None,
        slo_p99_ms: float | None = None,
        slo_budget: float = 0.01,
        approx_fraction: float = 0.0,
        approx_confidence: float = 0.95,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if cold_start and cold_start_factory is None:
            raise ValueError("cold_start requires a cold_start_factory")
        self.client_factory = client_factory
        self.mix = mix or WorkloadMix()
        if approx_fraction > 0 and self.mix.normalized()["dice"] == 0:
            # Approx traffic rides on dice queries; a mix without any
            # would silently turn --approx-fraction into a no-op, so
            # fold a default dice share in (scaled so the explicit
            # weights keep their relative proportions).
            self.mix = replace(self.mix, dice=0.2 * sum(
                v for k, v in vars(self.mix).items() if k != "dice"
            ))
        self.theta = theta
        self.pool_size = pool_size
        self.max_bound_dims = max_bound_dims
        self.seed = seed
        self.append_batches = append_batches
        self.append_rows = append_rows
        #: When set, every pooled query binds this dimension to a value
        #: — the shard-key-bound traffic a value-routed sharded tier sees
        #: (each request routes to exactly one shard).
        self.bind_dim = bind_dim
        #: Requests per ``query_batch`` call; 1 keeps the classic
        #: request-at-a-time loop.  Batched clients amortize transport
        #: and snapshot overhead exactly like ``POST /query/batch``.
        self.batch_size = batch_size
        #: Restart-and-measure rounds: each one builds a *fresh* engine
        #: through ``cold_start_factory`` and times construction plus the
        #: first (apex point) query — the restart latency a deploy pays.
        #: Reported as the synthetic ``cold_start`` op in the per-op
        #: percentile block (see ``repro workload --cold-start``).
        self.cold_start = cold_start
        self.cold_start_factory = cold_start_factory
        #: Per-request latency SLO: requests over this target count as
        #: misses against an error budget of ``slo_budget`` (fraction of
        #: requests allowed over target); the report shows attainment
        #: and budget burn.  Errors always count as misses — a failed
        #: request met no latency target.
        if slo_p99_ms is not None and slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be positive")
        if not 0 < slo_budget <= 1:
            raise ValueError("slo_budget must be in (0, 1]")
        self.slo_p99_ms = slo_p99_ms
        self.slo_budget = slo_budget
        #: Fraction of pooled dice queries issued through the approximate
        #: tier (``approx=True`` with ``approx_confidence``).  Their
        #: latencies land under the synthetic ``dice_approx`` op so the
        #: report shows the exact and approximate regimes side by side,
        #: and their SLO misses are counted separately.
        if not 0 <= approx_fraction <= 1:
            raise ValueError("approx_fraction must be in [0, 1]")
        if not 0 < approx_confidence < 1:
            raise ValueError("approx_confidence must be in (0, 1)")
        self.approx_fraction = approx_fraction
        self.approx_confidence = approx_confidence

    # -- request generation ---------------------------------------------

    def _build_pool(
        self, stats: dict, rng: np.random.Generator
    ) -> list[QueryRequest]:
        """``pool_size`` distinct typed requests matched to the cube's shape."""
        n_dims = stats["n_dims"]
        cards = [max(int(c), 1) for c in stats["cardinalities"]]
        weights = self.mix.normalized()
        ops = list(weights)
        probs = np.array([weights[op] for op in ops])
        pool: list[QueryRequest] = []
        max_bound = min(self.max_bound_dims, n_dims)
        pinned = self.bind_dim
        for _ in range(self.pool_size):
            op = ops[int(rng.choice(len(ops), p=probs))]
            if op == "slice":
                # Leave exactly one dimension free so the slice stays
                # one-level (and its response size bounded).
                n_bound = max(n_dims - 1, 0)
            elif op == "rollup":
                n_bound = int(rng.integers(1, max_bound + 1))
            elif op == "drilldown":
                n_bound = int(rng.integers(0, max(max_bound, 1)))
            else:
                n_bound = int(rng.integers(1, max_bound + 1))
            bound = [int(d) for d in
                     rng.choice(n_dims, size=min(n_bound, n_dims), replace=False)]
            if pinned is not None and op != "drilldown" and pinned not in bound:
                # The shard-key-bound regime: every query that *can* bind
                # the shard dimension does, so it routes to one shard.
                bound = [pinned, *[d for d in bound if d != pinned]]
            cell: list[int | None] = [None] * n_dims
            for d in bound:
                cell[d] = int(rng.integers(0, cards[d]))
            dim: int | None = None
            predicates: dict | None = None
            if op == "rollup":
                # Never roll the pinned shard key away — the whole point
                # of the bound regime is single-shard routing.
                choices = [d for d in bound if d != pinned]
                if not choices:
                    others = [d for d in range(n_dims) if d != pinned]
                    if others:  # bind a second dim just to roll it up
                        extra = int(rng.choice(others))
                        cell[extra] = int(rng.integers(0, cards[extra]))
                        choices = [extra]
                    else:  # a 1-dim cube: there is nothing else to roll
                        choices = bound
                dim = int(rng.choice(choices))
            elif op == "drilldown":
                if pinned is not None:
                    cell[pinned] = int(rng.integers(0, cards[pinned]))
                free = [d for d in range(n_dims) if cell[d] is None]
                dim = int(rng.choice(free))
            elif op == "dice":
                free = [d for d in range(n_dims) if cell[d] is None]
                if not free:  # all dims bound: free one so the dice has a target
                    freed = next((d for d in range(n_dims) if d != pinned), None)
                    if freed is None:
                        op = "point"  # 1-dim cube with a pinned key: degrade
                    else:
                        cell[freed] = None
                        free = [freed]
            if op == "dice":
                n_pred = min(len(free), int(rng.integers(1, 3)))
                pred_dims = rng.choice(free, size=n_pred, replace=False)
                predicates = {
                    str(int(d)): sorted(
                        int(v)
                        for v in rng.choice(
                            cards[int(d)],
                            size=min(cards[int(d)], int(rng.integers(2, 5))),
                            replace=False,
                        )
                    )
                    for d in pred_dims
                }
            approx = (
                op == "dice"
                and self.approx_fraction > 0
                and rng.random() < self.approx_fraction
            )
            pool.append(
                QueryRequest(
                    op=op,
                    cell=cell,
                    dim=dim,
                    predicates=predicates,
                    approx=True if approx else None,
                    confidence=self.approx_confidence if approx else None,
                )
            )
        return pool

    @staticmethod
    def _op_key(request: QueryRequest) -> str:
        """The latency-bucket key: approx dice get their own regime row."""
        return "dice_approx" if request.approx else request.op

    def _client_run(self, task: tuple[list[QueryRequest], np.ndarray]) -> dict:
        """One client's life: replay its request sequence, record latencies.

        Latencies go into one private histogram *per operation type*, so
        the merged report can show that a slice query and a cached point
        lookup live in different regimes instead of one blended p99.
        """
        pool, sequence = task
        histograms: dict[str, LatencyHistogram] = {}
        op_counts: dict[str, int] = {}
        cached = 0
        errors = 0
        slo_misses = 0
        approx_requests = 0
        approx_slo_misses = 0
        slo_s = None if self.slo_p99_ms is None else self.slo_p99_ms / 1000.0
        if self.batch_size > 1:
            return self._client_run_batched(pool, sequence)
        with self.client_factory() as client:
            for index in sequence:
                request = pool[int(index)]
                op = self._op_key(request)
                if request.approx:
                    approx_requests += 1
                start = time.perf_counter()
                try:
                    response = client.query(request)
                except ServeError:
                    errors += 1
                    if slo_s is not None:  # a failed request met no target
                        slo_misses += 1
                        if request.approx:
                            approx_slo_misses += 1
                    continue
                elapsed = time.perf_counter() - start
                if slo_s is not None and elapsed > slo_s:
                    slo_misses += 1
                    if request.approx:
                        approx_slo_misses += 1
                histogram = histograms.get(op)
                if histogram is None:
                    histogram = histograms[op] = LatencyHistogram()
                histogram.record(elapsed)
                op_counts[op] = op_counts.get(op, 0) + 1
                if response.get("cached"):
                    cached += 1
        return {
            "histograms": histograms,
            "op_counts": op_counts,
            "cached": cached,
            "errors": errors,
            "slo_misses": slo_misses,
            "approx_requests": approx_requests,
            "approx_slo_misses": approx_slo_misses,
        }

    def _client_run_batched(
        self, pool: list[QueryRequest], sequence: np.ndarray
    ) -> dict:
        """The batched client life: chunk the sequence into ``query_batch`` calls.

        Latency is recorded per *batch* under the synthetic ``"batch"``
        op (one round trip per entry); op counts, cache hits and errors
        are still counted per individual request from the positional
        responses, so throughput and hit-rate stay comparable with the
        request-at-a-time mode.
        """
        histogram = LatencyHistogram()
        op_counts: dict[str, int] = {}
        cached = 0
        errors = 0
        slo_misses = 0
        slo_s = None if self.slo_p99_ms is None else self.slo_p99_ms / 1000.0
        size = self.batch_size
        with self.client_factory() as client:
            for start in range(0, len(sequence), size):
                chunk = [pool[int(i)] for i in sequence[start : start + size]]
                begin = time.perf_counter()
                try:
                    responses = client.query_batch(chunk)
                except ServeError:
                    errors += len(chunk)
                    if slo_s is not None:
                        slo_misses += len(chunk)
                    continue
                elapsed = time.perf_counter() - begin
                if slo_s is not None and elapsed > slo_s:
                    # The batch is the unit the caller waits on: a slow
                    # round trip misses the target for every request in it.
                    slo_misses += len(chunk)
                histogram.record(elapsed)
                for request, response in zip(chunk, responses):
                    if "error" in response:
                        errors += 1
                        continue
                    op = self._op_key(request)
                    op_counts[op] = op_counts.get(op, 0) + 1
                    if response.get("cached"):
                        cached += 1
        return {
            "histograms": {"batch": histogram},
            "op_counts": op_counts,
            "cached": cached,
            "errors": errors,
            "slo_misses": slo_misses,
        }

    def _writer_run(self, stats: dict, stop: threading.Event) -> int:
        """Append ``append_batches`` batches, spaced across the read run."""
        rng = np.random.default_rng(self.seed + 104729)
        n_dims = stats["n_dims"]
        cards = [max(int(c), 1) for c in stats["cardinalities"]]
        n_measures = stats["n_measures"]
        done = 0
        with self.client_factory() as client:
            for _ in range(self.append_batches):
                rows = [
                    [int(rng.integers(0, cards[d])) for d in range(n_dims)]
                    for _ in range(self.append_rows)
                ]
                measures = (
                    [
                        [float(v) for v in rng.uniform(1.0, 100.0, size=n_measures)]
                        for _ in range(self.append_rows)
                    ]
                    if n_measures
                    else None
                )
                client.append(rows, measures)
                done += 1
                if stop.wait(0.005):  # yield to readers between batches
                    break
        return done

    def _cold_start_run(self) -> LatencyHistogram:
        """Time ``cold_start`` engine restarts to first answered query.

        Each round pays the full restart path — engine construction (a
        cube rebuild, or a snapshot mmap; whatever the factory does) plus
        the apex point query that forces the first real read — then tears
        the engine down.  One histogram entry per round.
        """
        from repro.serve.client import InProcessClient

        histogram = LatencyHistogram()
        for _ in range(self.cold_start):
            start = time.perf_counter()
            engine = self.cold_start_factory()
            try:
                with InProcessClient(engine) as client:
                    n_dims = client.stats()["n_dims"]
                    client.query(QueryRequest(op="point", cell=[None] * n_dims))
                    histogram.record(time.perf_counter() - start)
            finally:
                if hasattr(engine, "close"):
                    engine.close()
        return histogram

    # -- the run ---------------------------------------------------------

    def run(
        self,
        *,
        clients: int = 4,
        requests_per_client: int = 200,
        executor: Executor | None = None,
    ) -> WorkloadReport:
        """Drive the workload and return the merged report."""
        if clients < 1 or requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be positive")
        probe = self.client_factory()
        try:
            stats = probe.stats()
            rng = np.random.default_rng(self.seed)
            pool = self._build_pool(stats, rng)
            popularity = zipf_probabilities(len(pool), self.theta)
            tasks = [
                (
                    pool,
                    np.random.default_rng(self.seed + 1 + i).choice(
                        len(pool), size=requests_per_client, p=popularity
                    ),
                )
                for i in range(clients)
            ]
            stop = threading.Event()
            appends_done = 0
            writer: threading.Thread | None = None
            writer_result: list[int] = []
            if self.append_batches:
                writer = threading.Thread(
                    target=lambda: writer_result.append(self._writer_run(stats, stop)),
                    name="workload-writer",
                    daemon=True,
                )
            own_executor = executor is None
            pool_executor = executor or ThreadExecutor(workers=clients)
            start_version = stats["version"]
            start = time.perf_counter()
            try:
                if writer is not None:
                    writer.start()
                results = pool_executor.map(self._client_run, tasks)
            finally:
                stop.set()
                if writer is not None:
                    writer.join(timeout=30)
                    appends_done = writer_result[0] if writer_result else 0
                if own_executor:
                    pool_executor.close()
            wall = time.perf_counter() - start
            end_stats = probe.stats()
        finally:
            probe.close()

        latency = LatencyHistogram()
        op_latency: dict[str, LatencyHistogram] = {}
        op_counts: dict[str, int] = {}
        cached = 0
        errors = 0
        slo_misses = 0
        approx_requests = 0
        approx_slo_misses = 0
        for result in results:
            for op, histogram in result["histograms"].items():
                latency.merge(histogram)
                merged = op_latency.get(op)
                if merged is None:
                    merged = op_latency[op] = LatencyHistogram()
                merged.merge(histogram)
            for op, n in result["op_counts"].items():
                op_counts[op] = op_counts.get(op, 0) + n
            cached += result["cached"]
            errors += result["errors"]
            slo_misses += result.get("slo_misses", 0)
            approx_requests += result.get("approx_requests", 0)
            approx_slo_misses += result.get("approx_slo_misses", 0)
        if self.cold_start:
            # After the concurrent run so restart rounds never contend
            # with it; counted in op_latency (the per-op percentile
            # block) but not in throughput — restarts are not requests.
            op_latency["cold_start"] = self._cold_start_run()
        for op, histogram in op_latency.items():
            _WORKLOAD_SECONDS.merge(histogram, op=op)
        return WorkloadReport(
            clients=clients,
            requests_per_client=requests_per_client,
            total_requests=clients * requests_per_client,
            wall_seconds=wall,
            latency=latency,
            op_counts=op_counts,
            cached_responses=cached,
            errors=errors,
            appends=appends_done,
            start_version=start_version,
            end_version=end_stats["version"],
            pool_size=len(pool),
            theta=self.theta,
            batch_size=self.batch_size,
            engine_stats=end_stats,
            op_latency=op_latency,
            slo_p99_ms=self.slo_p99_ms,
            slo_misses=slo_misses,
            slo_budget=self.slo_budget,
            approx_requests=approx_requests,
            approx_slo_misses=approx_slo_misses,
        )
