"""The serving layer's one wire protocol: typed requests, responses, errors.

Before this module, the serving surface was a collection of ad-hoc
JSON-shaped dicts grown independently in :mod:`repro.serve.engine`,
:mod:`repro.serve.http` and :mod:`repro.serve.client` — three spellings
of the same schema, plus two different error idioms (a ``ServeError``
string on the query path, bare ``{"error": str}`` dicts for 404/500).
Everything now speaks the types defined here:

* :class:`QueryRequest` — one read request (``point`` / ``rollup`` /
  ``drilldown`` / ``slice`` / ``dice``), with the cell-or-bindings
  spellings and the optional sharding ``version`` tag;
* :class:`QueryResponse` — one read response, shaped exactly like the
  historical wire dicts (``to_json`` round-trips byte-for-byte);
* :class:`BatchResponse` — the ``POST /query/batch`` envelope;
* :class:`ErrorInfo` — the single error taxonomy: a stable ``code``, a
  human ``message``, a ``retryable`` hint, and the ``shard`` id when a
  scatter-gather failure is attributable to one shard.  The HTTP layer
  maps codes to status uniformly through :data:`HTTP_STATUS`.

``PROTOCOL_VERSION`` stamps the batch envelope and ``/healthz``; a
request carrying an unsupported ``protocol`` field is rejected up front
so old servers fail loudly instead of misreading new fields.

Dict-shaped callers keep working: every entry point accepts a plain
mapping and coerces it through :func:`coerce_request`, emitting one
:class:`DeprecationWarning` per process (the JSON *wire* format is
decoded through :meth:`QueryRequest.from_json`, which is the sanctioned
path and never warns).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.obs.tracing import TraceContext

#: Version of the serving wire protocol.  Bump on incompatible changes;
#: requests may pin a version via their ``protocol`` field.
PROTOCOL_VERSION = 1

#: The read operations the engine understands.
OPS = ("point", "rollup", "drilldown", "slice", "dice")


class ErrorCode:
    """The closed set of error codes every serve-layer failure maps to."""

    #: Malformed or unanswerable request (bad op, wrong arity, ...).
    BAD_REQUEST = "bad_request"
    #: Unknown endpoint / named resource.
    NOT_FOUND = "not_found"
    #: Request body beyond the configured size cap.
    TOO_LARGE = "too_large"
    #: Request pinned a protocol version this server does not speak.
    UNSUPPORTED_PROTOCOL = "unsupported_protocol"
    #: A shard answered from a different cube version than the scatter
    #: targeted — the router refuses to merge torn versions.
    VERSION_CONFLICT = "version_conflict"
    #: A shard process is gone (died, or was shut down).
    SHARD_UNAVAILABLE = "shard_unavailable"
    #: A shard did not answer within the router's timeout.
    SHARD_TIMEOUT = "shard_timeout"
    #: Unexpected server-side failure.
    INTERNAL = "internal"


#: HTTP status per error code — the single place the mapping lives.
HTTP_STATUS = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.TOO_LARGE: 413,
    ErrorCode.UNSUPPORTED_PROTOCOL: 400,
    ErrorCode.VERSION_CONFLICT: 409,
    ErrorCode.SHARD_UNAVAILABLE: 503,
    ErrorCode.SHARD_TIMEOUT: 504,
    ErrorCode.INTERNAL: 500,
}

#: Codes that are retryable by default (transient by nature).
RETRYABLE_CODES = frozenset(
    {ErrorCode.VERSION_CONFLICT, ErrorCode.SHARD_UNAVAILABLE, ErrorCode.SHARD_TIMEOUT}
)


@dataclass(frozen=True)
class ErrorInfo:
    """One serve-layer failure: code, message, retryability, shard."""

    code: str
    message: str
    retryable: bool = False
    shard: int | None = None

    @property
    def http_status(self) -> int:
        return HTTP_STATUS.get(self.code, 500)

    def to_json(self) -> dict:
        out: dict = {"code": self.code, "message": self.message,
                     "retryable": self.retryable}
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    @classmethod
    def from_json(cls, obj: Any) -> "ErrorInfo":
        """Parse a wire error — the structured dict, or a legacy string."""
        if isinstance(obj, str):  # pre-protocol servers sent bare strings
            return cls(code=ErrorCode.BAD_REQUEST, message=obj)
        if not isinstance(obj, Mapping):
            raise ValueError(f"error payload must be an object, got {obj!r}")
        code = obj.get("code", ErrorCode.INTERNAL)
        return cls(
            code=code,
            message=str(obj.get("message", "")),
            retryable=bool(obj.get("retryable", code in RETRYABLE_CODES)),
            shard=obj.get("shard"),
        )


class ServeError(ValueError):
    """A request the serving layer refuses or cannot complete.

    Carries an :class:`ErrorInfo`; ``str(exc)`` stays the bare message so
    existing ``pytest.raises(ServeError, match=...)`` call sites and
    string formatting keep working.  The HTTP layer maps ``info.code`` to
    a status through :data:`HTTP_STATUS`.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = ErrorCode.BAD_REQUEST,
        retryable: bool | None = None,
        shard: int | None = None,
    ) -> None:
        super().__init__(message)
        if retryable is None:
            retryable = code in RETRYABLE_CODES
        self.info = ErrorInfo(code=code, message=message, retryable=retryable,
                              shard=shard)

    @classmethod
    def from_info(cls, info: ErrorInfo) -> "ServeError":
        return cls(info.message, code=info.code, retryable=info.retryable,
                   shard=info.shard)


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


@dataclass
class QueryRequest:
    """One read request, in the shape every transport ships it.

    ``cell`` is a list with ``None`` for ``*``; ``bindings`` is the
    alternative ``{dimension: code}`` spelling; ``dim`` names the axis of
    a rollup/drilldown (index or dimension name); ``predicates`` maps a
    dimension to its admitted codes for a ``dice``.  ``version`` is the
    cube version a sharded scatter targets (readers never set it) and
    ``protocol`` optionally pins the wire protocol version.

    Field validation beyond basic shape stays in the engine, which knows
    the served schema; ``from_json`` only rejects payloads that are not
    request-shaped at all.

    Two optional observability fields ride along, both absent from the
    wire when unset so historical request shapes are unchanged:
    ``explain=True`` asks the server to attach a structured per-query
    cost account to the response, and ``trace_context`` carries the
    caller's :class:`~repro.obs.tracing.TraceContext` so the server's
    spans join the caller's trace (a malformed context is dropped, never
    an error — observability must not fail the request it decorates).

    The approximate-answer fields follow the same absent-when-unset
    rule: ``approx=True`` asks a ``dice`` to be answered from the cube's
    sketch with probabilistic bounds (see :mod:`repro.approx`),
    ``confidence`` sets the bound level (default 0.95) and ``having``
    keeps only finest cells with ``count >= having`` (the iceberg
    filter).  ``confidence``/``having`` are only meaningful with
    ``approx`` and are rejected without it by the engine.
    """

    op: str = "point"
    cell: Sequence[int | None] | None = None
    bindings: Mapping | None = None
    dim: int | str | None = None
    predicates: Mapping | None = None
    version: int | None = None
    protocol: int | None = None
    explain: bool | None = None
    trace_context: TraceContext | None = None
    approx: bool | None = None
    confidence: float | None = None
    having: float | None = None

    #: Wire keys, in emission order.
    _FIELDS = (
        "op", "cell", "bindings", "dim", "predicates", "version", "protocol",
        "explain", "trace_context", "approx", "confidence", "having",
    )

    def to_json(self) -> dict:
        out: dict = {"op": self.op}
        for name in self._FIELDS[1:]:
            value = getattr(self, name)
            if value is None:
                continue
            if name == "cell":
                value = list(value)
            elif name == "trace_context":
                value = value.to_json()
            elif name in ("explain", "approx"):
                if not value:
                    continue
                value = True
            out[name] = value
        return out

    @classmethod
    def from_json(cls, obj: Mapping) -> "QueryRequest":
        """Decode one wire request (the sanctioned dict path — no warning)."""
        if not isinstance(obj, Mapping):
            raise ServeError("request must be a JSON object")
        protocol = obj.get("protocol")
        if protocol is not None and protocol != PROTOCOL_VERSION:
            raise ServeError(
                f"protocol version {protocol!r} not supported "
                f"(this server speaks {PROTOCOL_VERSION})",
                code=ErrorCode.UNSUPPORTED_PROTOCOL,
            )
        ctx = obj.get("trace_context")
        if ctx is not None and not isinstance(ctx, TraceContext):
            try:
                ctx = TraceContext.from_json(ctx)
            except (KeyError, TypeError, ValueError):
                ctx = None
        return cls(
            op=obj.get("op", "point"),
            cell=obj.get("cell"),
            bindings=obj.get("bindings"),
            dim=obj.get("dim"),
            predicates=obj.get("predicates"),
            version=obj.get("version"),
            protocol=protocol,
            explain=True if obj.get("explain") else None,
            trace_context=ctx,
            approx=True if obj.get("approx") else None,
            confidence=obj.get("confidence"),
            having=obj.get("having"),
        )


_warned_dict_requests = False


def coerce_request(request: "QueryRequest | Mapping") -> QueryRequest:
    """Accept the typed request or the legacy dict shape.

    Passing plain dicts to the Python APIs (``QueryEngine.execute``,
    ``ServingClient.query``, ...) still works but is deprecated in favour
    of :class:`QueryRequest`; one warning is emitted per process.  The
    HTTP handler decodes JSON through :meth:`QueryRequest.from_json`
    directly, which is not deprecated — dicts are the wire format, just
    no longer the Python API.
    """
    if isinstance(request, QueryRequest):
        return request
    if isinstance(request, ServeError):
        # A transport that pre-decodes wire items (the HTTP batch path)
        # carries per-item decode failures through as the exception
        # itself, so they become per-item error entries downstream.
        raise request
    global _warned_dict_requests
    if not _warned_dict_requests:
        _warned_dict_requests = True
        warnings.warn(
            "passing dict-shaped requests to the serving APIs is deprecated; "
            "construct repro.serve.protocol.QueryRequest instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return QueryRequest.from_json(request)


# ---------------------------------------------------------------------------
# responses
# ---------------------------------------------------------------------------

#: Sentinel distinguishing "no value field" from an explicit null value.
_UNSET = object()


@dataclass
class QueryResponse:
    """One read response, shaped exactly like the historical wire dicts.

    The emitted keys depend on the operation (``to_json`` reproduces the
    pre-protocol shapes byte-for-byte): point/rollup/dice carry an
    explicit ``value`` (``None`` means *empty cell*, which is an answer,
    not an error); drilldown/slice carry ``children``; failed items
    carry ``error``.  ``cached`` is present on single responses and
    per-item batch responses, absent inside error entries.
    """

    op: str
    version: int
    cell: list | None = None
    value: Any = _UNSET
    dim: int | None = None
    children: list | None = None
    predicates: dict | None = None
    cached: bool | None = None
    error: ErrorInfo | None = None
    explain: dict | None = None
    approx: dict | None = None

    def to_json(self) -> dict:
        out: dict = {"op": self.op, "version": self.version}
        if self.error is not None:
            out["error"] = self.error.to_json()
            return out
        if self.dim is not None:
            out["dim"] = self.dim
        if self.predicates is not None:
            out["predicates"] = self.predicates
        if self.cell is not None:
            out["cell"] = list(self.cell)
        if self.value is not _UNSET:
            out["value"] = self.value
        if self.children is not None:
            out["children"] = self.children
        if self.cached is not None:
            out["cached"] = self.cached
        if self.explain is not None:
            out["explain"] = self.explain
        if self.approx is not None:
            out["approx"] = self.approx
        return out

    @classmethod
    def from_json(cls, obj: Mapping) -> "QueryResponse":
        error = obj.get("error")
        return cls(
            op=obj.get("op", "point"),
            version=obj.get("version", -1),
            cell=obj.get("cell"),
            value=obj["value"] if "value" in obj else _UNSET,
            dim=obj.get("dim"),
            children=obj.get("children"),
            predicates=obj.get("predicates"),
            cached=obj.get("cached"),
            error=None if error is None else ErrorInfo.from_json(error),
            explain=obj.get("explain"),
            approx=obj.get("approx"),
        )

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResponse:
    """The ``POST /query/batch`` envelope: ordered results + protocol stamp."""

    results: list[dict] = field(default_factory=list)
    protocol: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "results": self.results,
            "count": len(self.results),
            "protocol": self.protocol,
        }

    @classmethod
    def from_json(cls, obj: Mapping) -> "BatchResponse":
        results = obj.get("results")
        if not isinstance(results, list):
            raise ServeError("batch response needs a 'results' list")
        return cls(results=results, protocol=obj.get("protocol", PROTOCOL_VERSION))


def error_response(version: int, op: str, info: ErrorInfo) -> dict:
    """The wire shape of one failed batch item / scattered sub-request."""
    return QueryResponse(op=op, version=version, error=info).to_json()


__all__ = [
    "BatchResponse",
    "ErrorCode",
    "ErrorInfo",
    "HTTP_STATUS",
    "OPS",
    "PROTOCOL_VERSION",
    "QueryRequest",
    "QueryResponse",
    "RETRYABLE_CODES",
    "ServeError",
    "coerce_request",
    "error_response",
]
