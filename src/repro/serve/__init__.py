"""``repro.serve`` — the concurrent cube-serving subsystem.

Everything before this package computes a cube once and exits; this
package keeps one resident and answers a stream of requests, which is
the end state the related serving-oriented work (HaCube's
materialize-then-maintain model, Gray et al.'s interactive OLAP framing)
treats as the point of cube computation in the first place.  It leans
directly on the paper's format-preserving property (Section 4): a range
cube answers the same cell lookups as a plain cube, so the query, index
and persistence layers built earlier slot underneath a server unchanged.

The pieces, bottom up:

* :class:`~repro.serve.cache.LRUCache` — thread-safe, size-bounded
  result cache with hit/miss/eviction counters;
* :class:`~repro.serve.store.CubeStore` — named cube persistence
  (resident trie + schema) with atomic file replacement;
* :class:`~repro.serve.engine.QueryEngine` — point/roll-up/drill-down/
  slice queries over a versioned cube snapshot, with a serialized write
  path that appends fact batches and swaps in a fresh cube atomically;
* :class:`~repro.serve.http.CubeServer` — a stdlib threaded JSON/HTTP
  front end over one engine, with telemetry endpoints (``GET /metrics``
  Prometheus text, ``GET /trace`` spans, ``GET /slowlog`` — see
  :mod:`repro.obs` and ``docs/observability.md``);
* :class:`~repro.serve.client.InProcessClient` /
  :class:`~repro.serve.client.HTTPCubeClient` — the two transports
  behind one client interface;
* :class:`~repro.serve.workload.WorkloadDriver` — Zipf-skewed read-heavy
  workloads over N concurrent clients, reported with throughput,
  p50/p95/p99 latency and the observed cache hit rate;
* :mod:`~repro.serve.protocol` — the versioned wire protocol every tier
  speaks: typed :class:`~repro.serve.protocol.QueryRequest` /
  :class:`~repro.serve.protocol.QueryResponse` /
  :class:`~repro.serve.protocol.BatchResponse` shapes and the one
  :class:`~repro.serve.protocol.ErrorInfo` error taxonomy;
* :class:`~repro.serve.sharded.ShardRouter` — the sharded tier: one
  engine per partition in its own worker process, scatter-gather with
  aggregate-state merging and a versioned two-phase refresh (``repro
  serve --shards N``; see ``docs/sharding.md``).

The out-of-core tier lives next door in :mod:`repro.store`: mmap-able
cube snapshots (``repro snapshot save/load/inspect``), the read-only
:class:`~repro.store.SnapshotEngine` two-tier serving path, per-shard
snapshot cold start (:meth:`ShardRouter.from_snapshot_dir`) and the
``CubeStore(format="snapshot")`` backend — see ``docs/persistence.md``.

Quick start::

    from repro.data.synthetic import zipf_table
    from repro.serve import QueryEngine, CubeServer, InProcessClient

    engine = QueryEngine.from_table(zipf_table(5000, 5, 50))
    engine.point([0, None, None, None, None])   # finalized aggregates
    with CubeServer(engine, port=0) as server:  # JSON over HTTP
        ...                                     # POST {url}/query

The CLI front ends: ``repro serve`` and ``repro workload``.
"""

from repro.serve.cache import CacheStats, LRUCache
from repro.serve.client import HTTPCubeClient, InProcessClient, ServingClient
from repro.serve.engine import CubeVersion, QueryEngine, ServeError
from repro.serve.http import CubeServer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    BatchResponse,
    ErrorCode,
    ErrorInfo,
    QueryRequest,
    QueryResponse,
)
from repro.serve.sharded import ShardEngine, ShardRouter
from repro.serve.store import CubeStore, StoredCube
from repro.serve.workload import WorkloadDriver, WorkloadMix, WorkloadReport

__all__ = [
    "BatchResponse",
    "CacheStats",
    "CubeServer",
    "CubeStore",
    "CubeVersion",
    "ErrorCode",
    "ErrorInfo",
    "HTTPCubeClient",
    "InProcessClient",
    "LRUCache",
    "PROTOCOL_VERSION",
    "QueryEngine",
    "QueryRequest",
    "QueryResponse",
    "ServeError",
    "ServingClient",
    "ShardEngine",
    "ShardRouter",
    "StoredCube",
    "WorkloadDriver",
    "WorkloadMix",
    "WorkloadReport",
]
