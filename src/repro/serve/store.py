"""Named, restartable cube storage for the serving layer.

A :class:`CubeStore` keeps each named cube as three sibling files under
one root directory:

* ``<name>.meta.json`` — schema (dimension/measure names, cardinalities),
  the iceberg threshold and the engine version counter;
* ``<name>.cuber.json`` — the resident incremental trie, via
  :mod:`repro.core.serialize` (the complete write-path state);
* ``<name>.cube.csv`` — an optional export of the emitted range cube in
  the paper's tuple notation (:mod:`repro.data.io`), for interchange.

The trie is the source of truth: loading a cube re-emits the range cube
from it, so the store never has to keep cube and trie consistent.  Files
are written to a temporary sibling, fsynced and atomically renamed (the
directory too), so a crash mid-save leaves the previous generation
intact — which is what lets a serving engine write through to the store
on every refresh.

``CubeStore(root, format="snapshot")`` additionally freezes each saved
cube into a mmap-able snapshot directory (``<name>.snapshot/``, see
:mod:`repro.store`): :meth:`open_engine` then cold-starts by mapping the
columns instead of re-emitting the cube from the trie JSON — near-
instant restarts — while appends keep flowing through the trie as
before.  Entries written without a snapshot keep loading unchanged.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.core.incremental import IncrementalRangeCuber
from repro.core.serialize import load_cuber, save_cuber
from repro.data.io import write_range_cube_csv
from repro.store.snapshot import fsync_dir, fsync_file, load_snapshot, write_snapshot
from repro.table.aggregates import Aggregator, default_aggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

FORMAT_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ValueError(
            f"invalid cube name {name!r}: use letters, digits, '.', '_', '-' "
            "and start with a letter or digit"
        )
    return name


@dataclass(frozen=True)
class StoredCube:
    """Everything :meth:`CubeStore.load` returns for one named cube."""

    name: str
    cuber: IncrementalRangeCuber
    schema: Schema
    min_support: int
    engine_version: int


class CubeStore:
    """Load/persist named cubes (resident trie + schema) in a directory."""

    #: Accepted ``format`` arguments (the on-disk *read* representation).
    FORMATS = ("json", "snapshot")

    def __init__(self, root: str | Path, *, format: str = "json") -> None:
        if format not in self.FORMATS:
            raise ValueError(
                f"unknown store format {format!r}; supported: {', '.join(self.FORMATS)}"
            )
        self.root = Path(root)
        self.format = format
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{_check_name(name)}.meta.json"

    def _cuber_path(self, name: str) -> Path:
        return self.root / f"{_check_name(name)}.cuber.json"

    def _cube_csv_path(self, name: str) -> Path:
        return self.root / f"{_check_name(name)}.cube.csv"

    def _snapshot_path(self, name: str) -> Path:
        return self.root / f"{_check_name(name)}.snapshot"

    # -- enumeration -----------------------------------------------------

    def list_cubes(self) -> list[str]:
        """The stored cube names, sorted."""
        return sorted(p.name[: -len(".meta.json")] for p in self.root.glob("*.meta.json"))

    def exists(self, name: str) -> bool:
        return self._meta_path(name).exists()

    def delete(self, name: str) -> None:
        """Remove every file of ``name`` (missing files are fine)."""
        for path in (
            self._meta_path(name),
            self._cuber_path(name),
            self._cube_csv_path(name),
        ):
            path.unlink(missing_ok=True)
        snapshot = self._snapshot_path(name)
        if snapshot.exists():
            shutil.rmtree(snapshot)

    # -- persistence -----------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        # fsync before the rename: os.replace makes the *name* swap
        # atomic, but without flushing the temp file's data first a
        # crash can still publish an empty/truncated file under the
        # final name.  The directory fsync persists the rename itself.
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)

    def save(
        self,
        name: str,
        cuber: IncrementalRangeCuber,
        schema: Schema,
        *,
        min_support: int = 1,
        engine_version: int = 0,
    ) -> None:
        """Persist ``cuber`` (and its schema) as cube ``name``.

        In ``format="snapshot"`` mode the emitted cube is additionally
        frozen into ``<name>.snapshot/`` (its own atomic directory swap)
        before the meta flips to point at it, so a crash anywhere in the
        sequence leaves a loadable entry.
        """
        if schema.n_dims != cuber.trie.n_dims:
            raise ValueError(
                f"schema has {schema.n_dims} dims, cuber has {cuber.trie.n_dims}"
            )
        meta = {
            "format": "cube-store-entry",
            "version": FORMAT_VERSION,
            "name": _check_name(name),
            "dimension_names": list(schema.dimension_names),
            "cardinalities": list(schema.cardinalities),
            "measure_names": list(schema.measure_names),
            "min_support": int(min_support),
            "engine_version": int(engine_version),
            "rows_absorbed": cuber.n_rows_absorbed,
        }
        # The cuber first: a crash between the writes leaves a stale but
        # mutually consistent (meta, cuber) pair from the prior save.
        tmp = self._cuber_path(name).with_name(self._cuber_path(name).name + ".tmp")
        save_cuber(cuber, tmp)
        fsync_file(tmp)
        os.replace(tmp, self._cuber_path(name))
        if self.format == "snapshot":
            write_snapshot(
                cuber.cube(min_support),
                self._snapshot_path(name),
                schema,
                min_support=min_support,
                engine_version=engine_version,
                rows_absorbed=cuber.n_rows_absorbed,
                tuning=None if cuber.plan is None else cuber.plan.to_json(),
            )
            meta["read_format"] = "snapshot"
        self._atomic_write(self._meta_path(name), json.dumps(meta, separators=(",", ":")))

    def create(
        self,
        name: str,
        table: BaseTable,
        *,
        aggregator: Aggregator | None = None,
        min_support: int = 1,
        overwrite: bool = False,
        dim_order="auto",
    ) -> StoredCube:
        """Build a resident trie from ``table`` and store it as ``name``.

        ``dim_order`` follows the build-path convention: ``"auto"`` (the
        default) plans the trie order with :mod:`repro.tune`, ``None``
        pins the as-is order, and a sequence or
        :class:`~repro.tune.TuningPlan` pins an explicit choice.  The
        plan is persisted with the cuber, so reloads keep transforming
        inserts and restoring answers exactly as the original process did.
        """
        from repro.tune import resolve_plan

        if self.exists(name) and not overwrite:
            raise FileExistsError(f"cube {name!r} already exists in {self.root}")
        agg = aggregator or default_aggregator(table.n_measures)
        plan, order = resolve_plan(table, dim_order)
        if plan is None and order is not None:
            from repro.tune import TuningPlan

            plan = TuningPlan(order, source="fixed")
        cuber = IncrementalRangeCuber(table.n_dims, agg, plan=plan)
        cuber.insert_table(table)
        self.save(name, cuber, table.schema, min_support=min_support)
        return StoredCube(name, cuber, table.schema, min_support, 0)

    def load(self, name: str, *, aggregator: Aggregator | None = None) -> StoredCube:
        """Restore a stored cube (trie, schema, counters) by name.

        ``aggregator`` defaults to :func:`default_aggregator` over the
        stored measure count — supply the original instance for richer
        aggregates (the trie stores states, not behaviour).
        """
        meta_path = self._meta_path(name)
        if not meta_path.exists():
            raise FileNotFoundError(f"no cube named {name!r} in {self.root}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format") != "cube-store-entry":
            raise ValueError(f"{meta_path} is not a cube-store entry")
        schema = Schema.from_names(meta["dimension_names"], meta["measure_names"])
        schema = Schema(
            tuple(
                d.with_cardinality(int(c))
                for d, c in zip(schema.dimensions, meta["cardinalities"])
            ),
            schema.measures,
        )
        agg = aggregator or default_aggregator(len(meta["measure_names"]))
        cuber = load_cuber(self._cuber_path(name), agg)
        return StoredCube(
            name,
            cuber,
            schema,
            int(meta.get("min_support", 1)),
            int(meta.get("engine_version", 0)),
        )

    def export_csv(self, name: str, *, aggregator: Aggregator | None = None) -> Path:
        """Emit the named cube as a range-cube CSV next to its trie."""
        stored = self.load(name, aggregator=aggregator)
        cube = stored.cuber.cube(stored.min_support)
        path = self._cube_csv_path(name)
        write_range_cube_csv(cube, path, stored.schema.dimension_names)
        return path

    # -- serving ---------------------------------------------------------

    def open_engine(
        self,
        name: str,
        *,
        aggregator: Aggregator | None = None,
        cache_capacity: int = 1024,
    ):
        """A :class:`~repro.serve.engine.QueryEngine` over the stored cube.

        Appends through the engine write back to this store, so the cube
        survives restarts at the latest appended version.  Entries saved
        with ``read_format: "snapshot"`` cold-start by memory-mapping
        the snapshot columns as the initial cube generation — the trie
        is still loaded (it is the write path), but the expensive cube
        emission is skipped until the first append.
        """
        from repro.serve.engine import QueryEngine

        stored = self.load(name, aggregator=aggregator)
        initial_cube = None
        meta = json.loads(self._meta_path(name).read_text())
        snapshot_path = self._snapshot_path(name)
        if meta.get("read_format") == "snapshot" and snapshot_path.exists():
            from repro.store.engine import SnapshotCube

            initial_cube = SnapshotCube(
                load_snapshot(snapshot_path, aggregator=aggregator)
            )
        return QueryEngine(
            stored.cuber,
            stored.schema,
            min_support=stored.min_support,
            cache_capacity=cache_capacity,
            store=self,
            name=name,
            initial_version=stored.engine_version,
            initial_cube=initial_cube,
        )

    def __repr__(self) -> str:
        return f"CubeStore({str(self.root)!r}, {len(self.list_cubes())} cubes)"
