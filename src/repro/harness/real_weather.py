"""Section 6.2 — the real-dataset experiment (simulated weather data).

Paper setup: the September-1985 weather land-station dataset (1,015,367
tuples, 9 dimensions led by station-id with cardinality 7,037).  Headline
results (abstract + Section 6.2): with both algorithms in their preferred
dimension orders, range cubing runs in **less than one thirtieth** of
H-Cubing's time while producing a range cube **less than one ninth** of
the full cube's size.

We run the same experiment on the *simulated* weather table (see
:mod:`repro.data.weather` and DESIGN.md's substitution note), which
reproduces the published schema, per-attribute cardinalities (scaled) and
the station -> (longitude, latitude) correlation that drives the result.
"""

from __future__ import annotations

from repro.data.weather import weather_table
from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import print_table
from repro.harness.runner import measure

#: What the paper reports, for side-by-side printing.
PAPER_TIME_RATIO_BOUND = 1.0 / 30.0
PAPER_TUPLE_RATIO_BOUND = 1.0 / 9.0

PRESETS: dict[str, dict] = {
    "tiny": {"n_rows": 2000},
    "small": {"n_rows": 20_000},
    "paper": {"n_rows": 1_015_367},
}


def run(
    preset: str = "small",
    algorithms=("range", "hcubing"),
    seed: int = 7,
) -> list[dict]:
    params = resolve_preset(PRESETS, preset)
    table = weather_table(params["n_rows"], seed=seed)
    row = measure(table, algorithms=algorithms)
    if "range_seconds" in row and "hcubing_seconds" in row and row["hcubing_seconds"]:
        row["time_ratio"] = row["range_seconds"] / row["hcubing_seconds"]
    return [row]


def print_figure(rows: list[dict]) -> None:
    print_table(
        rows,
        [
            ("n_rows", "tuples", ",.0f"),
            ("range_seconds", "range cubing (s)", ".3f"),
            ("hcubing_seconds", "H-Cubing (s)", ".3f"),
            ("time_ratio", "time ratio", ".3f"),
            ("tuple_ratio", "tuple ratio", "pct"),
            ("node_ratio", "node ratio", "pct"),
        ],
        "Section 6.2: weather dataset (simulated)",
    )
    row = rows[0]
    print()
    print(f"paper bound: time ratio < {PAPER_TIME_RATIO_BOUND:.4f} (1/30), "
          f"tuple ratio < {PAPER_TUPLE_RATIO_BOUND:.4f} (1/9)")
    if "time_ratio" in row:
        verdict = "yes" if row["time_ratio"] < 1 else "NO"
        print(f"range cubing faster than H-Cubing here: {verdict} "
              f"(measured ratio {row['time_ratio']:.3f})")
    if "tuple_ratio" in row:
        verdict = "yes" if row["tuple_ratio"] < PAPER_TUPLE_RATIO_BOUND else "NO"
        print(f"tuple ratio under the paper's 1/9 bound: {verdict} "
              f"(measured {100 * row['tuple_ratio']:.2f}%)")


def main(argv: list[str] | None = None) -> list[dict]:
    return standard_main(__doc__.splitlines()[0], PRESETS, run, print_figure, argv)


if __name__ == "__main__":
    main()
