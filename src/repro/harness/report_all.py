"""Run every experiment and write one markdown report.

    python -m repro.harness.report_all --preset tiny --out report.md

Regenerates all of Section 6 (Figures 8-11, the weather experiment) plus
the ablations at the chosen preset, and renders everything as a single
markdown document with the paper's expected shapes quoted next to each
measured table — the automated counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import datetime
import io
import sys
from contextlib import redirect_stdout

from repro.harness import (
    ablations,
    fig8_dimensionality,
    fig9_skew,
    fig10_sparsity,
    fig11_scalability,
    real_weather,
)

EXPECTED_SHAPES = {
    "fig8": "range cubing grows far slower with dimensionality; near-parity "
    "in the dense 2-4-dim regime; both space ratios improve with dims",
    "fig9": "both algorithms speed up with skew; tuple ratio degrades up to "
    "Zipf 1.5 then stabilizes",
    "fig10": "H-Cubing slows rapidly with cardinality, range cubing barely "
    "moves; space ratios improve with sparsity",
    "fig11": "H-Cubing's time climbs steeply with scale at fixed density, "
    "range cubing grows gently",
    "weather": "range cubing much faster than H-Cubing (paper: >30x); range "
    "cube < 1/9 of the full cube",
}

SECTIONS = (
    ("fig8", "Figure 8 — dimensionality", fig8_dimensionality),
    ("fig9", "Figure 9 — skew", fig9_skew),
    ("fig10", "Figure 10 — sparsity", fig10_sparsity),
    ("fig11", "Figure 11 — scalability", fig11_scalability),
    ("weather", "Section 6.2 — weather (simulated)", real_weather),
)


def _capture(fn, *args, **kwargs) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        fn(*args, **kwargs)
    return buffer.getvalue()


def generate_report(preset: str = "tiny", algorithms=("range", "hcubing")) -> str:
    """Run everything; return the markdown report text."""
    stamp = datetime.datetime.now().isoformat(timespec="seconds")
    lines = [
        "# Range CUBE reproduction report",
        "",
        f"Preset: `{preset}` — generated {stamp}.",
        "Paper: Feng, Agrawal, El Abbadi, Metwally, *Range CUBE*, ICDE 2004.",
        "",
    ]
    for key, title, module in SECTIONS:
        rows = module.run(preset=preset, algorithms=algorithms)
        rendered = _capture(module.print_figure, rows)
        lines += [
            f"## {title}",
            "",
            f"*Expected shape (paper):* {EXPECTED_SHAPES[key]}",
            "",
            "```",
            rendered.rstrip(),
            "```",
            "",
        ]
    rendered = _capture(ablations.main, ["--preset", preset])
    lines += [
        "## Ablations",
        "",
        "```",
        rendered.rstrip(),
        "```",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--out", default=None, help="write markdown here (default: stdout)")
    parser.add_argument("--algorithms", default="range,hcubing")
    args = parser.parse_args(argv)
    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    report = generate_report(args.preset, algorithms)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
