"""Figure 8 — effectiveness of range cubing versus dimensionality.

Paper setup: Zipf factor fixed at 1.5, 200K tuples, cardinality 100 per
dimension, dimensionality swept from 2 to 10.  Reported series:

* 8(a) total run time of range cubing vs H-Cubing;
* 8(b) tuple ratio of the range cube w.r.t. the full cube, and node ratio
  of the range trie w.r.t. the H-tree.

Expected shape: both algorithms grow with dimensionality, but range cubing
grows far more slowly (the paper reports 8x at 6 dimensions) because the
chance of value correlation rises with dimensionality; both space ratios
*improve* (decrease) as dimensionality grows, and in the dense low-dim
regime (2-4 dims) the two algorithms nearly coincide — the range trie's
worst case is exactly an H-tree.
"""

from __future__ import annotations

from repro.data.synthetic import zipf_table
from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import SPACE_COLUMNS, TIME_COLUMNS, print_table
from repro.harness.runner import measure

PRESETS: dict[str, dict] = {
    "tiny": {"n_rows": 400, "cardinality": 50, "dims": (2, 3, 4, 5, 6), "theta": 1.5},
    "small": {
        "n_rows": 1500,
        "cardinality": 100,
        "dims": (2, 3, 4, 5, 6, 7, 8, 9, 10),
        "theta": 1.5,
    },
    "paper": {
        "n_rows": 200_000,
        "cardinality": 100,
        "dims": (2, 3, 4, 5, 6, 7, 8, 9, 10),
        "theta": 1.5,
    },
}


def run(
    preset: str = "small",
    algorithms=("range", "hcubing"),
    seed: int = 7,
) -> list[dict]:
    params = resolve_preset(PRESETS, preset)
    rows = []
    for n_dims in params["dims"]:
        table = zipf_table(
            params["n_rows"], n_dims, params["cardinality"], params["theta"], seed=seed
        )
        row = measure(table, algorithms=algorithms)
        row["dimensionality"] = n_dims
        rows.append(row)
    return rows


def print_figure(rows: list[dict]) -> None:
    key = [("dimensionality", "dims", "d")]
    print_table(rows, key + TIME_COLUMNS, "Figure 8(a): total run time vs dimensionality")
    print()
    print_table(rows, key + SPACE_COLUMNS, "Figure 8(b): space compression vs dimensionality")


def main(argv: list[str] | None = None) -> list[dict]:
    return standard_main(__doc__.splitlines()[0], PRESETS, run, print_figure, argv)


if __name__ == "__main__":
    main()
