"""Shared experiment machinery: run algorithms, collect the paper's metrics.

The paper's headline comparison runs each algorithm "in their preferred
dimension orders": cardinality-descending for range cubing, BUC and
star-cubing; cardinality-ascending for H-Cubing (maximal prefix sharing
near the H-tree root).  :func:`measure` applies exactly that policy unless
told otherwise.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.baselines.buc import buc
from repro.baselines.hcubing import h_cubing_detailed
from repro.baselines.htree import HTree
from repro.baselines.multiway import multiway
from repro.baselines.star_cubing import star_cubing
from repro.core.range_cubing import range_cubing_detailed
from repro.table.base_table import BaseTable

#: order policy per algorithm: "desc" | "asc" | None (table order as-is)
PREFERRED_ORDERS: dict[str, str | None] = {
    "range": "desc",
    "hcubing": "asc",
    "buc": "desc",
    "star": "desc",
    "multiway": None,  # array cubing is order-insensitive
}

ALGORITHMS = ("range", "hcubing", "buc", "star", "multiway")


def preferred_order(table: BaseTable, policy: str | None) -> tuple[int, ...] | None:
    """Resolve an order policy against the table's observed cardinalities."""
    if policy is None:
        return None
    observed = tuple(table.distinct_count(i) for i in range(table.n_dims))
    if policy == "desc":
        return tuple(sorted(range(table.n_dims), key=lambda i: (-observed[i], i)))
    if policy == "asc":
        return tuple(sorted(range(table.n_dims), key=lambda i: (observed[i], i)))
    raise ValueError(f"unknown order policy {policy!r}")


def measure(
    table: BaseTable,
    algorithms: Iterable[str] = ("range", "hcubing"),
    min_support: int = 1,
    order_policies: dict[str, str | None] | None = None,
) -> dict[str, float]:
    """Run the requested algorithms on ``table`` and collect metrics.

    Returns a flat row dict with, per algorithm, ``<name>_seconds`` plus
    size metrics: ``range_tuples``, ``full_cells``, ``tuple_ratio``,
    ``trie_nodes``, ``htree_nodes`` and ``node_ratio`` (percentages are
    left to the report layer).  Every timing covers the complete run —
    structure construction included — matching the paper's "total run
    time" metric.
    """
    policies = dict(PREFERRED_ORDERS)
    if order_policies:
        policies.update(order_policies)
    row: dict[str, float] = {
        "n_rows": table.n_rows,
        "n_dims": table.n_dims,
        "min_support": min_support,
    }
    for name in algorithms:
        order = preferred_order(table, policies.get(name))
        if name == "range":
            cube, stats = range_cubing_detailed(table, order=order, min_support=min_support)
            row["range_seconds"] = stats["total_seconds"]
            row["range_tuples"] = cube.n_ranges
            row["trie_nodes"] = stats["trie_nodes"]
            if min_support <= 1:
                row["full_cells"] = cube.n_cells
        elif name == "hcubing":
            cube, stats = h_cubing_detailed(table, order=order, min_support=min_support)
            row["hcubing_seconds"] = stats["total_seconds"]
            row["hcubing_cells"] = len(cube)
            row["htree_nodes"] = stats["htree_nodes"]
            # The paper's node ratio compares the two structures under one
            # ("a specific") dimension order; build an H-tree in range
            # cubing's order for the ratio (not timed).
            range_order = preferred_order(table, policies.get("range"))
            if range_order == order:
                row["htree_nodes_same_order"] = stats["htree_nodes"]
            else:
                working = table if range_order is None else table.reordered(range_order)
                row["htree_nodes_same_order"] = HTree.build(working).n_nodes()
        elif name == "buc":
            start = time.perf_counter()
            cube = buc(table, order=order, min_support=min_support)
            row["buc_seconds"] = time.perf_counter() - start
            row["buc_cells"] = len(cube)
        elif name == "star":
            start = time.perf_counter()
            cube = star_cubing(table, order=order, min_support=min_support)
            row["star_seconds"] = time.perf_counter() - start
            row["star_cells"] = len(cube)
        elif name == "multiway":
            start = time.perf_counter()
            try:
                cube = multiway(table, min_support=min_support)
            except ValueError:
                row["multiway_seconds"] = float("nan")  # space guard tripped
            else:
                row["multiway_seconds"] = time.perf_counter() - start
                row["multiway_cells"] = len(cube)
        else:
            raise ValueError(f"unknown algorithm {name!r}")
    if "range_tuples" in row and "full_cells" in row and row["full_cells"]:
        row["tuple_ratio"] = row["range_tuples"] / row["full_cells"]
    if "trie_nodes" in row and row.get("htree_nodes_same_order"):
        row["node_ratio"] = row["trie_nodes"] / row["htree_nodes_same_order"]
    return row
