"""Shared experiment machinery: run algorithms, collect the paper's metrics.

The paper's headline comparison runs each algorithm "in their preferred
dimension orders": cardinality-descending for range cubing, BUC and
star-cubing; cardinality-ascending for H-Cubing (maximal prefix sharing
near the H-tree root).  :func:`measure` applies exactly that policy unless
told otherwise.

Dispatch goes through the algorithm registry
(:mod:`repro.baselines.registry`): any registered name — canonical or
alias — can be measured, including ``parallel_range_cubing`` with an
executor/partition configuration, whose per-stage timings land in the
metric row under ``parallel_range_*`` keys.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.htree import HTree
from repro.baselines.registry import available_algorithms, get_algorithm
from repro.table.base_table import BaseTable

#: Metric-key prefix per canonical registry name (legacy report columns).
SHORT_NAMES: dict[str, str] = {
    "range_cubing": "range",
    "parallel_range_cubing": "parallel_range",
    "star_cubing": "star",
}

#: order policy per algorithm (short name): "desc" | "asc" | None (as-is)
PREFERRED_ORDERS: dict[str, str | None] = {
    SHORT_NAMES.get(name, name): get_algorithm(name).order_policy
    for name in available_algorithms()
}

ALGORITHMS = ("range", "hcubing", "buc", "star", "multiway", "parallel_range")

#: Per-stage keys the parallel engine reports, copied into the metric row.
_PARALLEL_STAGE_KEYS = ("partition_s", "build_s", "merge_s", "cube_s")


def preferred_order(table: BaseTable, policy: str | None) -> tuple[int, ...] | None:
    """Resolve an order policy against the table's observed cardinalities."""
    if policy is None:
        return None
    observed = tuple(table.distinct_count(i) for i in range(table.n_dims))
    if policy == "desc":
        return tuple(sorted(range(table.n_dims), key=lambda i: (-observed[i], i)))
    if policy == "asc":
        return tuple(sorted(range(table.n_dims), key=lambda i: (observed[i], i)))
    if policy == "auto":
        from repro.tune import plan_table

        plan = plan_table(table)
        # None keeps the fast no-reorder path when the planner picks as-is.
        return None if plan.is_identity_order else plan.dim_order
    raise ValueError(f"unknown order policy {policy!r}")


def measure(
    table: BaseTable,
    algorithms: Iterable[str] = ("range", "hcubing"),
    min_support: int = 1,
    order_policies: dict[str, str | None] | None = None,
    executor: str | None = None,
    n_partitions: int | None = None,
    workers: int | None = None,
) -> dict[str, float]:
    """Run the requested algorithms on ``table`` and collect metrics.

    Returns a flat row dict with, per algorithm, ``<name>_seconds`` plus
    size metrics: ``range_tuples``, ``full_cells``, ``tuple_ratio``,
    ``trie_nodes``, ``htree_nodes`` and ``node_ratio`` (percentages are
    left to the report layer).  Every timing covers the complete run —
    structure construction included — matching the paper's "total run
    time" metric.  ``executor`` / ``n_partitions`` / ``workers``
    configure ``parallel_range_cubing`` runs, whose stage breakdown is
    reported as ``parallel_range_partition_s`` etc.
    """
    policies = dict(PREFERRED_ORDERS)
    if order_policies:
        policies.update(order_policies)
    row: dict[str, float] = {
        "n_rows": table.n_rows,
        "n_dims": table.n_dims,
        "min_support": min_support,
    }
    for name in algorithms:
        try:
            record = get_algorithm(name)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        short = SHORT_NAMES.get(record.name, record.name)
        policy = policies.get(short, record.order_policy)
        order = preferred_order(table, policy) if record.supports_dim_order else None
        extra: dict = {}
        if record.name == "parallel_range_cubing":
            extra = {
                "executor": executor,
                "n_partitions": n_partitions,
                "workers": workers,
            }
        # dim_order=order is always passed explicitly below, so a None
        # policy pins the as-is order (the registry forwards explicit
        # None; only an *omitted* dim_order self-tunes).
        try:
            result, stats = record.run_detailed(
                table, dim_order=order, min_support=min_support, **extra
            )
        except ValueError:
            if record.name == "multiway":
                row["multiway_seconds"] = float("nan")  # space guard tripped
                continue
            raise
        row[f"{short}_seconds"] = stats["total_seconds"]
        if record.name == "range_cubing":
            row["range_tuples"] = result.n_ranges
            row["trie_nodes"] = stats["trie_nodes"]
            if min_support <= 1:
                row["full_cells"] = result.n_cells
        elif record.name == "parallel_range_cubing":
            row["parallel_range_tuples"] = result.n_ranges
            for key in _PARALLEL_STAGE_KEYS:
                row[f"parallel_range_{key}"] = stats[key]
            row["parallel_range_partitions"] = stats["n_partitions"]
        elif record.name == "hcubing":
            row["hcubing_cells"] = len(result)
            row["htree_nodes"] = stats["htree_nodes"]
            # The paper's node ratio compares the two structures under one
            # ("a specific") dimension order; build an H-tree in range
            # cubing's order for the ratio (not timed).
            range_order = preferred_order(table, policies.get("range"))
            if range_order == order:
                row["htree_nodes_same_order"] = stats["htree_nodes"]
            else:
                working = table if range_order is None else table.reordered(range_order)
                row["htree_nodes_same_order"] = HTree.build(working).n_nodes()
        else:
            try:
                row[f"{short}_cells"] = len(result)
            except TypeError:
                pass
    if "range_tuples" in row and "full_cells" in row and row["full_cells"]:
        row["tuple_ratio"] = row["range_tuples"] / row["full_cells"]
    if "trie_nodes" in row and row.get("htree_nodes_same_order"):
        row["node_ratio"] = row["trie_nodes"] / row["htree_nodes_same_order"]
    return row
