"""Experiment harness: one driver per table/figure of the paper (Section 6).

Each ``figN_*`` module exposes ``run(preset)`` returning the figure's data
series as a list of row dicts, plus a ``main()`` that prints the series as
a table; ``python -m repro.harness.fig8_dimensionality --preset small``
regenerates a figure from the command line.  Presets trade scale for run
time: ``tiny`` (CI), ``small`` (default), ``paper`` (the paper's sizes —
hours in pure Python).

The common machinery lives in :mod:`repro.harness.runner` (algorithm
execution under each algorithm's preferred dimension order, metric
collection) and :mod:`repro.harness.report` (plain-text tables).
"""

from repro.harness.report import format_table, print_table
from repro.harness.runner import PREFERRED_ORDERS, measure, preferred_order

__all__ = [
    "PREFERRED_ORDERS",
    "format_table",
    "measure",
    "preferred_order",
    "print_table",
]

# Submodules commonly reached as repro.harness.<name>:
#   fig8_dimensionality, fig9_skew, fig10_sparsity, fig11_scalability,
#   real_weather, ablations, report_all, claims
