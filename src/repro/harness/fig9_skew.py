"""Figure 9 — impact of data skew (the Zipf factor).

Paper setup: 6 dimensions, cardinality 100, 200K tuples, Zipf factor swept
from 0.0 (uniform) to 3.0 (highly skewed) in steps of 0.5.

Expected shape: both algorithms get *faster* as skew grows (their trees
adapt to the distribution — unlike BUC, which the paper notes degrades and
is worst near Zipf 1.5); the space-compression ratio first degrades with
skew and stabilizes beyond about 1.5, where the shrinking dense region and
the growing sparse region balance.
"""

from __future__ import annotations

from repro.data.synthetic import zipf_table
from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import SPACE_COLUMNS, TIME_COLUMNS, print_table
from repro.harness.runner import measure

PRESETS: dict[str, dict] = {
    "tiny": {
        "n_rows": 500,
        "cardinality": 50,
        "n_dims": 5,
        "thetas": (0.0, 1.0, 2.0, 3.0),
    },
    "small": {
        "n_rows": 2000,
        "cardinality": 100,
        "n_dims": 6,
        "thetas": (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    },
    "paper": {
        "n_rows": 200_000,
        "cardinality": 100,
        "n_dims": 6,
        "thetas": (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    },
}


def run(
    preset: str = "small",
    algorithms=("range", "hcubing"),
    seed: int = 7,
) -> list[dict]:
    params = resolve_preset(PRESETS, preset)
    rows = []
    for theta in params["thetas"]:
        table = zipf_table(
            params["n_rows"], params["n_dims"], params["cardinality"], theta, seed=seed
        )
        row = measure(table, algorithms=algorithms)
        row["zipf"] = theta
        rows.append(row)
    return rows


def print_figure(rows: list[dict]) -> None:
    key = [("zipf", "Zipf factor", ".1f")]
    print_table(rows, key + TIME_COLUMNS, "Figure 9(a): total run time vs skew")
    print()
    print_table(rows, key + SPACE_COLUMNS, "Figure 9(b): space compression vs skew")


def main(argv: list[str] | None = None) -> list[dict]:
    return standard_main(__doc__.splitlines()[0], PRESETS, run, print_figure, argv)


if __name__ == "__main__":
    main()
