"""Scale presets shared by the figure drivers.

``paper`` mirrors the published experimental setup (AthlonXP-era C code;
expect hours in pure Python).  ``small`` is the default for command-line
runs, ``tiny`` is what the pytest benchmarks use.  The reproduction target
at reduced scale is the *shape* of each figure — orderings, trends and
crossovers — which the paper's own analysis ties to sparsity, skew and
correlation rather than to absolute size.
"""

from __future__ import annotations

import argparse
from typing import Callable, Mapping


def resolve_preset(presets: Mapping[str, dict], name: str) -> dict:
    try:
        return dict(presets[name])
    except KeyError:
        raise SystemExit(
            f"unknown preset {name!r}; choose from {sorted(presets)}"
        ) from None


def standard_main(
    description: str,
    presets: Mapping[str, dict],
    run: Callable[..., list[dict]],
    printer: Callable[[list[dict]], None],
    argv: list[str] | None = None,
) -> list[dict]:
    """Shared CLI: ``--preset`` and ``--algorithms`` flags, then print."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--preset", default="small", choices=sorted(presets))
    parser.add_argument(
        "--algorithms",
        default="range,hcubing",
        help="comma list from: range,hcubing,buc,star,multiway",
    )
    args = parser.parse_args(argv)
    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    rows = run(preset=args.preset, algorithms=algorithms)
    printer(rows)
    return rows
