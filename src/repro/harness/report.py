"""Plain-text tables for experiment output.

Columns are ``(key, header, format)`` triples; a key missing from a row
renders as ``-``.  Formats are standard format specs plus the special
``"pct"`` (ratio rendered as a percentage, the paper's y-axis unit for the
space-compression figures).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

Column = tuple[str, str, str]


def _render(value, fmt: str) -> str:
    if value is None:
        return "-"
    if fmt == "pct":
        return f"{100.0 * value:.2f}%"
    return format(value, fmt)


def format_table(rows: Iterable[Mapping], columns: Sequence[Column], title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    rows = list(rows)
    headers = [header for _, header, _ in columns]
    body = [
        [_render(row.get(key), fmt) for key, _, fmt in columns]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def print_table(rows: Iterable[Mapping], columns: Sequence[Column], title: str | None = None) -> None:
    print(format_table(rows, columns, title))


#: The standard column sets for the paper's two plots per figure.
TIME_COLUMNS: list[Column] = [
    ("range_seconds", "range cubing (s)", ".3f"),
    ("hcubing_seconds", "H-Cubing (s)", ".3f"),
    ("buc_seconds", "BUC (s)", ".3f"),
    ("star_seconds", "star-cubing (s)", ".3f"),
    ("multiway_seconds", "MultiWay (s)", ".3f"),
]

SPACE_COLUMNS: list[Column] = [
    ("tuple_ratio", "tuple ratio", "pct"),
    ("node_ratio", "node ratio", "pct"),
    ("range_tuples", "ranges", ",.0f"),
    ("full_cells", "full-cube cells", ",.0f"),
]
