"""Figure 10 — impact of data sparsity (dimension cardinality).

Paper setup: Zipf factor 1.5, 6 dimensions, 200K tuples, per-dimension
cardinality taking the values 10, 100, 1000 and 10000.  The paper
deliberately varies cardinality rather than tuple count so that sparsity
changes while the experiment scale stays fixed.

Expected shape: H-Cubing's run time climbs rapidly with cardinality (its
prefix sharing evaporates) while range cubing barely moves; the space
ratios improve because sparse data exhibits more value coincidence,
yielding a more compressed trie in which each range tuple stands for more
cells.
"""

from __future__ import annotations

from repro.data.synthetic import zipf_table
from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import SPACE_COLUMNS, TIME_COLUMNS, print_table
from repro.harness.runner import measure

PRESETS: dict[str, dict] = {
    "tiny": {"n_rows": 500, "n_dims": 5, "theta": 1.5, "cards": (10, 100, 1000)},
    "small": {
        "n_rows": 2000,
        "n_dims": 6,
        "theta": 1.5,
        "cards": (10, 100, 1000, 10000),
    },
    "paper": {
        "n_rows": 200_000,
        "n_dims": 6,
        "theta": 1.5,
        "cards": (10, 100, 1000, 10000),
    },
}


def run(
    preset: str = "small",
    algorithms=("range", "hcubing"),
    seed: int = 7,
) -> list[dict]:
    params = resolve_preset(PRESETS, preset)
    rows = []
    for cardinality in params["cards"]:
        table = zipf_table(
            params["n_rows"], params["n_dims"], cardinality, params["theta"], seed=seed
        )
        row = measure(table, algorithms=algorithms)
        row["cardinality"] = cardinality
        rows.append(row)
    return rows


def print_figure(rows: list[dict]) -> None:
    key = [("cardinality", "cardinality", "d")]
    print_table(rows, key + TIME_COLUMNS, "Figure 10(a): total run time vs cardinality")
    print()
    print_table(rows, key + SPACE_COLUMNS, "Figure 10(b): space compression vs cardinality")


def main(argv: list[str] | None = None) -> list[dict]:
    return standard_main(__doc__.splitlines()[0], PRESETS, run, print_figure, argv)


if __name__ == "__main__":
    main()
