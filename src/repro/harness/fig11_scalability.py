"""Figure 11 — scalability with the dataset size at constant density.

Paper setup: 10 dimensions, Zipf factor 1.5; tuple count swept from 200K
to 1M (step 200K) *jointly* with cardinality from 100 to 500 (step 100),
so the data density stays stable while the experiment scale grows — the
paper's correction to scalability studies that only grow the tuple count
(and thereby densify the data).

Expected shape: H-Cubing's run time climbs steeply with scale (the paper
reports 7,265s at the largest point) while range cubing grows gently
(414s there — over 17x less); the space ratios improve slightly as scale
grows, since density is held fixed.
"""

from __future__ import annotations

from repro.data.synthetic import zipf_table
from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import SPACE_COLUMNS, TIME_COLUMNS, print_table
from repro.harness.runner import measure

PRESETS: dict[str, dict] = {
    "tiny": {
        "n_dims": 6,
        "theta": 1.5,
        "points": ((200, 20), (400, 40), (600, 60)),
    },
    "small": {
        "n_dims": 10,
        "theta": 1.5,
        "points": ((500, 50), (1000, 100), (1500, 150), (2000, 200), (2500, 250)),
    },
    "paper": {
        "n_dims": 10,
        "theta": 1.5,
        "points": (
            (200_000, 100),
            (400_000, 200),
            (600_000, 300),
            (800_000, 400),
            (1_000_000, 500),
        ),
    },
}


def run(
    preset: str = "small",
    algorithms=("range", "hcubing"),
    seed: int = 7,
) -> list[dict]:
    params = resolve_preset(PRESETS, preset)
    rows = []
    for n_rows, cardinality in params["points"]:
        table = zipf_table(n_rows, params["n_dims"], cardinality, params["theta"], seed=seed)
        row = measure(table, algorithms=algorithms)
        row["cardinality"] = cardinality
        rows.append(row)
    return rows


def print_figure(rows: list[dict]) -> None:
    key = [("n_rows", "tuples", ",.0f"), ("cardinality", "cardinality", "d")]
    print_table(rows, key + TIME_COLUMNS, "Figure 11(a): total run time vs scale")
    print()
    print_table(rows, key + SPACE_COLUMNS, "Figure 11(b): space compression vs scale")


def main(argv: list[str] | None = None) -> list[dict]:
    return standard_main(__doc__.splitlines()[0], PRESETS, run, print_figure, argv)


if __name__ == "__main__":
    main()
