"""The paper's qualitative claims as executable checks.

EXPERIMENTS.md argues the reproduction target at reduced scale is the
*shape* of each result.  This module makes those shapes machine-checkable:
each claim is a predicate over a figure's measured series, robust to
constant factors (only orderings, monotone trends and coarse ratios are
asserted).  ``python -m repro.harness.claims`` prints a PASS/FAIL table;
the test suite runs the whole set at the tiny preset, so any regression
that flips a paper-level conclusion fails CI even if every unit oracle
still holds.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable

from repro.harness import (
    fig8_dimensionality,
    fig9_skew,
    fig10_sparsity,
    fig11_scalability,
    real_weather,
)


@dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    detail: str


def _stable_run(module, preset: str, repeats: int = 3) -> list[dict]:
    """Run a figure several times, keep the per-point minimum of every timing.

    At the tiny preset individual points are tens of milliseconds, where
    scheduler noise can flip a trend; minima over repeated runs are
    stable (load only ever adds time) while leaving the size metrics
    (deterministic) untouched.
    """
    first = module.run(preset=preset)
    for _ in range(repeats - 1):
        rerun = module.run(preset=preset)
        for a, b in zip(first, rerun):
            for key in a:
                if key.endswith("_seconds") and key in b:
                    a[key] = min(a[key], b[key])
    return first


def _mostly_decreasing(values: list[float], tolerance: float = 0.0) -> bool:
    """Non-increasing up to ``tolerance`` relative wiggle per step."""
    return all(b <= a * (1 + tolerance) for a, b in zip(values, values[1:]))


def _mostly_increasing(values: list[float], tolerance: float = 0.0) -> bool:
    return _mostly_decreasing(list(reversed(values)), tolerance)


def check_fig8(preset: str) -> list[ClaimResult]:
    rows = _stable_run(fig8_dimensionality, preset)
    speedups = [r["hcubing_seconds"] / r["range_seconds"] for r in rows]
    tuple_ratios = [r["tuple_ratio"] for r in rows]
    node_ratios = [r["node_ratio"] for r in rows]
    return [
        ClaimResult(
            "fig8-time",
            "range cubing's advantage over H-Cubing grows with dimensionality",
            speedups[-1] > max(1.0, speedups[0]),
            f"speedup {speedups[0]:.2f}x at {rows[0]['dimensionality']} dims -> "
            f"{speedups[-1]:.2f}x at {rows[-1]['dimensionality']} dims",
        ),
        ClaimResult(
            "fig8-dense-parity",
            "in the dense low-dimension regime the two algorithms nearly coincide",
            0.2 < speedups[0] < 5.0 and tuple_ratios[0] > 0.75,
            f"lowest-dim speedup {speedups[0]:.2f}x, tuple ratio "
            f"{100 * tuple_ratios[0]:.0f}%",
        ),
        ClaimResult(
            "fig8-space",
            "tuple ratio and node ratio improve (fall) as dimensionality grows",
            _mostly_decreasing(tuple_ratios, 0.02)
            and _mostly_decreasing(node_ratios, 0.02),
            f"tuple {100 * tuple_ratios[0]:.0f}%->{100 * tuple_ratios[-1]:.0f}%, "
            f"node {100 * node_ratios[0]:.0f}%->{100 * node_ratios[-1]:.0f}%",
        ),
    ]


def check_fig9(preset: str) -> list[ClaimResult]:
    rows = _stable_run(fig9_skew, preset)
    range_times = [r["range_seconds"] for r in rows]
    hc_times = [r["hcubing_seconds"] for r in rows]
    ratios = [r["tuple_ratio"] for r in rows]
    mid = len(rows) // 2
    return [
        ClaimResult(
            "fig9-time",
            "both algorithms get faster as skew grows",
            range_times[-1] < range_times[0] and hc_times[-1] < hc_times[0],
            f"range {range_times[0]:.3f}s->{range_times[-1]:.3f}s, "
            f"H-Cubing {hc_times[0]:.3f}s->{hc_times[-1]:.3f}s",
        ),
        ClaimResult(
            "fig9-space",
            "compression ratio degrades with skew, then stabilizes",
            ratios[mid] > ratios[0]
            and abs(ratios[-1] - ratios[mid]) < max(0.15, ratios[mid] * 0.35),
            f"tuple ratio {100 * ratios[0]:.0f}% -> {100 * ratios[mid]:.0f}% "
            f"-> {100 * ratios[-1]:.0f}%",
        ),
    ]


def check_fig10(preset: str) -> list[ClaimResult]:
    rows = _stable_run(fig10_sparsity, preset)
    range_times = [r["range_seconds"] for r in rows]
    hc_times = [r["hcubing_seconds"] for r in rows]
    ratios = [r["tuple_ratio"] for r in rows]
    range_growth = range_times[-1] / range_times[0]
    hc_growth = hc_times[-1] / hc_times[0]
    return [
        ClaimResult(
            "fig10-time",
            "H-Cubing degrades with cardinality far more than range cubing",
            hc_growth > range_growth,
            f"growth across the sweep: H-Cubing {hc_growth:.2f}x, "
            f"range cubing {range_growth:.2f}x",
        ),
        ClaimResult(
            "fig10-space",
            "space compression improves with sparsity",
            ratios[-1] < ratios[0],
            f"tuple ratio {100 * ratios[0]:.0f}% -> {100 * ratios[-1]:.0f}%",
        ),
    ]


def check_fig11(preset: str) -> list[ClaimResult]:
    rows = _stable_run(fig11_scalability, preset)
    range_times = [r["range_seconds"] for r in rows]
    hc_times = [r["hcubing_seconds"] for r in rows]
    return [
        ClaimResult(
            "fig11-scaling",
            "range cubing stays well ahead of H-Cubing as scale grows",
            all(h > r for h, r in zip(hc_times, range_times))
            and hc_times[-1] / range_times[-1] > 1.5,
            f"final gap {hc_times[-1] / range_times[-1]:.2f}x "
            f"({hc_times[-1]:.2f}s vs {range_times[-1]:.2f}s)",
        ),
    ]


def check_weather(preset: str) -> list[ClaimResult]:
    (row,) = _stable_run(real_weather, preset)
    time_ratio = row["range_seconds"] / row["hcubing_seconds"]
    return [
        ClaimResult(
            "weather-time",
            "range cubing beats H-Cubing on the correlated weather data",
            time_ratio < 1.0,
            f"time ratio {time_ratio:.3f}",
        ),
        ClaimResult(
            "weather-space",
            "the range cube is a small fraction of the full weather cube",
            row["tuple_ratio"] < 0.35,
            f"tuple ratio {100 * row['tuple_ratio']:.2f}% "
            f"(paper bound at full scale: 11.1%)",
        ),
    ]


CHECKS: list[Callable[[str], list[ClaimResult]]] = [
    check_fig8,
    check_fig9,
    check_fig10,
    check_fig11,
    check_weather,
]


def run_claims(preset: str = "tiny") -> list[ClaimResult]:
    # Telemetry stays off while the figures run: the claims compare raw
    # algorithm timings at small scale, where even light per-build
    # instrumentation is noise we do not want in the numbers.
    from repro.obs import is_enabled, set_enabled

    was_enabled = is_enabled()
    set_enabled(False)
    try:
        results: list[ClaimResult] = []
        for check in CHECKS:
            results.extend(check(preset))
        return results
    finally:
        set_enabled(was_enabled)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="tiny", choices=("tiny", "small", "paper"))
    args = parser.parse_args(argv)
    results = run_claims(args.preset)
    width = max(len(r.claim_id) for r in results)
    failures = 0
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        failures += not r.passed
        print(f"[{status}] {r.claim_id.ljust(width)}  {r.description}")
        print(f"       {' ' * width}  {r.detail}")
    print(f"\n{len(results) - failures}/{len(results)} claims hold at preset {args.preset!r}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
