"""Ablation studies for the design choices the paper discusses.

Three ablations, each tied to a claim in the text:

* **dimension order** (Section 5.2): "the favorite dimension order for the
  range cubing is cardinality-descending ... it produces smaller partition
  and thus achieves earlier pruning, while it also generates more
  compressed range cube", and range cubing is claimed *less sensitive* to
  the order than other algorithms.  We run range cubing and H-Cubing under
  descending, ascending and unsorted orders.
* **iceberg pruning** (Section 1/5): node counts bound cell counts, so
  min-support prunes whole branches.  We sweep the threshold and record
  output size and time.
* **compression census** (Sections 1, 4, 6): the range cube "does not try
  to compress the cube optimally like Quotient-Cube ... however, it still
  compresses the cube close to optimality".  We compare full cube, range
  cube, BST-condensed cube and quotient-cube class counts on correlated
  and uncorrelated data.
"""

from __future__ import annotations

import time

from repro.baselines.condensed import condensed_cube
from repro.baselines.hcubing import h_cubing_detailed
from repro.baselines.quotient import quotient_cube
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import zipf_table
from repro.data.weather import weather_table
from repro.harness.report import print_table
from repro.harness.runner import preferred_order
from repro.table.base_table import BaseTable

PRESETS: dict[str, dict] = {
    "tiny": {"n_rows": 400, "n_dims": 5, "cardinality": 40, "theta": 1.5},
    "small": {"n_rows": 2000, "n_dims": 6, "cardinality": 100, "theta": 1.5},
    "paper": {"n_rows": 200_000, "n_dims": 6, "cardinality": 100, "theta": 1.5},
}

ORDER_POLICIES = ("desc", "asc", None)


def dimension_order_ablation(table: BaseTable, algorithms=("range", "hcubing")) -> list[dict]:
    """Run each algorithm under each dimension-order policy."""
    rows = []
    for policy in ORDER_POLICIES:
        order = preferred_order(table, policy)
        row: dict = {"order": policy or "as-is"}
        if "range" in algorithms:
            cube, stats = range_cubing_detailed(table, dim_order=order)
            row["range_seconds"] = stats["total_seconds"]
            row["range_tuples"] = cube.n_ranges
            row["trie_nodes"] = stats["trie_nodes"]
            row["full_cells"] = cube.n_cells
            row["tuple_ratio"] = cube.n_ranges / cube.n_cells
        if "hcubing" in algorithms:
            _, stats = h_cubing_detailed(table, dim_order=order)
            row["hcubing_seconds"] = stats["total_seconds"]
            row["htree_nodes"] = stats["htree_nodes"]
        rows.append(row)
    return rows


def iceberg_ablation(table: BaseTable, min_supports=(1, 2, 4, 8, 16)) -> list[dict]:
    """Sweep the iceberg threshold; record time and output size."""
    rows = []
    order = preferred_order(table, "desc")
    for min_support in min_supports:
        start = time.perf_counter()
        cube = range_cubing(table, dim_order=order, min_support=min_support)
        seconds = time.perf_counter() - start
        rows.append(
            {
                "min_support": min_support,
                "range_seconds": seconds,
                "range_tuples": cube.n_ranges,
                "iceberg_cells": cube.n_cells,
            }
        )
    return rows


def compression_census(tables: dict[str, BaseTable]) -> list[dict]:
    """Compare all lossless representations on several datasets."""
    rows = []
    for name, table in tables.items():
        order = preferred_order(table, "desc")
        working = table.reordered(order)
        cube = range_cubing(working)
        condensed = condensed_cube(working)
        quotient = quotient_cube(working)
        full = cube.n_cells
        rows.append(
            {
                "dataset": name,
                "full_cells": full,
                "range_tuples": cube.n_ranges,
                "tuple_ratio": cube.n_ranges / full,
                "condensed_tuples": condensed.n_tuples,
                "condensed_ratio": condensed.n_tuples / full,
                "quotient_classes": quotient.n_classes,
                "quotient_ratio": quotient.n_classes / full,
            }
        )
    return rows


def census_tables(preset: str = "small", seed: int = 7) -> dict[str, BaseTable]:
    params = PRESETS[preset]
    n, d, c, theta = (
        params["n_rows"],
        params["n_dims"],
        params["cardinality"],
        params["theta"],
    )
    fd = [FunctionalDependency((0,), (1, 2))]
    return {
        "zipf": zipf_table(n, d, c, theta, seed=seed),
        "correlated": correlated_table(n, d, c, fd, theta=theta, seed=seed),
        "weather": weather_table(n, seed=seed),
    }


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Range-CUBE ablation studies")
    parser.add_argument("--preset", default="small", choices=sorted(PRESETS))
    parser.add_argument(
        "--which", default="all", choices=("all", "order", "iceberg", "census")
    )
    args = parser.parse_args(argv)
    params = PRESETS[args.preset]
    table = zipf_table(
        params["n_rows"], params["n_dims"], params["cardinality"], params["theta"], seed=7
    )

    if args.which in ("all", "order"):
        print_table(
            dimension_order_ablation(table),
            [
                ("order", "dim order", "s"),
                ("range_seconds", "range cubing (s)", ".3f"),
                ("hcubing_seconds", "H-Cubing (s)", ".3f"),
                ("range_tuples", "ranges", ",.0f"),
                ("trie_nodes", "trie nodes", ",.0f"),
                ("htree_nodes", "H-tree nodes", ",.0f"),
                ("tuple_ratio", "tuple ratio", "pct"),
            ],
            "Ablation: dimension order (Section 5.2)",
        )
        print()
    if args.which in ("all", "iceberg"):
        print_table(
            iceberg_ablation(table),
            [
                ("min_support", "min support", "d"),
                ("range_seconds", "range cubing (s)", ".3f"),
                ("range_tuples", "ranges", ",.0f"),
                ("iceberg_cells", "iceberg cells", ",.0f"),
            ],
            "Ablation: iceberg pruning",
        )
        print()
    if args.which in ("all", "census"):
        print_table(
            compression_census(census_tables(args.preset)),
            [
                ("dataset", "dataset", "s"),
                ("full_cells", "full cells", ",.0f"),
                ("range_tuples", "ranges", ",.0f"),
                ("tuple_ratio", "range ratio", "pct"),
                ("condensed_tuples", "condensed", ",.0f"),
                ("condensed_ratio", "condensed ratio", "pct"),
                ("quotient_classes", "quotient classes", ",.0f"),
                ("quotient_ratio", "optimal ratio", "pct"),
            ],
            "Ablation: compression census (range vs condensed vs quotient)",
        )


if __name__ == "__main__":
    main()
