"""Pluggable executors: the parallelism backends of the cubing engine.

An :class:`Executor` runs a batch of independent tasks — here, per-
partition range-trie builds — and returns their results in input order.
Three implementations cover the useful points of the design space:

* :class:`SerialExecutor` — run in the calling thread.  Zero overhead,
  fully deterministic; the baseline every parallel run is compared to.
* :class:`ThreadExecutor` — a thread pool.  Threads share the process, so
  tasks ship for free, but pure-Python trie construction holds the GIL;
  use it when tasks release the GIL (numpy-heavy work, I/O) or to test
  concurrency without process overhead.
* :class:`ProcessExecutor` — a process pool.  Tasks and results cross a
  pickle boundary, so task functions must be module-level and payloads
  pickle-cheap (numpy arrays, not row tuples); in exchange, CPU-bound
  builds scale with cores.

Executors are context managers; :func:`get_executor` resolves a name from
the CLI/registry into a fresh instance.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count used when none is requested: the visible CPU count."""
    return max(1, os.cpu_count() or 1)


class Executor:
    """Run independent tasks, preserving input order in the results.

    Subclasses implement :meth:`map`; ``close`` releases pooled resources
    and is idempotent.  ``name`` identifies the backend in CLI flags and
    stage metrics.
    """

    name: str = "abstract"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run every task inline, one after another."""

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=1 if workers is None else workers)

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        return [fn(task) for task in tasks]


class _PoolExecutor(Executor):
    """Shared plumbing for the two ``concurrent.futures``-backed executors."""

    _pool_cls: type

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1:  # skip the round-trip for a lone task
            return [fn(tasks[0])]
        return list(self._ensure_pool().map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """A thread pool; cheap task shipping, GIL-bound for pure-Python work."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """A process pool; tasks/results are pickled, builds scale with cores."""

    name = "process"
    _pool_cls = ProcessPoolExecutor


EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def available_executors() -> tuple[str, ...]:
    """The executor names :func:`get_executor` accepts."""
    return tuple(EXECUTORS)


def get_executor(name: str | Executor | None, workers: int | None = None) -> Executor:
    """Resolve ``name`` into an executor instance.

    ``None`` means serial; an :class:`Executor` instance passes through
    unchanged (``workers`` must then be None — the instance already fixed
    its pool size).
    """
    if isinstance(name, Executor):
        if workers is not None and workers != name.workers:
            raise ValueError(
                "cannot override workers on an existing executor instance"
            )
        return name
    if name is None:
        return SerialExecutor()
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: {', '.join(EXECUTORS)}"
        ) from None
    return cls(workers)


def resolve_executor(
    executor: str | Executor | None, workers: int | None = None
) -> tuple[Executor, bool]:
    """Like :func:`get_executor`, also reporting ownership.

    Returns ``(executor, owned)`` where ``owned`` is True when this call
    created the instance and the caller is responsible for closing it.
    """
    if isinstance(executor, Executor):
        return get_executor(executor, workers), False
    return get_executor(executor, workers), True
