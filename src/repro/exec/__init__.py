"""Execution backends for the parallel cubing engine and the serving tier.

See :mod:`repro.exec.executors` for the batch executor abstraction
(:func:`repro.core.partitioned.parallel_range_cubing` drives it) and
:mod:`repro.exec.workers` for persistent worker processes (the sharded
cube service in :mod:`repro.serve.sharded` rides on them).
"""

from repro.exec.executors import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    default_workers,
    get_executor,
    resolve_executor,
)
from repro.exec.workers import (
    RemoteError,
    WorkerProcess,
    WorkerTimeout,
    WorkerUnavailable,
    spawn_workers,
)

__all__ = [
    "EXECUTORS",
    "Executor",
    "ProcessExecutor",
    "RemoteError",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerProcess",
    "WorkerTimeout",
    "WorkerUnavailable",
    "available_executors",
    "default_workers",
    "get_executor",
    "resolve_executor",
    "spawn_workers",
]
