"""Execution backends for the parallel partitioned cubing engine.

See :mod:`repro.exec.executors` for the executor abstraction and
:func:`repro.core.partitioned.parallel_range_cubing` for the pipeline
that drives it.
"""

from repro.exec.executors import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    default_workers,
    get_executor,
    resolve_executor,
)

__all__ = [
    "EXECUTORS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "available_executors",
    "default_workers",
    "get_executor",
    "resolve_executor",
]
