"""Persistent worker processes: the serving-tier sibling of the executors.

:class:`~repro.exec.executors.Executor` runs a *batch* of tasks and
returns — the right shape for a partitioned build, the wrong one for a
serving shard that must stay resident and answer an open-ended request
stream.  :class:`WorkerProcess` fills that gap: it spawns one child
process that constructs a target object from a module-level factory and
then serves method calls over a duplex pipe until told to stop.

The call protocol is deliberately tiny — ``(seq, method, args)`` down,
``("ok" | "err", seq, payload)`` up — with three properties the sharded
cube service (:mod:`repro.serve.sharded`) depends on:

* **FIFO per worker.**  A pipe delivers messages in order, so a control
  message (e.g. a version-swap commit) sent before a query is processed
  before it; the two-phase refresh protocol leans on this.
* **Sequence-number correlation.**  Every request carries a
  monotonically increasing ``seq`` and the reply echoes it.
  :meth:`WorkerProcess.collect` is safe to call from concurrent
  threads: whichever thread is reading the pipe stashes replies
  addressed to *other* outstanding sequences and hands them over, and a
  sequence abandoned by a timeout has its late reply dropped instead of
  mis-paired.
* **Structured failure.**  A remote exception travels as
  ``(type name, message, info dict)`` — :class:`RemoteError` re-raises
  it parent-side with the original error info attached when the remote
  exception carried one (``exc.info.to_json()``), so a typed error
  taxonomy survives the pickle boundary.

Sends are serialized per worker by a lock; parallelism comes from
*many* workers, each answering on its own core — scatter with
:meth:`request` against every worker, then :meth:`collect` each reply.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Callable, Sequence


class WorkerUnavailable(RuntimeError):
    """The worker process is gone (never started, crashed, or stopped)."""


class WorkerTimeout(TimeoutError):
    """The worker did not reply within the caller's deadline."""


class RemoteError(RuntimeError):
    """An exception raised inside the worker, re-raised parent-side.

    ``info`` carries the remote exception's structured error payload
    (``exc.info.to_json()``) when it had one, else ``None``.
    """

    def __init__(self, exc_type: str, message: str, info: dict | None = None) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.remote_message = message
        self.info = info


_STOP = "__stop__"


def _worker_main(conn, factory: Callable[[Any], Any], payload: Any) -> None:
    """The child process: build the target, serve calls until stopped."""
    try:
        target = factory(payload)
    except BaseException as exc:  # noqa: BLE001 - must report, not die silently
        try:
            conn.send(("boot_err", 0, (type(exc).__name__, str(exc), None)))
        finally:
            conn.close()
        return
    conn.send(("ready", 0, None))
    while True:
        try:
            seq, method, args = conn.recv()
        except (EOFError, OSError):
            break
        if method == _STOP:
            conn.send(("ok", seq, None))
            break
        try:
            result = getattr(target, method)(*args)
        except Exception as exc:  # noqa: BLE001 - ship the failure, keep serving
            info = getattr(exc, "info", None)
            info_json = info.to_json() if hasattr(info, "to_json") else None
            conn.send(("err", seq, (type(exc).__name__, str(exc), info_json)))
        else:
            conn.send(("ok", seq, result))
    conn.close()


class WorkerProcess:
    """One resident child process serving method calls on a built object.

    ``factory`` must be module-level (it crosses the pickle boundary
    under the spawn start method); ``payload`` is its one argument —
    keep it pickle-cheap (numpy arrays, plain tuples).

    >>> worker = WorkerProcess(build_shard, payload, name="shard-0")
    >>> worker.wait_ready(timeout=60)
    >>> worker.call("stats")                       # doctest: +SKIP
    >>> seq = worker.request("scatter", 3, items)  # fire...
    >>> worker.collect(seq, timeout=5.0)           # ...and gather later
    >>> worker.stop()
    """

    def __init__(
        self,
        factory: Callable[[Any], Any],
        payload: Any,
        *,
        name: str | None = None,
        context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        ctx = context if context is not None else multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.name = name or "worker"
        self._conn = parent_conn
        self._seq = 0
        self._lock = threading.Lock()  # send serialization + seq issue
        self._cond = threading.Condition()  # guards reader/outstanding/pending
        self._reader = False  # a collector is currently reading the pipe
        self._outstanding: set[int] = set()
        self._pending: dict[int, tuple[str, Any]] = {}
        self._ready = False
        self._dead: str | None = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, factory, payload),
            name=self.name,
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent keeps only its end

    # -- liveness -------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._dead is None and self.process.is_alive()

    def _mark_dead(self, reason: str) -> None:
        if self._dead is None:
            self._dead = reason
            with self._cond:  # wake followers so they fail fast
                self._cond.notify_all()

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until the factory finished building the target object."""
        if self._ready:
            return
        kind, _, payload = self._recv_raw(timeout)
        if kind == "ready":
            self._ready = True
            return
        if kind == "boot_err":
            self._mark_dead("factory failed")
            raise RemoteError(*payload)
        self._mark_dead(f"unexpected handshake {kind!r}")
        raise WorkerUnavailable(f"{self.name}: unexpected handshake {kind!r}")

    # -- the call protocol ---------------------------------------------

    def request(self, method: str, *args) -> int:
        """Send one call without waiting; returns its sequence number."""
        if self._dead is not None:
            raise WorkerUnavailable(f"{self.name}: {self._dead}")
        with self._lock:
            self._seq += 1
            seq = self._seq
            with self._cond:  # outstanding before send: a racing reader
                self._outstanding.add(seq)  # must know this seq is claimed
            try:
                self._conn.send((seq, method, args))
            except (OSError, ValueError) as exc:
                with self._cond:
                    self._outstanding.discard(seq)
                self._mark_dead(f"pipe closed ({exc})")
                raise WorkerUnavailable(f"{self.name}: pipe closed") from exc
        return seq

    def _recv_raw(self, timeout: float | None):
        if timeout is not None and not self._conn.poll(timeout):
            raise WorkerTimeout(f"{self.name}: no reply within {timeout:.3f}s")
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            self._mark_dead(f"pipe closed ({exc})")
            raise WorkerUnavailable(f"{self.name}: worker exited") from exc

    @staticmethod
    def _unwrap(reply: tuple[str, Any]):
        kind, payload = reply
        if kind == "ok":
            return payload
        raise RemoteError(*payload)

    def collect(self, seq: int, timeout: float | None = None):
        """Wait for the reply to ``seq``.

        Safe under concurrent collectors sharing the pipe
        (leader/follower): one thread at a time reads; a reply addressed
        to another thread's outstanding sequence is stashed and the
        waiters woken; a reply to an abandoned (timed-out) sequence is
        dropped, never mis-paired.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                # follow: wait for our reply to be stashed, or for the
                # pipe to free up so we can read it ourselves
                while True:
                    reply = self._pending.pop(seq, None)
                    if reply is not None:
                        self._outstanding.discard(seq)
                        return self._unwrap(reply)
                    if self._dead is not None:
                        self._outstanding.discard(seq)
                        raise WorkerUnavailable(f"{self.name}: {self._dead}")
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self._outstanding.discard(seq)
                        raise WorkerTimeout(
                            f"{self.name}: no reply within {timeout:.3f}s"
                        )
                    if not self._reader:
                        self._reader = True  # lead: our turn on the pipe
                        break
                    self._cond.wait(remaining)
            try:
                kind, got_seq, payload = self._recv_raw(remaining)
            except (WorkerTimeout, WorkerUnavailable):
                with self._cond:
                    self._reader = False
                    self._outstanding.discard(seq)
                    self._pending.pop(seq, None)
                    self._cond.notify_all()
                raise
            with self._cond:
                self._reader = False
                self._cond.notify_all()
                if got_seq == seq:
                    self._outstanding.discard(seq)
                    return self._unwrap((kind, payload))
                if got_seq in self._outstanding:
                    self._pending[got_seq] = (kind, payload)
                # else: late reply to an abandoned call — drop it

    def call(self, method: str, *args, timeout: float | None = None):
        """``request`` + ``collect`` in one step."""
        return self.collect(self.request(method, *args), timeout=timeout)

    # -- lifecycle ------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the worker to exit; escalate to terminate, then close (idempotent)."""
        if self._dead is None and self.process.is_alive():
            try:
                self.call(_STOP, timeout=timeout)
            except (WorkerUnavailable, WorkerTimeout, RemoteError):
                pass
        self._mark_dead("stopped")
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        self._conn.close()

    def __enter__(self) -> "WorkerProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"dead ({self._dead})"
        return f"WorkerProcess({self.name!r}, pid={self.process.pid}, {state})"


def spawn_workers(
    factory: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    name: str = "worker",
    ready_timeout: float = 300.0,
    context: multiprocessing.context.BaseContext | None = None,
) -> list[WorkerProcess]:
    """Spawn one :class:`WorkerProcess` per payload and wait for all.

    The factories run concurrently (each in its own process); the ready
    handshakes are then collected in order.  If any worker fails to boot
    the others are stopped before the failure propagates, so a partial
    fleet never leaks.
    """
    workers = [
        WorkerProcess(factory, payload, name=f"{name}-{i}", context=context)
        for i, payload in enumerate(payloads)
    ]
    try:
        for worker in workers:
            worker.wait_ready(timeout=ready_timeout)
    except BaseException:
        for worker in workers:
            try:
                worker.stop(timeout=2.0)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        raise
    return workers
