"""Sketch-backed approximate answers for heavy dice / iceberg queries.

The paper's range trie makes point lookups cheap, but a *dice* over wide
value sets still degenerates to a scan of the matching cells — the one
query shape whose latency grows with data size.  Following Buccafurri et
al. ("Estimating Range Queries using Aggregate Data", PAPERS.md), this
package answers such queries from coarse pre-aggregated summaries with
probabilistic error bounds instead of scanning:

* :class:`CubeSketch` — a per-cube summary built once at freeze /
  snapshot time: a *stratified sample* of the finest cuboid's cells
  (heavy cells kept exactly, the tail sampled within log-weight strata)
  plus exact *per-dimension histograms* used as deterministic bound
  clips;
* :func:`finalize_partials` — turns one or many mergeable partial
  estimates (one per shard in the scatter-gather tier) into a
  ``(estimate, lower, upper, confidence)`` answer with variance-correct
  combination (independent per-shard estimators: sums of estimates and
  of variances);
* :func:`exact_partial` — wraps an exact aggregate state in the same
  partial shape, so a shard that cannot estimate (or the single-engine
  fallback path) merges into the combination with zero variance.

The serving layer threads an opt-in ``approx=true`` flag through the
wire protocol down to these functions; see ``docs/serving.md``.
"""

from repro.approx.sketch import (
    ApproxAnswer,
    CubeSketch,
    SketchUnsupported,
    component_layout,
    exact_partial,
    finalize_partials,
)

__all__ = [
    "ApproxAnswer",
    "CubeSketch",
    "SketchUnsupported",
    "component_layout",
    "exact_partial",
    "finalize_partials",
]
