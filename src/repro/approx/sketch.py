"""Stratified cell samples + histogram sketches, and their estimators.

A :class:`CubeSketch` summarizes one immutable cube version from its
columnar layout (:class:`~repro.core.columnar.ColumnarRangeStore` or a
mapped snapshot with the same attribute surface):

* the *finest cuboid* — every all-dims-bound cell with its aggregate
  state — is the sampling population.  A dice with base-cell pins and
  per-dimension value sets selects a subset of these cells, and every
  supported aggregate (COUNT, SUM, AVG) is a *linear total* over them,
  so classic survey-sampling estimators apply directly;
* cells are sampled **stratified by weight**: the heaviest cells (a
  configurable head) are kept exactly, and the tail is partitioned into
  log2(count) strata sampled uniformly without replacement with
  proportional allocation.  Under Zipf-skewed data this is the textbook
  variance reducer — each stratum's values are within 2x of each other,
  so the per-stratum CLT interval is tight and honest;
* exact per-dimension histograms (count mass per code) provide a
  deterministic upper bound for the COUNT component of any dice — the
  estimate's interval is clipped against it, and against the observed
  sample mass from below.

Estimates are produced as *partials* — plain-JSON dicts carrying the
per-component estimate, variance, certain floor/ceiling and sample
accounting — which sum across independent shards.  The variance of a
sum of independent estimators is the sum of variances, so the
scatter-gather tier merges partials exactly like it merges aggregate
states: component-wise, finalizing bounds once at the router
(:func:`finalize_partials`).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.obs import get_registry
from repro.table.aggregates import Aggregator, CountAggregator, SumCountAggregator

#: Estimator identifier reported in responses and EXPLAIN accounts.
ESTIMATOR = "stratified-cell-sample"

#: Default total sample budget (cells) per sketch.
DEFAULT_SAMPLE_SIZE = 2048

#: Fraction of the budget spent keeping the heaviest cells exactly.
DEFAULT_HEAD_FRACTION = 0.25

_REGISTRY = get_registry()
_SKETCH_BUILDS = _REGISTRY.counter(
    "repro_approx_sketch_builds_total",
    "Cube sketches built (per engine cube version, lazily or at snapshot time).",
)


class SketchUnsupported(ValueError):
    """The cube's aggregator has no linear estimator (e.g. MIN/MAX)."""


# ----------------------------------------------------------------------
# component layout
# ----------------------------------------------------------------------


def component_layout(aggregator: Aggregator) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(components, kinds)`` of the linear estimate vector for ``aggregator``.

    Components mirror the columnar fast-state layout: ``count`` first,
    then one column per SUM spec and a ``(sum, count)`` pair per AVG
    spec.  Raises :class:`SketchUnsupported` for anything else (MIN/MAX
    have no unbiased sampling estimator; custom aggregators have no
    known layout) — callers fall back to the exact path.
    """
    if type(aggregator) not in (
        Aggregator,
        CountAggregator,
        SumCountAggregator,
    ) and aggregator._scalar_algebra_overridden():
        # Same rule as the columnar fast-state unpacking: an overridden
        # scalar algebra may change the state layout under the specs.
        raise SketchUnsupported("custom aggregator state layout")
    components = ["count"]
    kinds = []
    for j, (fn, _) in enumerate(aggregator.specs):
        if fn.name == "sum":
            kinds.append("sum")
            components.append(f"s{j}")
        elif fn.name == "avg":
            kinds.append("avg")
            components.extend((f"s{j}", f"c{j}"))
        else:
            raise SketchUnsupported(
                f"aggregate {fn.name!r} has no sampling estimator"
            )
    return tuple(components), tuple(kinds)


def result_keys(aggregator: Aggregator) -> tuple[str, ...]:
    """The finalized result-dict keys, matching :meth:`Aggregator.finalize`."""
    keys = ["count"]
    for fn, i in aggregator.specs:
        keys.append(f"{fn.name}({i})" if fn.name in keys else fn.name)
    return tuple(keys)


def _state_components(aggregator: Aggregator, state: tuple | None, width: int) -> list[float]:
    """An exact state flattened onto the component layout (zeros when empty)."""
    if state is None:
        return [0.0] * width
    flat: list[float] = [float(state[0])]
    for (fn, _), value in zip(aggregator.specs, state[1:]):
        if fn.name == "avg":
            flat.extend((float(value[0]), float(value[1])))
        else:
            flat.append(float(value))
    return flat


# ----------------------------------------------------------------------
# the sketch
# ----------------------------------------------------------------------


class CubeSketch:
    """A stratified finest-cuboid cell sample plus per-dimension histograms."""

    def __init__(
        self,
        *,
        n_dims: int,
        n_rows: int,
        n_cells: int,
        components: tuple[str, ...],
        kinds: tuple[str, ...],
        cells: np.ndarray,
        counts: np.ndarray,
        values: np.ndarray,
        strata_population: np.ndarray,
        strata_starts: np.ndarray,
        nonneg: np.ndarray,
        hist_offsets: np.ndarray,
        hist_codes: np.ndarray,
        hist_counts: np.ndarray,
    ) -> None:
        self.n_dims = int(n_dims)
        self.n_rows = int(n_rows)
        self.n_cells = int(n_cells)
        self.components = tuple(components)
        self.kinds = tuple(kinds)
        self.cells = cells  # (m, n_dims) int32, sorted by stratum
        self.counts = counts  # (m,) int64
        self.values = values  # (m, K) float64; column 0 is the count
        self.strata_population = strata_population  # (H,) int64
        self.strata_starts = strata_starts  # (H + 1,) int64 offsets into the sample
        self.nonneg = nonneg  # (K,) bool: column is nonnegative over the population
        self.hist_offsets = hist_offsets  # (n_dims + 1,) int64 CSR offsets
        self.hist_codes = hist_codes  # int32 codes, ascending per dimension
        self.hist_counts = hist_counts  # int64 count mass per code
        self._mass_tables: list[np.ndarray] | None = None  # dense, built lazily

    # -- construction ----------------------------------------------------

    @classmethod
    def from_store(
        cls,
        store,
        *,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        head_fraction: float = DEFAULT_HEAD_FRACTION,
        seed: int = 0,
    ) -> "CubeSketch":
        """Build from any columnar-layout store (resident or mapped).

        Raises :class:`SketchUnsupported` when the aggregator's states
        cannot be estimated (non-linear aggregates, custom layouts, or a
        store without unpacked fast columns).
        """
        aggregator = store.aggregator
        components, kinds = component_layout(aggregator)
        fast = getattr(store, "_fast_columns", None)
        if aggregator.specs and fast is None:
            raise SketchUnsupported("store has no unpacked measure columns")
        n_dims = store.n_dims
        ids = store.base_cell_ids()
        cells_all = np.array(store.specific[ids], dtype=np.int32)
        counts_all = np.array(store.counts[ids], dtype=np.int64)
        columns = [counts_all.astype(np.float64)]
        for j, kind in enumerate(kinds):
            if kind == "avg":
                sums, cnts = fast.columns[j]
                columns.append(np.array(sums[ids], dtype=np.float64))
                columns.append(np.array(cnts[ids], dtype=np.float64))
            else:
                columns.append(np.array(fast.columns[j][ids], dtype=np.float64))
        values_all = (
            np.column_stack(columns)
            if len(counts_all)
            else np.empty((0, len(components)), dtype=np.float64)
        )
        nonneg = (
            values_all.min(axis=0) >= 0
            if len(counts_all)
            else np.ones(len(components), dtype=bool)
        )
        sample_idx, population, starts = _stratify(
            counts_all, sample_size=sample_size, head_fraction=head_fraction, seed=seed
        )
        hist_offsets, hist_codes, hist_counts = _histograms(cells_all, counts_all, n_dims)
        _SKETCH_BUILDS.inc()
        return cls(
            n_dims=n_dims,
            n_rows=int(counts_all.sum()),
            n_cells=len(counts_all),
            components=components,
            kinds=kinds,
            cells=cells_all[sample_idx],
            counts=counts_all[sample_idx],
            values=values_all[sample_idx],
            strata_population=population,
            strata_starts=starts,
            nonneg=np.asarray(nonneg, dtype=bool),
            hist_offsets=hist_offsets,
            hist_codes=hist_codes,
            hist_counts=hist_counts,
        )

    @property
    def sample_size(self) -> int:
        return len(self.counts)

    def nbytes(self) -> int:
        return sum(
            a.nbytes
            for a in (
                self.cells, self.counts, self.values, self.strata_population,
                self.strata_starts, self.hist_codes, self.hist_counts,
            )
        )

    # -- persistence (snapshot arrays) -----------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The sketch as named arrays for the snapshot ``.npy`` columns."""
        return {
            "sketch_cells": self.cells,
            "sketch_counts": self.counts,
            "sketch_values": self.values,
            "sketch_strata_population": self.strata_population,
            "sketch_strata_starts": self.strata_starts,
            "sketch_nonneg": self.nonneg.astype(np.uint8),
            "sketch_hist_offsets": self.hist_offsets,
            "sketch_hist_codes": self.hist_codes,
            "sketch_hist_counts": self.hist_counts,
        }

    def manifest_entry(self) -> dict:
        """Scalar metadata for the snapshot manifest's ``sketch`` block."""
        return {
            "estimator": ESTIMATOR,
            "n_dims": self.n_dims,
            "n_rows": self.n_rows,
            "n_cells": self.n_cells,
            "components": list(self.components),
            "kinds": list(self.kinds),
            "sample_size": self.sample_size,
        }

    @classmethod
    def from_arrays(cls, meta: dict, arrays: Mapping[str, np.ndarray]) -> "CubeSketch":
        """Rebuild from a snapshot's manifest block + (mapped) arrays."""
        return cls(
            n_dims=int(meta["n_dims"]),
            n_rows=int(meta["n_rows"]),
            n_cells=int(meta["n_cells"]),
            components=tuple(meta["components"]),
            kinds=tuple(meta["kinds"]),
            cells=np.asarray(arrays["sketch_cells"]),
            counts=np.asarray(arrays["sketch_counts"]),
            values=np.asarray(arrays["sketch_values"]),
            strata_population=np.asarray(arrays["sketch_strata_population"]),
            strata_starts=np.asarray(arrays["sketch_strata_starts"]),
            nonneg=np.asarray(arrays["sketch_nonneg"]).astype(bool),
            hist_offsets=np.asarray(arrays["sketch_hist_offsets"]),
            hist_codes=np.asarray(arrays["sketch_hist_codes"]),
            hist_counts=np.asarray(arrays["sketch_hist_counts"]),
        )

    # -- estimation ------------------------------------------------------

    def _masses(self) -> list[np.ndarray]:
        """Dense per-dimension count-mass tables, built once on first use.

        ``_masses()[d][code]`` is the exact count mass of ``code`` on
        dimension ``d``; the trailing slot is a zero sentinel that
        out-of-range codes are clamped onto.  Turns the per-query
        ``searchsorted`` of the CSR histograms into one fancy-index, at
        the cost of one int64 slot per observed cardinality.
        """
        if self._mass_tables is None:
            tables = []
            for dim in range(self.n_dims):
                lo, hi = int(self.hist_offsets[dim]), int(self.hist_offsets[dim + 1])
                dim_codes = self.hist_codes[lo:hi]
                top = int(dim_codes.max()) if dim_codes.size else 0
                dense = np.zeros(top + 2, dtype=np.int64)
                dense[dim_codes] = self.hist_counts[lo:hi]
                tables.append(dense)
            self._mass_tables = tables
        return self._mass_tables

    def hist_mass(self, dim: int, codes: Iterable[int]) -> int:
        """Exact count mass of ``codes`` on ``dim`` (histogram lookup)."""
        wanted = (
            codes.astype(np.int64, copy=False)
            if isinstance(codes, np.ndarray)
            else np.fromiter(codes, dtype=np.int64)
        )
        if not wanted.size:
            return 0
        if int(wanted.min()) < 0:
            wanted = wanted[wanted >= 0]  # negatives carry no mass
        mass = self._masses()[dim]
        return int(mass[np.minimum(wanted, mass.size - 1)].sum())

    def estimate_partial(
        self,
        base: Mapping[int, int],
        value_sets: Mapping[int, Iterable[int]],
        having: float | None = None,
    ) -> dict:
        """One mergeable partial estimate for a dice selection.

        ``base`` pins dimensions to single codes, ``value_sets`` admits a
        code set per dimension, ``having`` keeps only finest cells with
        ``count >= having`` (the iceberg filter — exact per sampled cell,
        since sampled cells carry their true counts).
        """
        m, width = self.values.shape
        z = np.ones(m, dtype=bool)
        for d, v in base.items():
            z &= self.cells[:, d] == v
        code_sets = {
            d: (
                vs.astype(np.int64, copy=False)
                if isinstance(vs, np.ndarray)
                else np.asarray(
                    vs if isinstance(vs, (list, tuple)) else list(vs),
                    dtype=np.int64,
                )
            )
            for d, vs in value_sets.items()
        }
        for d, codes in code_sets.items():
            if not codes.size:
                z &= False
                continue
            # A boolean lookup beats np.isin's sort-based path: admitted
            # codes are small ints, so the table is a few hundred bytes.
            # The trailing slot is a False sentinel for out-of-set codes.
            lut = np.zeros(int(codes.max()) + 2, dtype=bool)
            lut[codes] = True
            col = self.cells[:, d]
            z &= lut[np.minimum(col, lut.size - 1)]
        if having is not None:
            z &= self.counts >= having
        y = self.values * z[:, None]
        est = np.zeros(width)
        var = np.zeros(width)
        floor = np.zeros(width)
        if m:
            starts = np.asarray(self.strata_starts[:-1], dtype=np.intp)
            sums = np.add.reduceat(y, starts, axis=0)
            squares = np.add.reduceat(np.square(y), starts, axis=0)
            sizes = np.diff(self.strata_starts).astype(np.float64)
            population = self.strata_population.astype(np.float64)
            scale = population / sizes
            est = (sums * scale[:, None]).sum(axis=0)
            floor = sums.sum(axis=0)
            # Per-stratum CLT variance with finite-population correction;
            # fully-sampled strata (the head, n_h == N_h) contribute zero.
            # The sample variance is augmented with two phantom rows (one
            # at the stratum's value scale, one at zero): when a stratum's
            # matched sample is sparse, the realized estimate and its
            # variance estimate dip *together*, and the plain CLT interval
            # undercovers — the phantoms keep the interval honest there
            # while vanishing (O(1/n)) when matches are dense.
            open_strata = (population > sizes) & (sizes > 1)
            if open_strata.any():
                scales = np.maximum.reduceat(np.abs(self.values), starts, axis=0)
                n_h = sizes[open_strata, None] + 2.0
                big_n = population[open_strata, None]
                v_h = scales[open_strata]
                s_aug = sums[open_strata] + v_h
                ss_aug = squares[open_strata] + np.square(v_h)
                mean = s_aug / n_h
                s2 = np.maximum(ss_aug - n_h * mean**2, 0.0) / (n_h - 1)
                var = (big_n * big_n * (1.0 - (n_h - 2.0) / big_n) * s2 / n_h).sum(axis=0)
        # Deterministic COUNT ceiling from the per-dimension histograms.
        caps = [self.n_rows]
        caps += [self.hist_mass(d, codes) for d, codes in code_sets.items()]
        caps += [self.hist_mass(d, (v,)) for d, v in base.items()]
        return {
            "estimator": ESTIMATOR,
            "est": est.tolist(),
            "var": var.tolist(),
            "floor": floor.tolist(),
            "floor_valid": self.nonneg.tolist(),
            "ceil": float(min(caps)),
            "sample_size": int(m),
            "matched": int(z.sum()),
            "population": self.n_cells,
            "rows": self.n_rows,
        }


def _stratify(
    counts: np.ndarray, *, sample_size: int, head_fraction: float, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(sample indices, stratum populations, stratum start offsets)``.

    Stratum 0 is the fully-kept head (heaviest cells); the tail splits
    into log2-weight strata sampled without replacement with
    proportional allocation (at least 2 per stratum, so every open
    stratum carries a variance estimate).
    """
    n = len(counts)
    order = np.argsort(-counts, kind="stable")
    head_n = min(max(int(sample_size * head_fraction), 0), n, sample_size)
    picks: list[np.ndarray] = []
    population: list[int] = []
    if head_n:
        picks.append(order[:head_n])
        population.append(head_n)
    tail = order[head_n:]
    if tail.size:
        rng = np.random.default_rng(seed)
        budget = max(sample_size - head_n, 2)
        buckets = np.floor(np.log2(np.maximum(counts[tail], 1))).astype(np.int64)
        # counts[tail] is non-increasing, so buckets is non-increasing:
        # contiguous runs are the strata.
        boundaries = np.flatnonzero(np.diff(buckets)) + 1
        starts = np.concatenate(([0], boundaries, [len(tail)]))
        for lo, hi in zip(starts[:-1], starts[1:]):
            group = tail[lo:hi]
            share = int(round(budget * len(group) / tail.size))
            take = min(len(group), max(share, 2))
            if take == len(group):
                picks.append(group)
            else:
                picks.append(rng.choice(group, size=take, replace=False))
            population.append(len(group))
    sample = np.concatenate(picks) if picks else np.empty(0, dtype=np.int64)
    sizes = np.fromiter((len(p) for p in picks), dtype=np.int64, count=len(picks))
    offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    return sample, np.asarray(population, dtype=np.int64), offsets


def _histograms(
    cells: np.ndarray, counts: np.ndarray, n_dims: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-dimension count-mass histograms in CSR form."""
    offsets = [0]
    codes: list[np.ndarray] = []
    masses: list[np.ndarray] = []
    for d in range(n_dims):
        column = cells[:, d].astype(np.int64)
        uniq, inverse = np.unique(column, return_inverse=True)
        mass = np.bincount(inverse, weights=counts.astype(np.float64))
        codes.append(uniq.astype(np.int32))
        masses.append(mass.astype(np.int64))
        offsets.append(offsets[-1] + len(uniq))
    return (
        np.asarray(offsets, dtype=np.int64),
        np.concatenate(codes) if codes else np.empty(0, dtype=np.int32),
        np.concatenate(masses) if masses else np.empty(0, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# partial combination and finalization
# ----------------------------------------------------------------------


def exact_partial(aggregator: Aggregator, state: tuple | None) -> dict:
    """An exact aggregate state wrapped as a zero-variance partial."""
    components, _ = component_layout(aggregator)
    flat = _state_components(aggregator, state, len(components))
    return {
        "estimator": "exact",
        "est": flat,
        "var": [0.0] * len(flat),
        "floor": flat,
        "floor_valid": [True] * len(flat),
        "ceil": flat[0],
        "sample_size": 0,
        "matched": 0,
        "population": 0,
        "rows": 0,
    }


@dataclass
class ApproxAnswer:
    """A finalized ``(estimate, lower, upper, confidence)`` answer."""

    estimate: dict[str, float | None]
    lower: dict[str, float | None]
    upper: dict[str, float | None]
    confidence: float
    estimator: str
    sample_size: int
    matched: int
    bound_width: float  # relative COUNT interval width, for metrics/EXPLAIN

    def to_block(self) -> dict:
        """The wire-shape ``approx`` response block."""
        return {
            "estimate": self.estimate,
            "lower": self.lower,
            "upper": self.upper,
            "confidence": self.confidence,
            "estimator": self.estimator,
            "sample_size": self.sample_size,
            "matched": self.matched,
        }


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def finalize_partials(
    aggregator: Aggregator,
    partials: Sequence[Mapping],
    confidence: float,
) -> ApproxAnswer:
    """Combine independent partials and turn them into bounds.

    Shard estimators are independent (disjoint row partitions, private
    samples), so totals and variances both add; floors/ceilings add
    when every contributor's is valid.  Bounds are computed once here —
    mirroring how the router merges aggregate *states* and finalizes
    once.
    """
    components, kinds = component_layout(aggregator)
    width = len(components)
    est = np.zeros(width)
    var = np.zeros(width)
    floor = np.zeros(width)
    floor_valid = np.ones(width, dtype=bool)
    ceil: float | None = 0.0
    estimator = "exact"
    sample_size = 0
    matched = 0
    for partial in partials:
        est += np.asarray(partial["est"], dtype=np.float64)
        var += np.asarray(partial["var"], dtype=np.float64)
        floor += np.asarray(partial["floor"], dtype=np.float64)
        floor_valid &= np.asarray(partial["floor_valid"], dtype=bool)
        ceil = None if (ceil is None or partial["ceil"] is None) else ceil + partial["ceil"]
        sample_size += int(partial["sample_size"])
        matched += int(partial["matched"])
        if partial["estimator"] != "exact":
            estimator = partial["estimator"]
    half = z_score(confidence) * np.sqrt(var)
    lower = est - half
    upper = est + half
    lower = np.where(floor_valid, np.maximum(lower, floor), lower)
    lower[0] = max(lower[0], 0.0)
    if ceil is not None:
        upper[0] = min(upper[0], ceil)
        if upper[0] < lower[0]:
            # The sampling interval contradicts the deterministic
            # floor/ceiling box; the box always contains the truth, so
            # it replaces the interval instead of inverting it.
            lower[0] = max(float(floor[0]) if floor_valid[0] else 0.0, 0.0)
            upper[0] = float(ceil)
    # Raising a grossly-low interval to a deterministic floor can invert
    # it the other way; keep every component well-formed.
    upper = np.maximum(upper, lower)
    est = np.clip(est, lower, upper)
    keys = result_keys(aggregator)
    estimate_d: dict[str, float | None] = {"count": float(est[0])}
    lower_d: dict[str, float | None] = {"count": float(lower[0])}
    upper_d: dict[str, float | None] = {"count": float(upper[0])}
    col = 1
    for kind, key in zip(kinds, keys[1:]):
        if kind == "avg":
            s, c = col, col + 1
            col += 2
            estimate_d[key] = float(est[s] / est[c]) if est[c] > 0 else None
            lo, hi = _ratio_interval(
                (lower[s], upper[s]), (lower[c], upper[c])
            )
            lower_d[key], upper_d[key] = lo, hi
        else:
            estimate_d[key] = float(est[col])
            lower_d[key] = float(lower[col])
            upper_d[key] = float(upper[col])
            col += 1
    count_width = float(upper[0] - lower[0]) / max(float(est[0]), 1.0)
    return ApproxAnswer(
        estimate=estimate_d,
        lower=lower_d,
        upper=upper_d,
        confidence=confidence,
        estimator=estimator,
        sample_size=sample_size,
        matched=matched,
        bound_width=count_width,
    )


def _ratio_interval(
    numerator: tuple[float, float], denominator: tuple[float, float]
) -> tuple[float | None, float | None]:
    """Conservative interval for a ratio (AVG = sum / count).

    Undefined (``None`` bounds) when the denominator interval touches
    zero — an average over possibly-zero tuples has no finite bound.
    """
    d_lo, d_hi = denominator
    if d_lo <= 0:
        return None, None
    ratios = [
        numerator[0] / d_lo,
        numerator[0] / d_hi,
        numerator[1] / d_lo,
        numerator[1] / d_hi,
    ]
    return min(ratios), max(ratios)
