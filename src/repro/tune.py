"""Self-tuning dimension order and attribute-value reordering.

The paper's experiments (and ``bench_ablation_dimorder``) show multi-x
spread in range-cube build time between static dimension orders, and the
best order depends on how the table's correlations line up with the trie:
a dimension that is functionally determined by dimensions *earlier* in
the order never creates trie levels (the bulk builder folds it into node
keys), while the same dimension placed first fans the trie out for
nothing.  In the spirit of Kaser & Lemire ("Attribute Value Reordering
for Efficient Hybrid OLAP"), this module adds a sampling-based planner
that picks the order automatically:

1. draw a bounded, deterministic reservoir of the table (strided, at
   most ``sample_rows`` rows);
2. estimate per-dimension cardinality and skew, plus the joint distinct
   counts that expose correlation, from the reservoir;
3. generate a small **candidate set** of orders — the static
   cardinality-descending / ascending / as-is orders and two greedy
   correlation-aware refinements — and score each with a cost model that
   simulates the bulk builder's per-level work (rows scanned in
   non-singleton groups, skipping dimensions that are constant within
   their group, plus a per-node creation charge);
4. emit a :class:`TuningPlan` holding the winning order and (optionally)
   per-dimension value permutations that cluster co-occurring values
   into contiguous runs.

Because the static orders are themselves candidates, the chosen plan is
never worse than the best static order *as measured by the cost model*;
the committed ``BENCH_dimorder.json`` gate verifies this holds for real
build times too.  A plan only describes how the trie is built — emitted
ranges are always restored to the table's original dimension order and
value coding, so a tuned build answers every query identically to an
untuned one: the same cells, the same counts, and float sums equal up
to summation-order rounding (a different trie order adds the same
addends in a different order).
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

import numpy as np

from repro.obs import get_registry, get_tracer

#: Default reservoir bound: planning cost is O(sample · n_dims²) and
#: independent of the table size beyond this many rows.
DEFAULT_SAMPLE_ROWS = 4096

#: Cost-model charge (in row-equivalents) per trie node created; biases
#: the planner away from orders that explode interior fan-out early.
NODE_COST = 4.0

#: Drift threshold for serving-path re-planning: a dimension whose
#: observed distinct count exceeds the planned estimate by this factor
#: marks the plan stale (see ``IncrementalRangeCuber.maybe_replan``).
REPLAN_DRIFT_FACTOR = 1.5

_TRACER = get_tracer()
_REGISTRY = get_registry()
_PLANS = _REGISTRY.counter(
    "repro_tune_plans_total",
    "Tuning plans computed, by the candidate order that won.",
    ("source",),
)
_PLAN_SECONDS = _REGISTRY.histogram(
    "repro_tune_plan_seconds", "Wall-clock seconds spent planning."
)
_SAMPLE_ROWS = _REGISTRY.counter(
    "repro_tune_sample_rows_total", "Rows drawn into planner reservoirs."
)
_REPLANS = _REGISTRY.counter(
    "repro_tune_replans_total",
    "Serving-path re-plans, by what triggered them.",
    ("trigger",),
)


def _reservoir(codes: np.ndarray, sample_rows: int) -> np.ndarray:
    """A deterministic strided sample of at most ``sample_rows`` rows."""
    n = codes.shape[0]
    if n <= sample_rows:
        return codes
    picks = np.unique(np.linspace(0, n - 1, sample_rows).astype(np.intp))
    return codes[picks]


def _greedy_order(sample: np.ndarray, maximize: bool) -> tuple[int, ...]:
    """Greedy joint-distinct ordering over the reservoir.

    ``maximize=True`` picks, at each step, the dimension whose addition
    to the chosen prefix yields the *most* distinct prefixes — a
    correlation-aware refinement of cardinality-descending: a dimension
    determined by the prefix adds no distincts and sinks below its
    determinants.  ``maximize=False`` is the mirror image (determinants
    first, maximal folding of the dimensions they determine).
    """
    n_dims = sample.shape[1]
    remaining = list(range(n_dims))
    order: list[int] = []
    gid = np.zeros(len(sample), dtype=np.int64)
    while remaining:
        best: tuple[tuple, int] | None = None
        for c in remaining:
            col = sample[:, c]
            base = int(col.max()) + 1 if len(col) else 1
            joint = len(np.unique(gid * base + col))
            key = (-joint if maximize else joint, c)
            if best is None or key < best[0]:
                best = (key, c)
        chosen = best[1]
        order.append(chosen)
        remaining.remove(chosen)
        col = sample[:, chosen]
        base = int(col.max()) + 1 if len(col) else 1
        _, gid = np.unique(gid * base + col, return_inverse=True)
    return tuple(order)


def _estimate_cost(sample: np.ndarray, order: Sequence[int]) -> float:
    """Simulated bulk-build work for ``order`` over the reservoir.

    Mirrors the builder's recursion: each level scans the rows of every
    group of size > 1 unless the level's dimension is constant within
    the group (the fold that correlation buys), and each node created
    costs :data:`NODE_COST` row-equivalents of bookkeeping.
    """
    n = len(sample)
    if n == 0:
        return 0.0
    gid = np.zeros(n, dtype=np.int64)
    cost = 0.0
    group_sizes = np.full(n, n, dtype=np.int64)
    for d in order:
        col = sample[:, d]
        base = int(col.max()) + 1
        key = gid * base + col
        _, inv, counts = np.unique(key, return_inverse=True, return_counts=True)
        active = group_sizes > 1
        constant = counts[inv] == group_sizes
        busy = active & ~constant
        cost += float(np.count_nonzero(busy))
        if busy.any():
            cost += NODE_COST * len(np.unique(inv[busy]))
        gid = inv.astype(np.int64)
        group_sizes = counts[inv]
    return cost


def _entropy(col: np.ndarray) -> float:
    """Shannon entropy (bits) of a code column; 0.0 for empty columns."""
    if len(col) == 0:
        return 0.0
    counts = np.unique(col, return_counts=True)[1]
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _value_orders(
    table_codes: np.ndarray, sample: np.ndarray, order: Sequence[int]
) -> dict[int, np.ndarray]:
    """Per-dimension permutations clustering co-occurring values.

    Rows of the reservoir are sorted in the planned trie order; each
    dimension's values are then ranked by first appearance in that
    sorted stream, so values that co-occur under the same trie prefix
    receive adjacent codes.  Codes never seen in the reservoir follow in
    ascending code order, keeping every permutation a bijection on
    ``[0, max_code + 1)``; codes beyond that (late appends) pass through
    unchanged — they cannot collide because the permutation's image
    stays inside ``[0, max_code + 1)``.
    """
    if len(sample) == 0:
        return {}
    sorted_rows = np.lexsort(tuple(sample[:, d] for d in reversed(order)))
    out: dict[int, np.ndarray] = {}
    for d in range(table_codes.shape[1]):
        full_max = int(table_codes[:, d].max())
        stream = sample[sorted_rows, d]
        seen, first_pos = np.unique(stream, return_index=True)
        ranked = seen[np.argsort(first_pos, kind="stable")]
        missing = np.setdiff1d(np.arange(full_max + 1), seen, assume_unique=True)
        forward = np.empty(full_max + 1, dtype=np.int64)
        forward[np.concatenate([ranked, missing])] = np.arange(full_max + 1)
        if not np.array_equal(forward, np.arange(full_max + 1)):
            out[d] = forward
    return out


class TuningPlan:
    """The planner's output: a dimension order plus optional value maps.

    ``dim_order`` uses the codebase's standard convention
    (``dim_order[new_pos] = old_dim``).  ``value_orders`` maps an
    *original* dimension index to a forward permutation array
    (``tuned_code = perm[original_code]``); the inverse maps are derived
    lazily.  Plans are value objects: JSON-serializable, comparable, and
    safe to ship to parallel workers.
    """

    def __init__(
        self,
        dim_order: Sequence[int],
        *,
        value_orders: dict[int, np.ndarray] | None = None,
        source: str = "fixed",
        sampled_rows: int = 0,
        n_rows: int = 0,
        dim_stats: list[dict] | None = None,
        candidate_costs: dict[str, float] | None = None,
        plan_seconds: float = 0.0,
    ) -> None:
        self.dim_order = tuple(int(d) for d in dim_order)
        self.value_orders = {
            int(d): np.asarray(perm, dtype=np.int64)
            for d, perm in (value_orders or {}).items()
        }
        self.source = source
        self.sampled_rows = sampled_rows
        self.n_rows = n_rows
        self.dim_stats = dim_stats or []
        self.candidate_costs = candidate_costs or {}
        self.plan_seconds = plan_seconds
        self._inverse_value_orders: dict[int, np.ndarray] | None = None

    # -- basic properties -------------------------------------------------

    @property
    def n_dims(self) -> int:
        return len(self.dim_order)

    @property
    def is_identity_order(self) -> bool:
        return self.dim_order == tuple(range(self.n_dims))

    @property
    def is_identity(self) -> bool:
        """True when applying the plan would change nothing at all."""
        return self.is_identity_order and not self.value_orders

    def __eq__(self, other) -> bool:
        if not isinstance(other, TuningPlan):
            return NotImplemented
        return (
            self.dim_order == other.dim_order
            and self.value_orders.keys() == other.value_orders.keys()
            and all(
                np.array_equal(perm, other.value_orders[d])
                for d, perm in self.value_orders.items()
            )
        )

    def __repr__(self) -> str:
        return (
            f"TuningPlan(order={self.dim_order}, source={self.source!r}, "
            f"value_dims={sorted(self.value_orders)})"
        )

    # -- value permutations -----------------------------------------------

    @property
    def inverse_value_orders(self) -> dict[int, np.ndarray]:
        """``original_code = inverse[tuned_code]`` per original dim."""
        if self._inverse_value_orders is None:
            self._inverse_value_orders = {
                d: np.argsort(perm).astype(np.int64)
                for d, perm in self.value_orders.items()
            }
        return self._inverse_value_orders

    def _map_value(self, dim: int, code: int, mapping: dict[int, np.ndarray]) -> int:
        perm = mapping.get(dim)
        if perm is None or code >= len(perm) or code < 0:
            return code
        return int(perm[code])

    def tuned_value(self, dim: int, code: int) -> int:
        """Original-space ``code`` of original ``dim`` -> tuned code."""
        return self._map_value(dim, code, self.value_orders)

    def original_value(self, dim: int, code: int) -> int:
        """Tuned-space code of original ``dim`` -> original code."""
        return self._map_value(dim, code, self.inverse_value_orders)

    # -- applying the plan ------------------------------------------------

    def transform_codes(self, codes: np.ndarray) -> np.ndarray:
        """Map an original-space code matrix into planned trie space."""
        codes = np.asarray(codes, dtype=np.int64)
        if self.value_orders:
            codes = codes.copy()
            for d, perm in self.value_orders.items():
                col = codes[:, d]
                small = col < len(perm)
                col[small] = perm[col[small]]
        if not self.is_identity_order:
            codes = codes[:, list(self.dim_order)]
        return codes

    def transform_row(self, row: Sequence[int]) -> tuple[int, ...]:
        """Map one original-space row into planned trie space."""
        return tuple(
            self.tuned_value(old_dim, int(row[old_dim]))
            for old_dim in self.dim_order
        )

    def transform_table(self, table):
        """A :class:`BaseTable` re-expressed in planned trie space."""
        from repro.table.base_table import BaseTable

        if self.is_identity:
            return table
        codes = self.transform_codes(table.dim_codes)
        schema = (
            table.schema
            if self.is_identity_order
            else table.schema.reordered(list(self.dim_order))
        )
        return BaseTable(schema, codes, table.measures, None)

    def restore_ranges(self, ranges):
        """Ranges emitted in planned trie space -> original space."""
        from repro.core.range_cubing import _remap_ranges

        if self.is_identity:
            return list(ranges)
        return _remap_ranges(
            ranges, self.dim_order, value_maps=self.inverse_value_orders or None
        )

    def original_assignment(
        self, assignment: dict[int, int]
    ) -> Iterator[tuple[int, int]]:
        """A planned-space ``{tuned_pos: tuned_code}`` leaf assignment,
        yielded as original-space ``(dim, code)`` pairs."""
        for tuned_pos, tuned_code in assignment.items():
            old_dim = self.dim_order[tuned_pos]
            yield old_dim, self.original_value(old_dim, int(tuned_code))

    # -- persistence ------------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-safe dict; ``from_json`` restores an equal plan."""
        return {
            "dim_order": list(self.dim_order),
            "value_orders": {
                str(d): perm.tolist() for d, perm in sorted(self.value_orders.items())
            },
            "source": self.source,
            "sampled_rows": self.sampled_rows,
            "n_rows": self.n_rows,
            "dim_stats": self.dim_stats,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "TuningPlan":
        return cls(
            doc["dim_order"],
            value_orders={
                int(d): np.asarray(perm, dtype=np.int64)
                for d, perm in doc.get("value_orders", {}).items()
            },
            source=doc.get("source", "fixed"),
            sampled_rows=int(doc.get("sampled_rows", 0)),
            n_rows=int(doc.get("n_rows", 0)),
            dim_stats=doc.get("dim_stats", []),
        )

    # -- reporting --------------------------------------------------------

    def explain(self, dimension_names: Sequence[str] | None = None) -> str:
        """A human-readable account of what the planner saw and chose."""
        names = dimension_names or [f"d{i}" for i in range(self.n_dims)]
        lines = [
            f"plan: order {self.dim_order} via {self.source!r} "
            f"(sampled {self.sampled_rows:,} of {self.n_rows:,} rows, "
            f"{self.plan_seconds * 1000:.1f}ms)"
        ]
        if self.candidate_costs:
            ranked = sorted(self.candidate_costs.items(), key=lambda kv: kv[1])
            lines.append(
                "candidate costs: "
                + ", ".join(f"{name}={cost:,.0f}" for name, cost in ranked)
            )
        for stat in self.dim_stats:
            d = stat["dim"]
            extra = ", values reordered" if d in self.value_orders else ""
            lines.append(
                f"  {names[d]}: position {self.dim_order.index(d)}, "
                f"~{stat['distinct']} distinct, "
                f"entropy {stat['entropy']:.2f} bits{extra}"
            )
        return "\n".join(lines)


def plan_table(
    table,
    *,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    value_reorder: bool = False,
) -> TuningPlan:
    """Plan a trie dimension order (and optional value maps) for ``table``."""
    return plan_codes(
        table.dim_codes, sample_rows=sample_rows, value_reorder=value_reorder
    )


def plan_codes(
    codes: np.ndarray,
    *,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    value_reorder: bool = False,
) -> TuningPlan:
    """Plan from a raw code matrix (used when no table object exists)."""
    codes = np.asarray(codes, dtype=np.int64)
    n_rows, n_dims = codes.shape
    t0 = time.perf_counter()
    with _TRACER.span("tune.plan", rows=n_rows, dims=n_dims) as span:
        sample = _reservoir(codes, sample_rows)
        _SAMPLE_ROWS.inc(len(sample))
        span.set_attribute("sample_rows", len(sample))
        if n_rows == 0 or n_dims <= 1:
            plan = TuningPlan(
                range(n_dims),
                source="trivial",
                sampled_rows=len(sample),
                n_rows=n_rows,
                plan_seconds=time.perf_counter() - t0,
            )
            span.set_attribute("source", plan.source)
            _PLANS.inc(source=plan.source)
            _PLAN_SECONDS.observe(plan.plan_seconds)
            return plan

        observed = [len(np.unique(sample[:, d])) for d in range(n_dims)]
        dim_stats = [
            {
                "dim": d,
                "distinct": observed[d],
                "entropy": round(_entropy(sample[:, d]), 4),
            }
            for d in range(n_dims)
        ]
        # Candidate orders, highest priority first; dedupe keeps the
        # highest-priority name so ties resolve toward cheaper paths
        # ("as-is" needs no column permutation at all).
        candidates: dict[tuple[int, ...], str] = {}
        for name, order in (
            ("as-is", tuple(range(n_dims))),
            ("desc", tuple(sorted(range(n_dims), key=lambda i: (-observed[i], i)))),
            ("greedy-max", _greedy_order(sample, maximize=True)),
            ("greedy-min", _greedy_order(sample, maximize=False)),
            ("asc", tuple(sorted(range(n_dims), key=lambda i: (observed[i], i)))),
        ):
            candidates.setdefault(order, name)
        costs = {
            name: _estimate_cost(sample, order) for order, name in candidates.items()
        }
        best_order, best_name = None, None
        for order, name in candidates.items():  # insertion order = priority
            if best_name is None or costs[name] < costs[best_name]:
                best_order, best_name = order, name

        value_orders = (
            _value_orders(codes, sample, best_order) if value_reorder else {}
        )
        plan = TuningPlan(
            best_order,
            value_orders=value_orders,
            source=best_name,
            sampled_rows=len(sample),
            n_rows=n_rows,
            dim_stats=dim_stats,
            candidate_costs=costs,
            plan_seconds=time.perf_counter() - t0,
        )
        span.set_attribute("source", best_name)
        span.set_attribute("order", str(best_order))
    _PLANS.inc(source=best_name)
    _PLAN_SECONDS.observe(plan.plan_seconds)
    return plan


def record_replan(trigger: str = "drift") -> None:
    """Count a serving-path re-plan (kept here so all tuning metrics live
    in one registry module)."""
    _REPLANS.inc(trigger=trigger)


def resolve_plan(table, dim_order) -> tuple[TuningPlan | None, tuple[int, ...] | None]:
    """Normalize a ``dim_order`` argument into ``(plan, static_order)``.

    Accepts the four spellings every build entrypoint supports:
    ``None`` (as-is), the ``"auto"`` sentinel (run the planner), a
    prepared :class:`TuningPlan`, or an explicit dimension sequence.
    At most one of the returned values is non-``None``.  A returned plan
    may be an identity plan — callers should check ``plan.is_identity``
    and skip the transform/remap round trip (its ``transform_table`` and
    ``restore_ranges`` are no-ops), while still reporting the plan.
    """
    if dim_order is None:
        return None, None
    if isinstance(dim_order, str):
        if dim_order != "auto":
            raise ValueError(
                f"unknown dim_order sentinel {dim_order!r}; expected 'auto', "
                "None, a TuningPlan or an explicit dimension sequence"
            )
        return plan_table(table), None
    if isinstance(dim_order, TuningPlan):
        return dim_order, None
    order = tuple(int(d) for d in dim_order)
    return None, (None if order == tuple(range(len(order))) else order)
