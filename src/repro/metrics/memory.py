"""Approximate in-memory footprints of the cube structures.

The paper uses node counts as "an important indicator of the memory
requirement of the cube computation"; this module turns counts into
approximate byte figures by walking the actual Python objects with
``sys.getsizeof``, so the range trie / H-tree / star tree comparison can
be stated in bytes as well as nodes.  Shared immutable aggregate states
are counted once (objects are deduplicated by identity).
"""

from __future__ import annotations

import sys
from typing import Iterable


def _deep_size(objects: Iterable, seen: set[int]) -> int:
    total = 0
    stack = list(objects)
    while stack:
        obj = stack.pop()
        if id(obj) in seen or obj is None:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
    return total


def range_trie_bytes(trie) -> int:
    """Approximate bytes held by a :class:`~repro.core.range_trie.RangeTrie`."""
    seen: set[int] = set()
    total = 0
    stack = [trie.root]
    while stack:
        node = stack.pop()
        total += sys.getsizeof(node)
        total += _deep_size([node.key, node.agg], seen)
        total += sys.getsizeof(node.children)
        stack.extend(node.children.values())
    return total


def htree_bytes(tree) -> int:
    """Approximate bytes held by a :class:`~repro.baselines.htree.HTree`."""
    seen: set[int] = set()
    total = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        total += sys.getsizeof(node)
        total += _deep_size([node.agg], seen)
        total += sys.getsizeof(node.children)
        stack.extend(node.children.values())
    for header in tree.headers:
        total += sys.getsizeof(header)
        for entry in header.values():
            total += sys.getsizeof(entry)
    return total


def star_tree_bytes(tree) -> int:
    """Approximate bytes held by a :class:`~repro.baselines.star_cubing.StarTree`."""
    seen: set[int] = set()
    total = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        total += sys.getsizeof(node)
        total += _deep_size([node.agg], seen)
        total += sys.getsizeof(node.children)
        stack.extend(node.children.values())
    return total


def range_cube_bytes(cube) -> int:
    """Approximate bytes held by a :class:`~repro.core.range_cube.RangeCube`."""
    seen: set[int] = set()
    total = sys.getsizeof(cube.ranges)
    for r in cube.ranges:
        total += sys.getsizeof(r)
        total += _deep_size([r.specific, r.state], seen)
    return total


def memory_report(table) -> dict[str, int]:
    """Build each input structure for ``table`` and report bytes + nodes."""
    from repro.baselines.htree import HTree
    from repro.baselines.star_cubing import StarTree
    from repro.core.range_trie import RangeTrie

    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    star = StarTree.build(table)
    return {
        "range_trie_bytes": range_trie_bytes(trie),
        "range_trie_nodes": trie.n_nodes(),
        "htree_bytes": htree_bytes(htree),
        "htree_nodes": htree.n_nodes(),
        "star_tree_bytes": star_tree_bytes(star),
        "star_tree_nodes": star.n_nodes(),
    }
