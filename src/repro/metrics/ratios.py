"""Space-compression metrics: tuple ratio, node ratio, cross-algorithm census.

The tuple ratio (from Wang et al., adopted by the paper) is

    tuples in the compressed cube / cells in the full cube

and the node ratio is

    nodes in the initial range trie / nodes in the H-tree

both reported as percentages in the paper's figures.  Because the range
cube is a partition of the full cube, the full cube's size can be read off
the range cube itself (sum of ``2**marked`` over ranges); the naive
counter in :mod:`repro.cube.full_cube` cross-checks this in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.htree import HTree
from repro.core.range_cube import RangeCube
from repro.core.range_trie import RangeTrie
from repro.table.base_table import BaseTable


def tuple_ratio(range_cube: RangeCube, full_cube_cells: int | None = None) -> float:
    """Range-cube tuples / full-cube cells, as a fraction in (0, 1]."""
    total = full_cube_cells if full_cube_cells is not None else range_cube.n_cells
    return range_cube.n_ranges / total if total else 1.0


def node_ratio(range_trie: RangeTrie, htree: HTree) -> float:
    """Range-trie nodes / H-tree nodes (roots excluded on both sides)."""
    h_nodes = htree.n_nodes()
    return range_trie.n_nodes() / h_nodes if h_nodes else 1.0


def node_ratio_from_counts(trie_nodes: int, htree_nodes: int) -> float:
    return trie_nodes / htree_nodes if htree_nodes else 1.0


@dataclass(frozen=True)
class CompressionReport:
    """Sizes of every lossless cube representation for one table."""

    full_cube_cells: int
    range_cube_tuples: int
    condensed_cube_tuples: int
    quotient_cube_classes: int
    range_trie_nodes: int
    htree_nodes: int

    @property
    def tuple_ratio(self) -> float:
        return self.range_cube_tuples / self.full_cube_cells if self.full_cube_cells else 1.0

    @property
    def condensed_ratio(self) -> float:
        return (
            self.condensed_cube_tuples / self.full_cube_cells if self.full_cube_cells else 1.0
        )

    @property
    def quotient_ratio(self) -> float:
        """The optimal convex-compression ratio — the paper's yardstick."""
        return (
            self.quotient_cube_classes / self.full_cube_cells if self.full_cube_cells else 1.0
        )

    @property
    def node_ratio(self) -> float:
        return self.range_trie_nodes / self.htree_nodes if self.htree_nodes else 1.0

    def rows(self) -> list[tuple[str, int, float]]:
        full = self.full_cube_cells
        return [
            ("full cube (cells)", full, 1.0),
            ("range cube (ranges)", self.range_cube_tuples, self.tuple_ratio),
            ("condensed cube (tuples)", self.condensed_cube_tuples, self.condensed_ratio),
            ("quotient cube (classes)", self.quotient_cube_classes, self.quotient_ratio),
        ]


def compression_report(table: BaseTable, order=None) -> CompressionReport:
    """Compute every representation's size for one table.

    Runs range cubing, the condensed cube, the quotient cube, and builds
    the two input structures; intended for the compression-census example
    and ablation benchmark (moderate table sizes).
    """
    from repro.baselines.condensed import condensed_cube
    from repro.baselines.quotient import quotient_cube
    from repro.core.range_cubing import range_cubing_detailed

    working = table if order is None else table.reordered(order)
    cube, stats = range_cubing_detailed(working)
    condensed = condensed_cube(working)
    quotient = quotient_cube(working)
    htree = HTree.build(working)
    return CompressionReport(
        full_cube_cells=cube.n_cells,
        range_cube_tuples=cube.n_ranges,
        condensed_cube_tuples=condensed.n_tuples,
        quotient_cube_classes=quotient.n_classes,
        range_trie_nodes=int(stats["trie_nodes"]),
        htree_nodes=htree.n_nodes(),
    )
