"""Wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class StageTimings:
    """Accumulate wall-clock seconds per named pipeline stage.

    The parallel cubing engine times its stages (``partition``, ``build``,
    ``merge``, ``cube``) through one of these, so the harness and the
    benchmarks can report where a run spent its time.  Stages can be
    entered repeatedly; seconds accumulate.  Arbitrary scalar counters
    (tries merged, nodes created, ...) ride along via :meth:`count`.

    >>> t = StageTimings()
    >>> with t.stage("build"):
    ...     _ = sum(range(100))
    >>> t.count("tries_merged", 4)
    >>> stats = t.as_stats()
    >>> stats["tries_merged"], stats["build_s"] >= 0.0
    (4, True)
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counters: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def count(self, name: str, value: float) -> None:
        """Record (accumulate) a scalar counter next to the timings."""
        self.counters[name] = self.counters.get(name, 0) + value

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_stats(self, suffix: str = "_s") -> dict[str, float]:
        """Flatten to one dict: ``<stage><suffix>`` timings plus counters."""
        stats: dict[str, float] = {
            f"{name}{suffix}": secs for name, secs in self.seconds.items()
        }
        stats.update(self.counters)
        return stats
