"""Wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Any, Callable


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
