"""Log-bucketed latency histograms for the serving workload driver.

Serving latencies span orders of magnitude (a cache hit is a dict read,
a cold slice query walks the index hundreds of times), so the buckets
grow geometrically: bucket ``i`` covers ``[min_latency * growth**i,
min_latency * growth**(i+1))``.  With the default growth of 1.25 a
reported percentile is within ~12% of the exact order statistic while
the histogram itself stays a small dict of counters that merges in
O(buckets) — each workload client records into its own histogram and the
driver merges them afterwards, so recording needs no synchronization.
"""

from __future__ import annotations

import math


class LatencyHistogram:
    """Latency samples in geometric buckets, with percentile readout.

    >>> h = LatencyHistogram()
    >>> for ms in (1, 1, 2, 50):
    ...     h.record(ms / 1000.0)
    >>> h.count
    4
    >>> 0.04 <= h.percentile(99) <= 0.06
    True
    """

    def __init__(self, min_latency: float = 1e-6, growth: float = 1.25) -> None:
        if min_latency <= 0:
            raise ValueError("min_latency must be positive")
        if growth <= 1:
            raise ValueError("growth must exceed 1")
        self.min_latency = min_latency
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        if seconds <= self.min_latency:
            index = 0
        else:
            index = int(math.log(seconds / self.min_latency) / self._log_growth) + 1
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += seconds
        self.min = seconds if seconds < self.min else self.min
        self.max = seconds if seconds > self.max else self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (bucket-wise add)."""
        if (other.min_latency, other.growth) != (self.min_latency, self.growth):
            raise ValueError("cannot merge histograms with different bucket layouts")
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        """A JSON-able snapshot that :meth:`from_dict` round-trips exactly.

        This is the cross-process folding format: a worker serializes its
        histogram, the parent rebuilds it and :meth:`merge`\\ s — and the
        benchmarks persist raw histograms into their ``BENCH_*.json``
        artifacts through the same dict.
        """
        return {
            "min_latency": self.min_latency,
            "growth": self.growth,
            "buckets": {str(index): n for index, n in sorted(self._buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(data["min_latency"], data["growth"])
        hist._buckets = {int(index): int(n) for index, n in data["buckets"].items()}
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = float(data["max"])
        return hist

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _bucket_value(self, index: int) -> float:
        """A representative latency for bucket ``index`` (geometric midpoint)."""
        if index == 0:
            return self.min_latency
        return self.min_latency * self.growth ** (index - 0.5)

    def percentile(self, p: float) -> float:
        """The latency at percentile ``p`` (0..100), 0.0 when empty.

        Exact to within one bucket; clamped to the observed min/max so
        the extremes are never overstated.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return min(max(self._bucket_value(index), self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """The serving report's latency block: count, mean, p50/p95/p99, max."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"LatencyHistogram({self.count} samples, mean {self.mean * 1000:.3f}ms)"
