"""The paper's evaluation metrics (Section 6).

* **total run time** — wall-clock to produce the cube from the input table
  (:class:`~repro.metrics.timing.Timer` and the harness handle this);
* **tuple ratio** — tuples in the range cube over cells in the full cube
  ("the smaller the better");
* **node ratio** — nodes in the initial range trie over nodes in the
  H-tree, "an important indicator of the memory requirement".

Beyond the paper, :class:`~repro.metrics.timing.StageTimings` breaks a
pipeline's wall-clock into named stages — the parallel partitioned engine
reports its partition/build/merge/cube split through it — and
:class:`~repro.metrics.histogram.LatencyHistogram` collects per-request
serving latencies into geometric buckets for p50/p95/p99 reporting.
"""

from repro.metrics.histogram import LatencyHistogram
from repro.metrics.memory import (
    htree_bytes,
    memory_report,
    range_cube_bytes,
    range_trie_bytes,
    star_tree_bytes,
)
from repro.metrics.ratios import (
    CompressionReport,
    compression_report,
    node_ratio,
    tuple_ratio,
)
from repro.metrics.timing import StageTimings, Timer, time_call

__all__ = [
    "CompressionReport",
    "LatencyHistogram",
    "StageTimings",
    "Timer",
    "compression_report",
    "htree_bytes",
    "memory_report",
    "node_ratio",
    "range_cube_bytes",
    "range_trie_bytes",
    "star_tree_bytes",
    "time_call",
    "tuple_ratio",
]
