"""Unit tests for the range trie (paper Section 3, Algorithm 1).

The structural tests reproduce, node for node, the construction sequence
the paper draws in Figure 3(a)-(c), including both restructuring cases
(split with an intermediate node; append to children) and the leaf
convention.
"""

import numpy as np
from hypothesis import given, settings

from repro.baselines.htree import HTree
from repro.core.range_trie import RangeTrie, RangeTrieNode, merge_key
from repro.table.aggregates import SumCountAggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table, table_strategy

# Dimension indexes of the paper's sales table.
STORE, CITY, PRODUCT, DATE = 0, 1, 2, 3


def snapshot(node: RangeTrieNode):
    """Canonical structural form: (key, count, sorted children snapshots)."""
    children = tuple(
        sorted(snapshot(c) for c in node.children.values())
    )
    return (node.key, node.agg[0] if node.agg else 0, children)


def build_paper_trie(n_tuples=6) -> tuple[RangeTrie, BaseTable]:
    table = make_paper_table()
    schema = table.schema
    partial = BaseTable(
        schema, table.dim_codes[:n_tuples], table.measures[:n_tuples], table.encoder
    )
    return RangeTrie.build(partial), partial


def key(*pairs):
    return tuple(pairs)


def test_merge_key_interleaves_by_dimension():
    assert merge_key(((0, 5), (3, 7)), [(1, 2)]) == ((0, 5), (1, 2), (3, 7))
    assert merge_key((), [(2, 1)]) == ((2, 1),)


def test_figure_3a_single_tuple_is_one_leaf():
    trie, _ = build_paper_trie(1)
    trie.check_invariants()
    root = trie.root
    assert len(root.children) == 1
    leaf = next(iter(root.children.values()))
    # (S1, C1, P1, D1) all in one leaf key
    assert leaf.key == key((STORE, 0), (CITY, 0), (PRODUCT, 0), (DATE, 0))
    assert leaf.is_leaf
    assert leaf.agg[0] == 1


def test_figure_3b_split_case_extracts_common_values():
    # Inserting (S1,C1,P2,D2) into the Figure 3(a) trie splits the leaf:
    # common (S1,C1) stays up, (P1,D1) and (P2,D2) become siblings.
    trie, _ = build_paper_trie(2)
    trie.check_invariants()
    (branch,) = trie.root.children.values()
    assert branch.key == key((STORE, 0), (CITY, 0))
    assert branch.agg[0] == 2
    kids = {c.key for c in branch.children.values()}
    assert kids == {
        key((PRODUCT, 0), (DATE, 0)),
        key((PRODUCT, 1), (DATE, 1)),
    }


def test_figure_3b_full_state_after_four_tuples():
    trie, _ = build_paper_trie(4)
    trie.check_invariants()
    by_value = trie.root.children
    s1 = by_value[0]
    s2 = by_value[1]
    # (S1, C1):2 over {(P1,D1), (P2,D2)}
    assert s1.key == key((STORE, 0), (CITY, 0))
    assert s1.agg[0] == 2
    # (S2, P1, D2):2 over {(C1), (C2)} — S2's tuples share product AND date
    assert s2.key == key((STORE, 1), (PRODUCT, 0), (DATE, 1))
    assert s2.agg[0] == 2
    assert {c.key for c in s2.children.values()} == {key((CITY, 0)), key((CITY, 1))}


def test_figure_3c_append_case_pushes_diff_into_children():
    # Inserting (S2,C3,P2,D2): the chosen node (S2,P1,D2) keeps common
    # {S2,D2}; the non-common P1 (Product > children's start dim City)
    # is appended to children (C1,P1), (C2,P1); (C3,P2) becomes a new leaf.
    trie, _ = build_paper_trie(5)
    trie.check_invariants()
    s2 = trie.root.children[1]
    assert s2.key == key((STORE, 1), (DATE, 1))
    assert s2.agg[0] == 3
    kids = {c.key for c in s2.children.values()}
    assert kids == {
        key((CITY, 0), (PRODUCT, 0)),
        key((CITY, 1), (PRODUCT, 0)),
        key((CITY, 2), (PRODUCT, 1)),
    }


def test_figure_3c_complete_trie():
    trie, _ = build_paper_trie(6)
    trie.check_invariants()
    root = trie.root
    assert root.agg[0] == 6
    assert len(root.children) == 3
    s3 = root.children[2]
    assert s3.key == key((STORE, 2), (CITY, 2), (PRODUCT, 2), (DATE, 0))
    assert s3.is_leaf
    # Node counts as in the figure: 2 interior + 6 leaves.
    assert trie.n_interior() == 2
    assert trie.n_leaves() == 6
    assert trie.n_nodes() == 8
    assert trie.max_depth() == 2


def test_paper_insertion_example_s1c1p3d2():
    # Section 3.1's worked example: inserting (S1, C1, P3, D2) into the
    # Figure 3(b) trie descends through (S1, C1) unchanged and adds a new
    # leaf (P3, D2).
    trie, table = build_paper_trie(4)
    trie.insert_assignment(
        [(STORE, 0), (CITY, 0), (PRODUCT, 2), (DATE, 1)], (1, 42.0)
    )
    trie.check_invariants()
    s1 = trie.root.children[0]
    assert s1.key == key((STORE, 0), (CITY, 0))
    assert s1.agg[0] == 3
    assert {c.key for c in s1.children.values()} == {
        key((PRODUCT, 0), (DATE, 0)),
        key((PRODUCT, 1), (DATE, 1)),
        key((PRODUCT, 2), (DATE, 1)),
    }


def test_duplicate_tuples_aggregate_into_one_leaf():
    table = make_encoded_table([(0, 1), (0, 1), (0, 1)])
    trie = RangeTrie.build(table)
    trie.check_invariants()
    assert trie.n_nodes() == 1
    leaf = next(iter(trie.root.children.values()))
    assert leaf.agg[0] == 3


def test_all_identical_dimension_values_collapse():
    table = make_encoded_table([(0, 0, 0)] * 4)
    trie = RangeTrie.build(table)
    assert trie.n_leaves() == 1
    assert trie.n_nodes() == 1


def test_empty_table_builds_empty_trie():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    trie = RangeTrie.build(table)
    assert trie.root.children == {}
    assert trie.n_nodes() == 0
    assert trie.total_agg is None


def test_total_agg_covers_all_rows():
    table = make_paper_table()
    trie = RangeTrie.build(table)
    assert trie.total_agg[0] == 6
    assert trie.total_agg[1] == 4900.0


def test_leaf_assignments_recover_distinct_tuples():
    table = make_paper_table()
    trie = RangeTrie.build(table)
    assignments = sorted(
        tuple(a[d] for d in range(4)) for a, _ in trie.leaf_assignments()
    )
    assert assignments == sorted(set(table.dim_rows()))


def test_aggregator_is_pluggable():
    table = make_paper_table()
    trie = RangeTrie.build(table, SumCountAggregator(0))
    assert trie.total_agg == (6, 4900.0)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_invariants_hold_on_random_tables(table):
    trie = RangeTrie.build(table)
    trie.check_invariants()


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_construction_is_insertion_order_invariant(table):
    # The paper: "The range trie constructed from a dataset is invariant
    # to the order of data entry."
    trie = RangeTrie.build(table)
    reversed_table = BaseTable(
        table.schema, table.dim_codes[::-1].copy(), table.measures[::-1].copy()
    )
    rev = RangeTrie.build(reversed_table)
    assert snapshot(trie.root) == snapshot(rev.root)


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_size_bounds_of_lemma_4(table):
    # Leaves = distinct tuples <= T; interior <= leaves - 1; depth <= dims.
    trie = RangeTrie.build(table)
    distinct = table.distinct_tuple_count()
    assert trie.n_leaves() == distinct
    assert trie.n_interior() <= max(0, distinct - 1)
    assert trie.max_depth() <= table.n_dims


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_range_trie_never_larger_than_htree(table):
    # "The lower bound of a range trie is an H-Tree" (Section 6.1): under
    # the same dimension order the trie can only merge H-tree chains.
    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    assert trie.n_nodes() <= htree.n_nodes()
